"""Bucket (variable) elimination for SCSPs.

Computes ``Sol(P) = (⊗C) ⇓ con`` without ever materializing the full
joint table: each non-interest variable is eliminated in turn by combining
only the constraints that mention it and projecting it out (distributivity
of ``×`` over ``+`` makes this exact for any c-semiring, total or partial).
Intermediate-table width depends on the elimination order — the E12
ablation compares the heuristics of :mod:`repro.solver.heuristics`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..constraints.operations import combine
from ..constraints.table import TableConstraint, to_table
from ..constraints.variables import assignment_space_size
from ..telemetry import get_tracer
from .heuristics import OrderingFn, resolve_ordering
from .problem import (
    SCSP,
    SolverResult,
    SolverStats,
    record_solve_metrics,
)


def eliminate(
    problem: SCSP, ordering: str | OrderingFn = "min-degree"
) -> tuple[TableConstraint, SolverStats]:
    """Return ``Sol(P)`` as an explicit table plus work statistics."""
    semiring = problem.semiring
    stats = SolverStats()
    con_set = set(problem.con)

    order_fn = resolve_ordering(ordering)
    to_eliminate = [
        var
        for var in order_fn(problem.variables, problem.constraints)
        if var.name not in con_set
    ]

    pool: List[TableConstraint] = [to_table(c) for c in problem.constraints]
    for var in to_eliminate:
        bucket = [c for c in pool if var.name in c.support]
        rest = [c for c in pool if var.name not in c.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        combined = combine(bucket, semiring=semiring)
        stats.largest_intermediate = max(
            stats.largest_intermediate,
            assignment_space_size(combined.scope),
        )
        eliminated = to_table(combined.hide(var.name))
        pool = rest + [eliminated]

    solution = combine(pool, semiring=semiring).project(problem.con)
    table = to_table(solution)
    stats.largest_intermediate = max(
        stats.largest_intermediate, assignment_space_size(table.scope)
    )
    return table, stats


def solve_elimination(
    problem: SCSP, ordering: str | OrderingFn = "min-degree"
) -> SolverResult:
    """Solve via bucket elimination; exact for partial orders too."""
    semiring = problem.semiring
    started = time.perf_counter()
    with get_tracer().span(
        "solver.solve", method="elimination", problem=problem.name
    ):
        table, stats = eliminate(problem, ordering)
    record_solve_metrics(
        "elimination", stats, time.perf_counter() - started
    )

    values: Dict[tuple, Any] = {}
    names = table.support
    for key, value in table.items():
        values[key] = value
    blevel = semiring.sum(values.values())
    frontier = semiring.max_elements(values.values())
    optima = [
        [
            dict(zip(names, key))
            for key, value in values.items()
            if value == fv
        ]
        for fv in frontier
    ]
    return SolverResult(
        problem=problem,
        blevel=blevel,
        frontier=frontier,
        optima=optima,
        method="elimination",
        stats=stats,
    )
