"""Bucket (variable) elimination for SCSPs.

Computes ``Sol(P) = (⊗C) ⇓ con`` without ever materializing the full
joint table: each non-interest variable is eliminated in turn by combining
only the constraints that mention it and projecting it out (distributivity
of ``×`` over ``+`` makes this exact for any c-semiring, total or partial).
Intermediate-table width depends on the elimination order — the E12
ablation compares the heuristics of :mod:`repro.solver.heuristics`.

Backends: when the semiring lowers to NumPy ufuncs (see
:mod:`repro.solver.kernels`) the same bucket schedule runs over
:class:`~repro.solver.kernels.DenseFactor` arrays — one broadcast ``⊗``
and one axis-reduction ``⇓`` per bucket instead of a Python loop per
assignment tuple.  The elimination ``ordering``, the statistics and the
resulting table are identical on both backends (bit-identical for the
four lowered semirings); partial orders transparently keep the dict path.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from ..caching import LRUCache
from ..constraints.digest import constraint_digest
from ..constraints.operations import combine
from ..constraints.table import TableConstraint, to_table
from ..constraints.variables import Variable, assignment_space_size
from ..telemetry import get_tracer
from .heuristics import OrderingFn, resolve_ordering
from .kernels import (
    BatchDenseFactor,
    DenseFactor,
    KernelError,
    Lowering,
    combine_factors,
    resolve_lowering,
    stack_factors,
)
from .problem import (
    SCSP,
    ProblemError,
    SolverResult,
    SolverStats,
    record_solve_metrics,
)

#: Default number of materialized eliminated buckets kept warm.
DEFAULT_BUCKET_CACHE_SIZE = 4096


class BucketCache:
    """Digest-keyed memo of *materialized eliminated buckets*.

    A bucket's output — ``(⊗ bucket) ⇓ (scope ∖ {var})`` — is a pure
    function of the eliminated variable and the multiset of input
    factors, so it is cached under a Merkle-style key: SHA-256 over the
    backend, semiring, variable name and the *sorted multiset* of input
    digests (initial factors contribute their extensional
    :func:`~repro.constraints.digest.constraint_digest`; intermediates
    contribute the key of the bucket that produced them).  A
    :class:`~repro.constraints.store.FactoredStore` delta (``tell``/
    ``retract``/``update``) then only re-eliminates the buckets whose
    input digests actually changed — every untouched bucket is answered
    from the memo, factor object identity notwithstanding.

    Entries hold immutable factors (dense arrays or tuple tables that
    are never written after construction), so sharing them across solves
    and threads is safe; the LRU itself is the shared thread-safe
    :class:`~repro.caching.LRUCache` under the name ``"buckets"``
    (visible in :func:`repro.caching.cache_stats` and the
    ``cache_*_total{cache="buckets"}`` telemetry counters).
    """

    def __init__(self, maxsize: int = DEFAULT_BUCKET_CACHE_SIZE) -> None:
        self._lru = LRUCache(maxsize, name="buckets", threadsafe=True)

    def get(self, key: str) -> Optional[tuple]:
        return self._lru.get(key)

    def put(self, key: str, value: tuple) -> None:
        self._lru.put(key, value)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)


_shared_bucket_cache: Optional[BucketCache] = None


def shared_bucket_cache() -> BucketCache:
    """The process-wide bucket memo (created lazily) — the store's query
    paths and the batch scheduler share it so a delta re-solve hits the
    buckets a previous version of the same store materialized."""
    global _shared_bucket_cache
    if _shared_bucket_cache is None:
        _shared_bucket_cache = BucketCache()
    return _shared_bucket_cache


def clear_bucket_cache() -> None:
    """Drop every materialized bucket (tests and benchmarks)."""
    if _shared_bucket_cache is not None:
        _shared_bucket_cache.clear()


def _bucket_key(
    backend_label: str,
    semiring: Any,
    var_name: str,
    input_digests: Sequence[str],
) -> str:
    """The Merkle key (and output digest) of one eliminated bucket."""
    piece = hashlib.sha256()
    piece.update(
        f"bucket {backend_label};{semiring!r};{var_name};".encode()
    )
    for digest in sorted(input_digests):
        piece.update(digest.encode())
    return piece.hexdigest()


def eliminate(
    problem: SCSP,
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
    bucket_cache: Optional[BucketCache] = None,
) -> tuple[TableConstraint, SolverStats]:
    """Return ``Sol(P)`` as an explicit table plus work statistics.

    ``backend`` selects the bucket representation: ``"dict"`` forces the
    tuple-table path, ``"dense"`` requires the vectorized kernels (and
    raises :class:`ProblemError` when the semiring does not lower), and
    ``"auto"`` uses dense whenever possible.  ``bucket_cache`` enables
    incremental re-solves: eliminated buckets are looked up (and
    materialized into) the given :class:`BucketCache`, so only buckets
    whose input-factor digests changed since a previous solve are
    recomputed.  The cache never changes results — a key is a pure
    function of a bucket's inputs — only which buckets are recomputed.
    """
    semiring = problem.semiring
    stats = SolverStats()
    con_set = set(problem.con)

    try:
        lowering = resolve_lowering(semiring, backend)
    except KernelError as exc:
        raise ProblemError(str(exc)) from None

    order_fn = resolve_ordering(ordering)
    to_eliminate = [
        var
        for var in order_fn(problem.variables, problem.constraints)
        if var.name not in con_set
    ]
    if lowering is not None:
        table = _eliminate_dense(
            problem, to_eliminate, lowering, stats, bucket_cache
        )
    else:
        table = _eliminate_dict(problem, to_eliminate, stats, bucket_cache)
    stats.largest_intermediate = max(
        stats.largest_intermediate, assignment_space_size(table.scope)
    )
    return table, stats


def _eliminate_dict(
    problem: SCSP,
    to_eliminate: List[Variable],
    stats: SolverStats,
    bucket_cache: Optional[BucketCache] = None,
) -> TableConstraint:
    """The reference dict-of-tuples bucket schedule."""
    semiring = problem.semiring
    pool: List[TableConstraint] = [to_table(c) for c in problem.constraints]
    digests: Optional[Dict[int, str]] = None
    if bucket_cache is not None:
        digests = {
            id(factor): constraint_digest(constraint)
            for factor, constraint in zip(pool, problem.constraints)
        }
    for var in to_eliminate:
        bucket = [c for c in pool if var.name in c.support]
        rest = [c for c in pool if var.name not in c.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        eliminated = None
        key = None
        if digests is not None:
            key = _bucket_key(
                "dict",
                semiring,
                var.name,
                [digests[id(c)] for c in bucket],
            )
            hit = bucket_cache.get(key)
            if hit is not None:
                eliminated, combined_size = hit
                stats.buckets_reused += 1
                stats.largest_intermediate = max(
                    stats.largest_intermediate, combined_size
                )
        if eliminated is None:
            combined = combine(bucket, semiring=semiring)
            combined_size = assignment_space_size(combined.scope)
            stats.largest_intermediate = max(
                stats.largest_intermediate, combined_size
            )
            eliminated = to_table(combined.hide(var.name))
            if key is not None:
                bucket_cache.put(key, (eliminated, combined_size))
        if digests is not None:
            digests[id(eliminated)] = key
        pool = rest + [eliminated]
    solution = combine(pool, semiring=semiring).project(problem.con)
    return to_table(solution)


def _eliminate_dense(
    problem: SCSP,
    to_eliminate: List[Variable],
    lowering: Lowering,
    stats: SolverStats,
    bucket_cache: Optional[BucketCache] = None,
) -> TableConstraint:
    """The same bucket schedule over broadcast ndarray factors."""
    pool: List[DenseFactor] = [
        DenseFactor.from_constraint(c, lowering)
        for c in problem.constraints
    ]
    digests: Optional[Dict[int, str]] = None
    if bucket_cache is not None:
        digests = {
            id(factor): constraint_digest(constraint)
            for factor, constraint in zip(pool, problem.constraints)
        }
    for var in to_eliminate:
        bucket = [f for f in pool if var.name in f.support]
        rest = [f for f in pool if var.name not in f.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        eliminated = None
        key = None
        if digests is not None:
            key = _bucket_key(
                "dense",
                problem.semiring,
                var.name,
                [digests[id(f)] for f in bucket],
            )
            hit = bucket_cache.get(key)
            if hit is not None:
                eliminated, combined_size = hit
                stats.buckets_reused += 1
                stats.largest_intermediate = max(
                    stats.largest_intermediate, combined_size
                )
        if eliminated is None:
            combined = combine_factors(bucket)
            combined_size = assignment_space_size(combined.scope)
            stats.largest_intermediate = max(
                stats.largest_intermediate, combined_size
            )
            eliminated = combined.hide(var.name)
            if key is not None:
                bucket_cache.put(key, (eliminated, combined_size))
        if digests is not None:
            digests[id(eliminated)] = key
        pool = rest + [eliminated]
    solution = combine_factors(pool).project(problem.con)
    return solution.to_table()


def eliminate_batch(
    problems: Sequence[SCSP],
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
) -> List[tuple[TableConstraint, SolverStats]]:
    """Bucket-eliminate B topology-sharing problems in one stacked sweep.

    Every problem must present the same constraint *topology*: equal
    scope tuples per constraint position, equal ``con`` and one shared
    semiring (see :func:`~repro.solver.cache.topology_fingerprint` —
    the batch scheduler groups by it).  Tables may differ freely; each
    constraint position is stacked into one
    :class:`~repro.solver.kernels.BatchDenseFactor` (positions where
    all B problems share one constraint object stay broadcast views)
    and the ordinary bucket schedule runs once over the batch axis.
    Because every batched operation is the per-instance operation
    broadcast across axis 0, slice ``b`` of the sweep is bit-identical
    to eliminating ``problems[b]`` alone — on either backend.
    """
    if not problems:
        raise ProblemError("eliminate_batch needs at least one problem")
    head = problems[0]
    semiring = head.semiring
    for position, problem in enumerate(problems[1:], start=1):
        if repr(problem.semiring) != repr(semiring):
            raise ProblemError(
                "batched problems must share one semiring; problem "
                f"{position} uses {problem.semiring.name}"
            )
        if len(problem.constraints) != len(head.constraints) or any(
            theirs.scope != ours.scope
            for theirs, ours in zip(problem.constraints, head.constraints)
        ):
            raise ProblemError(
                f"problem {position} does not share the batch topology "
                "(constraint scopes differ)"
            )
        if problem.con != head.con:
            raise ProblemError(
                f"problem {position} does not share the batch topology "
                f"(con {problem.con!r} != {head.con!r})"
            )
    try:
        lowering = resolve_lowering(semiring, backend)
    except KernelError as exc:
        raise ProblemError(str(exc)) from None
    if lowering is None:
        raise ProblemError(
            f"batched elimination needs a lowerable semiring; "
            f"{semiring.name} has no ufunc pair"
        )

    stats = SolverStats()
    con_set = set(head.con)
    order_fn = resolve_ordering(ordering)
    to_eliminate = [
        var
        for var in order_fn(head.variables, head.constraints)
        if var.name not in con_set
    ]
    pool: List[BatchDenseFactor] = [
        stack_factors(
            [
                DenseFactor.from_constraint(p.constraints[j], lowering)
                for p in problems
            ]
        )
        for j in range(len(head.constraints))
    ]
    for var in to_eliminate:
        bucket = [f for f in pool if var.name in f.support]
        rest = [f for f in pool if var.name not in f.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        combined = combine_factors(bucket)
        stats.largest_intermediate = max(
            stats.largest_intermediate,
            assignment_space_size(combined.scope),
        )
        pool = rest + [combined.hide(var.name)]
    solution = combine_factors(pool).project(head.con)
    if isinstance(solution, DenseFactor):  # pragma: no cover - 1-factor pool
        solution = stack_factors([solution] * len(problems))
    results: List[tuple[TableConstraint, SolverStats]] = []
    for member in solution.split():
        table = member.to_table()
        member_stats = replace(stats)
        member_stats.largest_intermediate = max(
            member_stats.largest_intermediate,
            assignment_space_size(table.scope),
        )
        results.append((table, member_stats))
    return results


def _result_from_table(
    problem: SCSP, table: TableConstraint, stats: SolverStats
) -> SolverResult:
    """Build the :class:`SolverResult` payload from ``Sol(P)``'s table."""
    semiring = problem.semiring
    values: Dict[tuple, Any] = {}
    names = table.support
    # The solution table normally comes out of `to_table`/
    # `DenseFactor.to_table` with every tuple explicit, so defaults are
    # irrelevant and the sparse walk avoids re-enumerating the assignment
    # space.  A degenerate problem (single table, nothing eliminated or
    # projected) can surface the user's sparse table unchanged — only
    # then do defaulted tuples matter.
    if len(table.table) == assignment_space_size(table.scope):
        entries = table.sparse_items()
    else:
        entries = table.items()
    for key, value in entries:
        values[key] = value
    blevel = semiring.sum(values.values())
    frontier = semiring.max_elements(values.values())
    optima = [
        [
            dict(zip(names, key))
            for key, value in values.items()
            if value == fv
        ]
        for fv in frontier
    ]
    return SolverResult(
        problem=problem,
        blevel=blevel,
        frontier=frontier,
        optima=optima,
        method="elimination",
        stats=stats,
    )


def solve_elimination(
    problem: SCSP,
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
    bucket_cache: Optional[BucketCache] = None,
) -> SolverResult:
    """Solve via bucket elimination; exact for partial orders too."""
    semiring = problem.semiring
    used_backend = _backend_label(semiring, backend)
    started = time.perf_counter()
    with get_tracer().span(
        "solver.solve", method="elimination", problem=problem.name
    ):
        table, stats = eliminate(
            problem, ordering, backend=backend, bucket_cache=bucket_cache
        )
    record_solve_metrics(
        "elimination",
        stats,
        time.perf_counter() - started,
        backend=used_backend,
    )
    return _result_from_table(problem, table, stats)


def solve_elimination_batch(
    problems: Sequence[SCSP],
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
) -> List[SolverResult]:
    """Solve B topology-sharing problems in one stacked bucket sweep.

    Returns one :class:`SolverResult` per problem, in submission order,
    each bit-identical to ``solve_elimination(problems[b])`` (the sweep
    is the per-instance schedule broadcast over the batch axis).  Wall
    time is reported to telemetry amortized — ``elapsed / B`` per member
    — so ``solver_solve_seconds`` keeps meaning per-solve cost.
    """
    started = time.perf_counter()
    with get_tracer().span(
        "solver.solve-batch", method="elimination", size=len(problems)
    ):
        eliminated = eliminate_batch(problems, ordering, backend=backend)
    elapsed = time.perf_counter() - started
    results: List[SolverResult] = []
    for problem, (table, stats) in zip(problems, eliminated):
        record_solve_metrics(
            "elimination",
            stats,
            elapsed / len(problems),
            backend="dense",
        )
        results.append(_result_from_table(problem, table, stats))
    return results


def _backend_label(semiring: Any, backend: str) -> str:
    """Which representation a solve with ``backend`` will actually use."""
    try:
        lowering: Optional[Lowering] = resolve_lowering(semiring, backend)
    except KernelError:
        return "dense"  # about to raise in eliminate(); label is moot
    return "dict" if lowering is None else "dense"
