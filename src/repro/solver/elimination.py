"""Bucket (variable) elimination for SCSPs.

Computes ``Sol(P) = (⊗C) ⇓ con`` without ever materializing the full
joint table: each non-interest variable is eliminated in turn by combining
only the constraints that mention it and projecting it out (distributivity
of ``×`` over ``+`` makes this exact for any c-semiring, total or partial).
Intermediate-table width depends on the elimination order — the E12
ablation compares the heuristics of :mod:`repro.solver.heuristics`.

Backends: when the semiring lowers to NumPy ufuncs (see
:mod:`repro.solver.kernels`) the same bucket schedule runs over
:class:`~repro.solver.kernels.DenseFactor` arrays — one broadcast ``⊗``
and one axis-reduction ``⇓`` per bucket instead of a Python loop per
assignment tuple.  The elimination ``ordering``, the statistics and the
resulting table are identical on both backends (bit-identical for the
four lowered semirings); partial orders transparently keep the dict path.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..constraints.operations import combine
from ..constraints.table import TableConstraint, to_table
from ..constraints.variables import Variable, assignment_space_size
from ..telemetry import get_tracer
from .heuristics import OrderingFn, resolve_ordering
from .kernels import (
    DenseFactor,
    KernelError,
    Lowering,
    combine_factors,
    resolve_lowering,
)
from .problem import (
    SCSP,
    ProblemError,
    SolverResult,
    SolverStats,
    record_solve_metrics,
)


def eliminate(
    problem: SCSP,
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
) -> tuple[TableConstraint, SolverStats]:
    """Return ``Sol(P)`` as an explicit table plus work statistics.

    ``backend`` selects the bucket representation: ``"dict"`` forces the
    tuple-table path, ``"dense"`` requires the vectorized kernels (and
    raises :class:`ProblemError` when the semiring does not lower), and
    ``"auto"`` uses dense whenever possible.
    """
    semiring = problem.semiring
    stats = SolverStats()
    con_set = set(problem.con)

    try:
        lowering = resolve_lowering(semiring, backend)
    except KernelError as exc:
        raise ProblemError(str(exc)) from None

    order_fn = resolve_ordering(ordering)
    to_eliminate = [
        var
        for var in order_fn(problem.variables, problem.constraints)
        if var.name not in con_set
    ]
    if lowering is not None:
        table = _eliminate_dense(problem, to_eliminate, lowering, stats)
    else:
        table = _eliminate_dict(problem, to_eliminate, stats)
    stats.largest_intermediate = max(
        stats.largest_intermediate, assignment_space_size(table.scope)
    )
    return table, stats


def _eliminate_dict(
    problem: SCSP, to_eliminate: List[Variable], stats: SolverStats
) -> TableConstraint:
    """The reference dict-of-tuples bucket schedule."""
    semiring = problem.semiring
    pool: List[TableConstraint] = [to_table(c) for c in problem.constraints]
    for var in to_eliminate:
        bucket = [c for c in pool if var.name in c.support]
        rest = [c for c in pool if var.name not in c.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        combined = combine(bucket, semiring=semiring)
        stats.largest_intermediate = max(
            stats.largest_intermediate,
            assignment_space_size(combined.scope),
        )
        eliminated = to_table(combined.hide(var.name))
        pool = rest + [eliminated]
    solution = combine(pool, semiring=semiring).project(problem.con)
    return to_table(solution)


def _eliminate_dense(
    problem: SCSP,
    to_eliminate: List[Variable],
    lowering: Lowering,
    stats: SolverStats,
) -> TableConstraint:
    """The same bucket schedule over broadcast ndarray factors."""
    pool: List[DenseFactor] = [
        DenseFactor.from_constraint(c, lowering)
        for c in problem.constraints
    ]
    for var in to_eliminate:
        bucket = [f for f in pool if var.name in f.support]
        rest = [f for f in pool if var.name not in f.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        combined = combine_factors(bucket)
        stats.largest_intermediate = max(
            stats.largest_intermediate,
            assignment_space_size(combined.scope),
        )
        pool = rest + [combined.hide(var.name)]
    solution = combine_factors(pool).project(problem.con)
    return solution.to_table()


def solve_elimination(
    problem: SCSP,
    ordering: str | OrderingFn = "min-degree",
    backend: str = "auto",
) -> SolverResult:
    """Solve via bucket elimination; exact for partial orders too."""
    semiring = problem.semiring
    used_backend = _backend_label(semiring, backend)
    started = time.perf_counter()
    with get_tracer().span(
        "solver.solve", method="elimination", problem=problem.name
    ):
        table, stats = eliminate(problem, ordering, backend=backend)
    record_solve_metrics(
        "elimination",
        stats,
        time.perf_counter() - started,
        backend=used_backend,
    )

    values: Dict[tuple, Any] = {}
    names = table.support
    # The solution table normally comes out of `to_table`/
    # `DenseFactor.to_table` with every tuple explicit, so defaults are
    # irrelevant and the sparse walk avoids re-enumerating the assignment
    # space.  A degenerate problem (single table, nothing eliminated or
    # projected) can surface the user's sparse table unchanged — only
    # then do defaulted tuples matter.
    if len(table.table) == assignment_space_size(table.scope):
        entries = table.sparse_items()
    else:
        entries = table.items()
    for key, value in entries:
        values[key] = value
    blevel = semiring.sum(values.values())
    frontier = semiring.max_elements(values.values())
    optima = [
        [
            dict(zip(names, key))
            for key, value in values.items()
            if value == fv
        ]
        for fv in frontier
    ]
    return SolverResult(
        problem=problem,
        blevel=blevel,
        frontier=frontier,
        optima=optima,
        method="elimination",
        stats=stats,
    )


def _backend_label(semiring: Any, backend: str) -> str:
    """Which representation a solve with ``backend`` will actually use."""
    try:
        lowering: Optional[Lowering] = resolve_lowering(semiring, backend)
    except KernelError:
        return "dense"  # about to raise in eliminate(); label is moot
    return "dict" if lowering is None else "dense"
