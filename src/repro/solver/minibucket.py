"""Mini-bucket elimination: anytime bounds on the blevel.

Exact bucket elimination (``repro.solver.elimination``) can blow up when
a bucket's combined scope is wide.  The mini-bucket scheme (Dechter &
Rish) caps the work: each bucket is *partitioned* into mini-buckets of at
most ``i_bound`` variables, and each mini-bucket is eliminated
separately.  Because every constraint still participates exactly once
and projection (⊕ over the eliminated variable) is taken per
mini-bucket,

    ⊗(mini-bucket projections)  ≥S  (full bucket projection),

by monotonicity and distributivity — so the final value is an
*optimistic* bound: ``minibucket_bound(P, i) ≥S blevel(P)`` for every
absorptive semiring, with equality when ``i_bound`` covers the widest
bucket.  Useful as a cheap screening test ("can this market possibly
reach quality α?") and as an admissible bound for search.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..constraints.operations import combine
from ..constraints.table import TableConstraint, to_table
from ..constraints.variables import assignment_space_size
from .heuristics import OrderingFn, resolve_ordering
from .problem import SCSP, ProblemError, SolverStats


def _partition_bucket(
    bucket: List[TableConstraint], i_bound: int
) -> List[List[TableConstraint]]:
    """Greedy first-fit partition of a bucket into mini-buckets whose
    joint scope has at most ``i_bound`` variables."""
    minibuckets: List[Tuple[set, List[TableConstraint]]] = []
    # widest constraints first: better packing
    for constraint in sorted(
        bucket, key=lambda c: -len(c.scope)
    ):
        names = set(constraint.support)
        placed = False
        for scope_names, members in minibuckets:
            if len(scope_names | names) <= i_bound:
                scope_names |= names
                members.append(constraint)
                placed = True
                break
        if not placed:
            minibuckets.append((set(names), [constraint]))
    return [members for _, members in minibuckets]


def minibucket_bound(
    problem: SCSP,
    i_bound: int,
    ordering: str | OrderingFn = "min-degree",
) -> Tuple[Any, SolverStats]:
    """An optimistic bound on ``blevel(problem)``: the true blevel is
    never better (``bound ≥S blevel``).

    ``i_bound`` ≥ 1 caps the joint scope of every mini-bucket; larger
    values tighten the bound at exponential-in-``i_bound`` cost, and a
    value at least the problem's induced width makes the bound exact.
    """
    if i_bound < 1:
        raise ProblemError("i_bound must be at least 1")
    semiring = problem.semiring
    stats = SolverStats()

    order_fn = resolve_ordering(ordering)
    elimination_order = order_fn(problem.variables, problem.constraints)

    pool: List[TableConstraint] = [to_table(c) for c in problem.constraints]
    for var in elimination_order:
        bucket = [c for c in pool if var.name in c.support]
        rest = [c for c in pool if var.name not in c.support]
        if not bucket:
            continue
        stats.buckets_processed += 1
        for members in _partition_bucket(bucket, max(i_bound, 1)):
            combined = combine(members, semiring=semiring)
            stats.largest_intermediate = max(
                stats.largest_intermediate,
                assignment_space_size(combined.scope),
            )
            rest.append(to_table(combined.hide(var.name)))
        pool = rest

    # every variable eliminated: only empty-scope constants remain
    bound = semiring.prod(c.value({}) for c in pool)
    return bound, stats


def screening_test(
    problem: SCSP, alpha: Any, i_bound: int = 2
) -> bool:
    """Fast necessary test for α-satisfiability.

    Returns ``False`` only when the problem provably cannot reach a
    solution as good as ``alpha`` (the optimistic bound already falls
    short); ``True`` means "possible — run the exact solver".
    """
    bound, _ = minibucket_bound(problem, i_bound)
    return problem.semiring.geq(bound, alpha)
