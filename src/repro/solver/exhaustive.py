"""Exhaustive SCSP solving — the reference backend.

Enumerates every complete assignment, folds ``+`` for the blevel and
keeps the ≤S-maximal frontier with its witnesses.  Exact for *any*
semiring (including partial orders, where branch & bound does not apply)
and the ground truth the other backends are tested against.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..constraints.variables import iter_assignments
from ..telemetry import get_tracer
from .problem import SCSP, SolverResult, SolverStats, record_solve_metrics


def solve_exhaustive(problem: SCSP) -> SolverResult:
    """Enumerate the full assignment space of ``problem``.

    The blevel is folded over *combined* values (⊕ of ⊗C over complete
    assignments); witnesses are grouped by their projection onto ``con``,
    and a projected assignment's value is the ⊕ over its extensions —
    exactly ``Sol(P)`` evaluated pointwise.
    """
    semiring = problem.semiring
    stats = SolverStats()
    started = time.perf_counter()

    # value of Sol(P) per con-assignment (key: sorted tuple of items)
    solution_values: Dict[tuple, Any] = {}
    con_set = set(problem.con)

    blevel = semiring.zero
    with get_tracer().span(
        "solver.solve", method="exhaustive", problem=problem.name
    ):
        for assignment in iter_assignments(problem.variables):
            stats.leaves_evaluated += 1
            value = problem.evaluate(assignment)
            blevel = semiring.plus(blevel, value)
            key = tuple(
                sorted((k, v) for k, v in assignment.items() if k in con_set)
            )
            previous = solution_values.get(key, semiring.zero)
            solution_values[key] = semiring.plus(previous, value)
    record_solve_metrics("exhaustive", stats, time.perf_counter() - started)

    frontier = semiring.max_elements(solution_values.values())
    optima: List[List[Dict[str, Any]]] = [
        [dict(key) for key, value in solution_values.items() if value == fv]
        for fv in frontier
    ]
    return SolverResult(
        problem=problem,
        blevel=blevel,
        frontier=frontier,
        optima=optima,
        method="exhaustive",
        stats=stats,
    )
