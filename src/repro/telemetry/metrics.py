"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single entry point: instrumented code
asks it for a metric by name (get-or-create, idempotent) and increments
the returned instrument.  Metrics may carry labels — ``counter.labels``
returns (and memoizes) one child instrument per label-value tuple, the
same family model Prometheus clients use.

The disabled path is :class:`NullRegistry`: every lookup returns one
shared null instrument whose methods are no-ops, so instrumentation left
in a hot path costs an attribute lookup and an empty call when telemetry
is off.  Code that wants literally zero per-iteration cost can hoist
``registry.enabled`` out of the loop.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): wide enough for μs-scale semiring
#: ops up to multi-second exhaustive solves.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class MetricsError(Exception):
    """Raised on inconsistent metric registration (name/kind clashes)."""


class _Timer:
    """Context manager that observes elapsed wall time on a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _Metric:
    """Shared family/child mechanics for every metric kind."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[Any, ...], "_Metric"] = {}
        # Guards child creation and value mutation: the runtime serves
        # sessions from several worker threads against one registry.
        self._lock = threading.Lock()

    # -- family ---------------------------------------------------------

    def labels(self, *values: Any, **by_name: Any) -> Any:
        """The child instrument for one label-value combination."""
        if not self.labelnames:
            raise MetricsError(f"{self.name} takes no labels")
        if by_name:
            if values:
                raise MetricsError(
                    "pass label values positionally or by name, not both"
                )
            try:
                values = tuple(by_name[n] for n in self.labelnames)
            except KeyError as exc:
                raise MetricsError(
                    f"{self.name} misses label {exc.args[0]!r}"
                ) from None
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name} needs {len(self.labelnames)} label value(s), "
                f"got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._make_child()
                    self._children[values] = child
        return child

    def preseed(self, combinations: Iterable[Any]) -> "_Metric":
        """Ensure children exist (at zero) for every combination given.

        Accepts single values for one-label families or tuples otherwise;
        lets exporters show a complete family (e.g. all ten nmsccp rules)
        before anything fired.
        """
        for combo in combinations:
            if not isinstance(combo, tuple):
                combo = (combo,)
            self.labels(*combo)
        return self

    def _make_child(self) -> "_Metric":
        return type(self)(self.name, self.help)

    # -- export ---------------------------------------------------------

    def samples(self) -> List[Dict[str, Any]]:
        """Flat sample dicts (one per child, or one for the bare metric)."""
        if self.labelnames:
            return [
                {
                    "labels": dict(zip(self.labelnames, values)),
                    **child._sample_value(),
                }
                for values, child in sorted(
                    self._children.items(), key=lambda kv: repr(kv[0])
                )
            ]
        return [{"labels": {}, **self._sample_value()}]

    def _sample_value(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": self.samples(),
        }


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricsError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample_value(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge(_Metric):
    """A value that can go up and down (or track a running maximum)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _sample_value(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative bucket counts, à la Prometheus)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise MetricsError("a histogram needs at least one bucket")
        self.buckets: Tuple[float, ...] = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def time(self) -> _Timer:
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus ``le`` semantics."""
        out: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return out

    def _sample_value(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": dict(
                zip(
                    [*map(str, self.buckets), "+Inf"],
                    self.cumulative_counts(),
                )
            ),
        }


class MetricsRegistry:
    """Named, process-local metric store (get-or-create semantics)."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kw: Any
    ) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames=labelnames, **kw)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise MetricsError(
                f"{name!r} already registered as a {metric.kind}"
            )
        if tuple(labelnames) != metric.labelnames:
            raise MetricsError(
                f"{name!r} already registered with labels "
                f"{metric.labelnames!r}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dump of every metric and sample."""
        return {"metrics": [metric.to_dict() for metric in self.metrics()]}


class _NullInstrument:
    """One object that absorbs the whole instrument API as no-ops."""

    __slots__ = ()

    def labels(self, *values: Any, **by_name: Any) -> "_NullInstrument":
        return self

    def preseed(self, combinations: Iterable[Any]) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every lookup returns the null instrument."""

    enabled = False

    def counter(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def metrics(self) -> List[_Metric]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"metrics": []}


NULL_REGISTRY = NullRegistry()
