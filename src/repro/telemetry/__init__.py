"""repro.telemetry — metrics, tracing, and a structured event log.

The measurement substrate for the whole stack (ROADMAP: "fast as the
hardware allows" is unprovable without numbers).  Solver backends,
the broker, the nmsccp interpreter and the fault/monitor loop all report
through the *active session*; by default that session is a set of null
objects, so the instrumented library costs nothing until a CLI flag,
bench hook, or test turns collection on:

    from repro.telemetry import telemetry_session
    with telemetry_session() as t:
        broker.negotiate(request)
        print(t.snapshot()["metrics"])
"""

from .caching import DEFAULT_CACHE_SIZE, LRUCache, cache_stats
from .events import NULL_EVENT_LOG, EventLog, NullEventLog
from .exporters import (
    snapshot,
    to_prometheus,
    write_prometheus,
    write_snapshot,
    write_trace_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .runtime import (
    TelemetrySession,
    enabled,
    get_events,
    get_registry,
    get_tracer,
    install,
    telemetry_session,
    uninstall,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "LRUCache",
    "DEFAULT_CACHE_SIZE",
    "cache_stats",
    "TelemetrySession",
    "get_registry",
    "get_tracer",
    "get_events",
    "enabled",
    "install",
    "uninstall",
    "telemetry_session",
    "snapshot",
    "write_snapshot",
    "to_prometheus",
    "write_prometheus",
    "write_trace_jsonl",
]
