"""Back-compat shim — the bounded LRU now lives in :mod:`repro.caching`.

Every cache in the tree (this one, the store's entailment memo, the
solver's result cache) shares that single implementation and its
``cache_stats()`` interface.  Import from :mod:`repro.caching` in new
code.
"""

from __future__ import annotations

from ..caching import DEFAULT_CACHE_SIZE, LRUCache, _MISSING, cache_stats

__all__ = ["DEFAULT_CACHE_SIZE", "LRUCache", "cache_stats", "_MISSING"]
