"""A bounded LRU map whose hit/miss traffic feeds the metrics registry.

Used to cap the memo caches that used to grow without bound (the query
engine's offer-level cache, the store's entailment memo).  Counter
children are re-resolved only when the active registry changes, so the
per-access telemetry cost is one identity comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from .runtime import get_registry

_MISSING = object()

#: Default capacity for library caches (satellite spec).
DEFAULT_CACHE_SIZE = 4096


class LRUCache:
    """Least-recently-used mapping with a hard capacity.

    Keys are kept with strong references, so identity-keyed callers
    (e.g. caching per-constraint-object results) never see an id reused
    by the garbage collector while the entry is alive.
    """

    def __init__(
        self, maxsize: int = DEFAULT_CACHE_SIZE, name: str = "cache"
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.name = name
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bound: Tuple[Any, Any, Any] = (None, None, None)

    # -- telemetry ------------------------------------------------------

    def _counters(self) -> Tuple[Any, Any]:
        registry, hit, miss = self._bound
        active = get_registry()
        if registry is not active:
            hit = active.counter(
                "cache_hits_total",
                "Cache lookups answered from the cache.",
                labelnames=("cache",),
            ).labels(self.name)
            miss = active.counter(
                "cache_misses_total",
                "Cache lookups that had to be computed.",
                labelnames=("cache",),
            ).labels(self.name)
            self._bound = (active, hit, miss)
        return hit, miss

    # -- mapping --------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        hit, miss = self._counters()
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            miss.inc()
            return default
        self._data.move_to_end(key)
        self.hits += 1
        hit.inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting the LRU tail if shrinking."""
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        while len(self._data) > maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache({self.name!r}, {len(self._data)}/{self.maxsize}, "
            f"{self.hits} hit(s), {self.misses} miss(es))"
        )
