"""Structured event log: append-only, JSON-lines on disk.

Events are small dicts (``ts`` + ``kind`` + free-form fields) recording
discrete facts the metrics aggregate away — *which* SLA was violated,
*which* provider got blacklisted, *which* fault fired.  The log is
bounded (a deque) so a long-running broker cannot grow without limit.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Union


class EventLog:
    """Bounded in-memory event journal with a JSONL exporter."""

    enabled = True

    def __init__(self, maxlen: Optional[int] = 100_000) -> None:
        self._events: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        self.dropped = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        event = {"ts": time.time(), "kind": kind, **fields}
        if (
            self._events.maxlen is not None
            and len(self._events) == self._events.maxlen
        ):
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [event for event in self._events if event["kind"] == kind]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(event, default=str, sort_keys=True)
            for event in self._events
        )

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write every event as one JSON line; returns the event count."""
        text = self.to_jsonl()
        Path(path).write_text(text + "\n" if text else "")
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class NullEventLog:
    """The disabled event log."""

    enabled = False
    dropped = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(())

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path: Union[str, Path]) -> int:
        return 0

    def clear(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()
