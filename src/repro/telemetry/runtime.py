"""The process-wide telemetry session.

Instrumented modules fetch the active registry/tracer/event log through
``get_registry()``/``get_tracer()``/``get_events()``.  By default those
return the null implementations, so all instrumentation in the library
is free until somebody calls :func:`install` (the CLI's ``--telemetry``,
the bench harness, or a test) — and everything reverts on
:func:`uninstall`.

``telemetry_session`` is the scoped form: install, yield the session,
restore whatever was active before (sessions nest).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from .events import NULL_EVENT_LOG, EventLog
from .metrics import NULL_REGISTRY, MetricsRegistry
from .tracing import NULL_TRACER, Tracer


@dataclass
class TelemetrySession:
    """One coherent set of collection surfaces."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    events: EventLog = field(default_factory=EventLog)

    def snapshot(self) -> Dict[str, Any]:
        from .exporters import snapshot

        return snapshot(self.registry, self.tracer, self.events)


_registry: Any = NULL_REGISTRY
_tracer: Any = NULL_TRACER
_events: Any = NULL_EVENT_LOG


def get_registry() -> Any:
    """The active metrics registry (null when telemetry is off)."""
    return _registry


def get_tracer() -> Any:
    """The active tracer (null when telemetry is off)."""
    return _tracer


def get_events() -> Any:
    """The active event log (null when telemetry is off)."""
    return _events


def enabled() -> bool:
    return _registry.enabled


def install(session: Optional[TelemetrySession] = None) -> TelemetrySession:
    """Make ``session`` (a fresh one by default) the active telemetry."""
    global _registry, _tracer, _events
    session = session or TelemetrySession()
    _registry = session.registry
    _tracer = session.tracer
    _events = session.events
    return session


def uninstall() -> None:
    """Back to the null implementations."""
    global _registry, _tracer, _events
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER
    _events = NULL_EVENT_LOG


@contextmanager
def telemetry_session(
    session: Optional[TelemetrySession] = None,
) -> Iterator[TelemetrySession]:
    """Scoped install: restores the previously active surfaces on exit."""
    global _registry, _tracer, _events
    previous = (_registry, _tracer, _events)
    active = install(session)
    try:
        yield active
    finally:
        _registry, _tracer, _events = previous
