"""Hierarchical spans: who called what, and how long it took.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span makes it the parent of any span opened before it exits, so nested
instrumentation (broker step → per-candidate solve → solver backend)
composes into a tree without any explicit plumbing.  Finished root spans
accumulate on ``tracer.finished`` for export.

The open-span stack lives in a :class:`~contextvars.ContextVar`, so
concurrent asyncio tasks (one per runtime session) and executor threads
each see their own lineage: a worker that copies its context before
offloading a solve gets the session span as parent, while sibling
sessions never nest under one another.

The disabled path is :class:`NullTracer`, whose ``span`` returns a
shared no-op context manager.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One timed operation, possibly with children."""

    __slots__ = (
        "name",
        "attributes",
        "parent",
        "children",
        "started_at",
        "duration_s",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.parent = parent
        self.children: List[Span] = []
        self.started_at = time.time()
        self.duration_s: Optional[float] = None
        self._t0 = time.perf_counter()

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def iter_tree(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        took = (
            f"{self.duration_s * 1e3:.3f}ms" if self.finished else "open"
        )
        return f"Span({self.name!r}, {took}, {len(self.children)} child(ren))"


class _SpanContext:
    """The context manager wrapping one span's lifetime."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        span = self._span
        span.duration_s = time.perf_counter() - span._t0
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(span)


class Tracer:
    """Builds span trees; keeps finished roots for export.

    Safe under concurrency: the open-span stack is context-local (one
    per task/thread context) and the finished-roots list is guarded by a
    lock, so sessions served in parallel produce disjoint trees.
    """

    enabled = True

    def __init__(self) -> None:
        self.finished: List[Span] = []
        self._lock = threading.Lock()
        self._stack_var: ContextVar[Tuple[Span, ...]] = ContextVar(
            "repro_trace_stack", default=()
        )

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        span = Span(name, attributes, parent)
        if parent is not None:
            parent.children.append(span)
        self._stack_var.set(stack + (span,))
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        # Close any dangling descendants left open by an exception.
        stack = self._stack_var.get()
        while stack and stack[-1] is not span:
            dangling = stack[-1]
            stack = stack[:-1]
            if dangling.duration_s is None:
                dangling.duration_s = time.perf_counter() - dangling._t0
        if stack and stack[-1] is span:
            stack = stack[:-1]
        self._stack_var.set(stack)
        if span.parent is None:
            with self._lock:
                self.finished.append(span)

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, roots first, depth-first."""
        for root in self.finished:
            yield from root.iter_tree()

    def span_names(self) -> List[str]:
        return [span.name for span in self.iter_spans()]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Flat span records (parent by name), ready for JSON lines."""
        records = []
        for span in self.iter_spans():
            records.append(
                {
                    "name": span.name,
                    "parent": span.parent.name if span.parent else None,
                    "started_at": span.started_at,
                    "duration_s": span.duration_s,
                    "attributes": dict(span.attributes),
                }
            )
        return records

    def clear(self) -> None:
        with self._lock:
            self.finished.clear()
        self._stack_var.set(())


class _NullSpanContext:
    """Shared do-nothing span context (also quacks like a Span)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return NULL_SPAN

    @property
    def current(self) -> None:
        return None

    @property
    def finished(self) -> List[Span]:
        return []

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def span_names(self) -> List[str]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
