"""Turning collected telemetry into files and wire formats.

Two formats:

* ``snapshot(...)`` — one JSON-able dict with every metric sample, the
  finished span trees and the event count; what the CLI's ``--telemetry``
  embeds in its output and the bench harness writes next to its
  ``BENCH_*.json`` artifacts.
* ``to_prometheus(registry)`` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` + samples), so a scrape endpoint needs nothing
  beyond serving this string.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union


def snapshot(
    registry: Any, tracer: Any = None, events: Any = None
) -> Dict[str, Any]:
    """One JSON-able dict for the whole session."""
    out: Dict[str, Any] = registry.snapshot()
    if tracer is not None:
        out["spans"] = tracer.to_dicts()
    if events is not None:
        out["events_total"] = len(events)
        out["events_dropped"] = events.dropped
    return out


def write_snapshot(
    path: Union[str, Path],
    registry: Any,
    tracer: Any = None,
    events: Any = None,
) -> Dict[str, Any]:
    payload = snapshot(registry, tracer, events)
    Path(path).write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return payload


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def to_prometheus(registry: Any) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    for metric in registry.metrics():
        info = metric.to_dict()
        name, kind = info["name"], info["kind"]
        if info["help"]:
            lines.append(f"# HELP {name} {info['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in info["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                for bound, count in sample["buckets"].items():
                    bucket_labels = {**labels, "le": bound}
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{count}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: Union[str, Path], registry: Any) -> str:
    text = to_prometheus(registry)
    Path(path).write_text(text)
    return text


def write_trace_jsonl(
    path: Union[str, Path], tracer: Any, events: Optional[Any] = None
) -> int:
    """Spans (and, optionally, events) as JSON lines; returns line count.

    Each line is tagged ``{"record": "span" | "event", ...}`` so one file
    can hold both streams in arrival order.
    """
    lines = []
    for record in tracer.to_dicts():
        lines.append(json.dumps({"record": "span", **record}, default=str))
    if events is not None:
        for event in events:
            lines.append(
                json.dumps({"record": "event", **event}, default=str)
            )
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)
