"""Composite-bound propagation over composition plans.

The analytics column and the semiring column must never disagree: a
pipeline's availability bound here is the same ``∏Rᵢ`` the Probabilistic
semiring's ``×`` computes during negotiation, because both fold through
the *same* :data:`~repro.soa.composition.AGGREGATION_RULES` table.  This
module only ever derives rules from that table — it never reimplements
an operator — so the two columns stay pinned equal by construction (and
the test suite cross-checks them against
:func:`~repro.dependability.metrics.series_reliability` /
:func:`~repro.dependability.metrics.compose_series_parallel`).

``Choose`` nodes have two readings:

* ``"worst-case"`` (default, the table's own ``choose`` column): the
  guarantee that holds *whichever* branch runs — right for an exclusive
  routing decision outside our control;
* ``"redundant"``: branches are failover replicas, the composite
  succeeds when *any* replica does — ``1 − ∏(1 − Rᵢ)`` via
  :func:`~repro.dependability.metrics.parallel_reliability`.  Only
  meaningful for multiplicative (probability-valued) attributes, so any
  other attribute is refused unless the caller supplies an explicit
  base rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..dependability.metrics import parallel_reliability
from ..soa.composition import (
    AGGREGATION_RULES,
    AggregationRule,
    Invoke,
    Plan,
    aggregate,
)


class SLOError(Exception):
    """Raised on malformed analytics inputs (unknown attribute, invalid
    target, non-probabilistic redundancy, …)."""


#: Valid ``Choose`` interpretations.
CHOOSE_MODES: Tuple[str, ...] = ("worst-case", "redundant")

#: Attributes whose levels are probabilities composed multiplicatively —
#: the only ones the ``redundant`` choice reading applies to.
MULTIPLICATIVE_ATTRIBUTES = frozenset({"availability", "reliability"})


def analysis_rule(
    attribute: str,
    choose: str = "worst-case",
    rule: Optional[AggregationRule] = None,
) -> AggregationRule:
    """The aggregation rule the analytics fold under.

    Derived from :data:`AGGREGATION_RULES` (or an explicit ``rule``)
    with only the ``choose`` column substituted in ``redundant`` mode —
    the ``sequence``/``split`` columns are always the table's own, which
    is what keeps the bound equal to the semiring ``×`` fold.
    """
    if choose not in CHOOSE_MODES:
        raise SLOError(
            f"unknown choose mode {choose!r}; valid: {', '.join(CHOOSE_MODES)}"
        )
    base = rule
    if base is None:
        try:
            base = AGGREGATION_RULES[attribute]
        except KeyError:
            known = ", ".join(sorted(AGGREGATION_RULES))
            raise SLOError(
                f"no aggregation rule for attribute {attribute!r}; "
                f"known: {known} (pass rule= explicitly)"
            ) from None
    if choose == "worst-case":
        return base
    if rule is None and attribute not in MULTIPLICATIVE_ATTRIBUTES:
        raise SLOError(
            f"redundant choice needs a probability-valued attribute "
            f"(got {attribute!r}); pass rule= to opt in explicitly"
        )
    return AggregationRule(
        sequence=base.sequence,
        split=base.split,
        choose=parallel_reliability,
    )


def composite_bound(
    plan: Plan,
    levels: Mapping[str, float],
    attribute: str = "availability",
    choose: str = "worst-case",
    rule: Optional[AggregationRule] = None,
) -> float:
    """Best value ``plan`` can deliver given per-service ``levels``.

    Because every column of every rule is monotone in each argument,
    feeding each service's *best* achievable level yields the exact
    reachable optimum — the soundness/completeness the E19 bench gates
    against exhaustive enumeration.
    """
    return aggregate(
        plan, levels, attribute, rule=analysis_rule(attribute, choose, rule)
    )


@dataclass(frozen=True)
class StageBound:
    """One top-level stage of a plan with its own composite bound."""

    index: int
    label: str
    bound: float
    services: Tuple[str, ...]


def stage_bounds(
    plan: Plan,
    levels: Mapping[str, float],
    attribute: str = "availability",
    choose: str = "worst-case",
    rule: Optional[AggregationRule] = None,
) -> Tuple[StageBound, ...]:
    """Per-stage bounds: one entry per direct child of a composite root
    (the whole plan as a single stage when the root is a leaf).

    The remediation and error-budget layers both reason at this
    granularity — "stage 2 is the weak link" is actionable where a flat
    number is not.
    """
    children = (plan,) if isinstance(plan, Invoke) else plan.children  # type: ignore[attr-defined]
    return tuple(
        StageBound(
            index=index,
            label=child.describe(),
            bound=composite_bound(child, levels, attribute, choose, rule),
            services=tuple(child.services()),
        )
        for index, child in enumerate(children)
    )
