"""Per-dependency error-budget attribution.

An SLO target ``t`` leaves a total error budget of ``1 − t`` —
the unavailability a client has agreed to tolerate.  Each stage of the
composition consumes part of it: under serial composition the composite
unavailability is ``1 − ∏Rᵢ ≈ Σ(1 − Rᵢ)`` to first order, so a stage's
*share* is its own unavailability divided by the budget.  A stage
consuming more than :data:`DEFAULT_FLAG_SHARE` (30%) of the budget is
flagged high-risk — the signal the broker's matchmaking penalty feeds
on (see ``Broker(slo_penalty=…)``).

Shares are attributed per *stage* (direct child of the plan root, the
same granularity as :func:`~repro.slo.bounds.stage_bounds`): a
redundant group consumes budget as a group, not per replica.  The exact
composite is always reported alongside, so the first-order reading can
be sanity-checked; shares may legitimately sum past 1.0 — that *is* the
finding (the plan overspends its budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..soa.composition import AggregationRule, Plan
from ..telemetry import get_registry
from .bounds import (
    MULTIPLICATIVE_ATTRIBUTES,
    SLOError,
    composite_bound,
    stage_bounds,
)

#: A dependency eating more than this fraction of the client's error
#: budget is flagged high-risk.
DEFAULT_FLAG_SHARE = 0.30


def share_of(level: float, target: float) -> float:
    """Fraction of the ``1 − target`` budget a dependency at ``level``
    consumes on its own.  ``inf`` when the target leaves no budget at
    all but the dependency still fails sometimes."""
    if not 0.0 <= level <= 1.0:
        raise SLOError(f"level {level!r} is not a probability")
    if not 0.0 <= target <= 1.0:
        raise SLOError(f"target {target!r} is not a probability")
    unavailability = 1.0 - level
    budget = 1.0 - target
    if budget == 0.0:
        return math.inf if unavailability > 0.0 else 0.0
    return unavailability / budget


@dataclass(frozen=True)
class BudgetShare:
    """One stage's slice of the error budget."""

    stage: str
    services: Tuple[str, ...]
    level: float
    unavailability: float
    share: float
    flagged: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "services": list(self.services),
            "level": self.level,
            "unavailability": self.unavailability,
            "share": self.share,
            "flagged": self.flagged,
        }


@dataclass(frozen=True)
class ErrorBudget:
    """The full breakdown of ``1 − target`` across a plan's stages."""

    attribute: str
    target: float
    budget: float
    composite: float
    flag_share: float
    shares: Tuple[BudgetShare, ...]

    def flagged(self) -> Tuple[BudgetShare, ...]:
        return tuple(share for share in self.shares if share.flagged)

    @property
    def spent_share(self) -> float:
        """First-order total: Σ per-stage shares (may exceed 1.0)."""
        return sum(share.share for share in self.shares)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attribute": self.attribute,
            "target": self.target,
            "budget": self.budget,
            "composite": self.composite,
            "flag_share": self.flag_share,
            "spent_share": self.spent_share,
            "shares": [share.to_dict() for share in self.shares],
        }


def error_budget(
    plan: Plan,
    levels: Mapping[str, float],
    target: float,
    attribute: str = "availability",
    choose: str = "worst-case",
    rule: Optional[AggregationRule] = None,
    flag_share: float = DEFAULT_FLAG_SHARE,
) -> ErrorBudget:
    """Attribute the error budget of ``target`` across ``plan``'s stages.

    Only defined for probability-valued attributes (an additive cost has
    no "budget of nines" to slice).
    """
    if attribute not in MULTIPLICATIVE_ATTRIBUTES:
        raise SLOError(
            "error budgets are defined for probability-valued attributes "
            f"({', '.join(sorted(MULTIPLICATIVE_ATTRIBUTES))}), "
            f"not {attribute!r}"
        )
    if not 0.0 < target < 1.0:
        raise SLOError(
            f"target {target!r} leaves no meaningful error budget "
            "(need 0 < target < 1)"
        )
    if not 0.0 < flag_share <= 1.0:
        raise SLOError("flag_share must be in (0, 1]")
    budget = 1.0 - target
    shares = []
    for stage in stage_bounds(plan, levels, attribute, choose, rule):
        unavailability = 1.0 - stage.bound
        share = unavailability / budget
        shares.append(
            BudgetShare(
                stage=stage.label,
                services=stage.services,
                level=stage.bound,
                unavailability=unavailability,
                share=share,
                flagged=share > flag_share,
            )
        )
    breakdown = ErrorBudget(
        attribute=attribute,
        target=target,
        budget=budget,
        composite=composite_bound(plan, levels, attribute, choose, rule),
        flag_share=flag_share,
        shares=tuple(shares),
    )
    registry = get_registry()
    if registry.enabled and breakdown.flagged():
        registry.counter(
            "slo_budget_flags_total",
            "Stages flagged for consuming too much error budget.",
            labelnames=("attribute",),
        ).labels(attribute).inc(len(breakdown.flagged()))
    return breakdown
