"""Adaptive buffers: stop trusting advertised QoS.

External providers advertise the levels they would *like* to deliver.
The analytics layer instead plans against

    ``effective = min(observed Wilson lower bound, published) × buffer``

once enough observations exist: the Wilson lower bound is what the
delivered history *proves* at 95% confidence, ``min`` keeps a lucky
streak from exceeding the advertised ceiling, and ``buffer`` (default
0.9) is the planning safety margin.

No-data convention (the satellite fix this module pins): the two
estimators in :mod:`repro.dependability.metrics` answer "no data" in
*opposite* directions —

* :attr:`~repro.dependability.metrics.ObservationWindow.reliability`
  returns the **optimistic** prior ``1.0`` (absence of evidence of
  failure — right for monitors that must not alarm before data);
* :func:`~repro.dependability.metrics.wilson_lower_bound` returns the
  **conservative** prior ``0.0`` (absence of evidence of success —
  right for a prudent advertisement).

Mixing them in one formula silently flips a plan's verdict at the first
observation, so this module never consumes either prior: below
``min_attempts`` observations the history is declared uninformative and
the effective level falls back to ``published × buffer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional

from ..dependability.metrics import ObservationWindow, wilson_lower_bound
from .bounds import SLOError

#: Default planning safety margin applied to every external level.
DEFAULT_BUFFER = 0.9

#: Observations required before a history is treated as informative.
DEFAULT_MIN_ATTEMPTS = 5


@dataclass(frozen=True)
class EffectiveLevel:
    """One provider level after observation discounting."""

    service_id: str
    published: float
    effective: float
    attempts: int
    informative: bool
    observed_lower: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "service_id": self.service_id,
            "published": self.published,
            "effective": self.effective,
            "attempts": self.attempts,
            "informative": self.informative,
            "observed_lower": self.observed_lower,
        }


def effective_level(
    service_id: str,
    published: float,
    observed: Optional[ObservationWindow] = None,
    buffer: float = DEFAULT_BUFFER,
    min_attempts: int = DEFAULT_MIN_ATTEMPTS,
    z: float = 1.96,
) -> EffectiveLevel:
    """The level the analytics should plan with for one provider."""
    if not 0.0 <= published <= 1.0:
        raise SLOError(
            f"published level {published!r} is not a probability"
        )
    if not 0.0 < buffer <= 1.0:
        raise SLOError("buffer must be in (0, 1]")
    if min_attempts < 1:
        raise SLOError("min_attempts must be at least 1")
    informative = (
        observed is not None and observed.attempts >= min_attempts
    )
    if not informative:
        # The explicit no-data guard: neither the optimistic 1.0 prior
        # nor the conservative 0.0 prior enters the formula.
        return EffectiveLevel(
            service_id=service_id,
            published=published,
            effective=published * buffer,
            attempts=0 if observed is None else observed.attempts,
            informative=False,
        )
    lower = wilson_lower_bound(
        observed.attempts - observed.failures, observed.attempts, z
    )
    return EffectiveLevel(
        service_id=service_id,
        published=published,
        effective=min(lower, published) * buffer,
        attempts=observed.attempts,
        informative=True,
        observed_lower=lower,
    )


def effective_levels(
    published: Mapping[str, float],
    observations: Optional[Mapping[str, ObservationWindow]] = None,
    buffer: float = DEFAULT_BUFFER,
    min_attempts: int = DEFAULT_MIN_ATTEMPTS,
    z: float = 1.96,
) -> Dict[str, EffectiveLevel]:
    """Discount a whole market's published levels at once."""
    observations = observations or {}
    return {
        service_id: effective_level(
            service_id,
            level,
            observations.get(service_id),
            buffer=buffer,
            min_attempts=min_attempts,
            z=z,
        )
        for service_id, level in published.items()
    }


def window_from_reports(
    reports: Iterable[Any], service_id: Optional[str] = None
) -> ObservationWindow:
    """Fold execution reports into one :class:`ObservationWindow`.

    With ``service_id`` the window counts that service's invocation
    outcomes across the reports; without it, whole-plan runs (the shape
    :class:`~repro.soa.monitor.SLAMonitor` windows hold).
    """
    attempts = failures = 0
    for report in reports:
        if service_id is None:
            attempts += 1
            failures += 0 if report.success else 1
            continue
        for outcome in report.outcomes:
            if outcome.service_id == service_id:
                attempts += 1
                failures += 0 if outcome.success else 1
    return ObservationWindow(attempts=attempts, failures=failures)
