"""The unachievable-SLO detector (reject before negotiating).

A target the composition graph cannot reach *at advertised levels* will
not become reachable by matchmaking harder — every aggregation operator
is monotone, so the composite bound over per-service best levels is the
exact reachable optimum.  The broker therefore consults
:func:`check_slo` before matchmaking: a target semiring-above the bound
comes back as a typed :class:`SLOVerdict` rejection whose
``remediations`` say *what would make it reachable* — which stage to
replicate (and how many replicas), what per-stage level would suffice,
or a k-out-of-n quorum suggestion via
:func:`~repro.dependability.metrics.k_out_of_n_reliability`.

On plans of ≤6 services the verdict is certified sound and complete
against exhaustive enumeration over per-service levels (E19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..dependability.metrics import (
    k_out_of_n_reliability,
    parallel_reliability,
)
from ..semirings.base import Semiring
from ..soa.composition import AggregationRule, Plan
from ..soa.qos import QoSError, resolve_attribute
from ..telemetry import get_events, get_registry
from .bounds import (
    MULTIPLICATIVE_ATTRIBUTES,
    SLOError,
    StageBound,
    composite_bound,
    stage_bounds,
)

#: Search caps for remediation suggestions — small on purpose: a
#: suggestion to run 40 replicas is not actionable advice.
MAX_REPLICAS = 8
MAX_QUORUM_GROUP = 5
_BISECTION_STEPS = 60


@dataclass(frozen=True)
class Remediation:
    """One concrete way to make the rejected target reachable.

    ``action`` is one of ``raise-stage-level`` (bring one stage to
    ``suggested_level``), ``uniform-stage-level`` (bring *every* stage
    to ``suggested_level``), ``replicate-stage`` (run ``replicas``
    failover copies of the stage), or ``k-out-of-n`` (a ``quorum`` out
    of ``replicas`` redundancy group).
    """

    action: str
    stage: str
    detail: str
    suggested_level: Optional[float] = None
    replicas: Optional[int] = None
    quorum: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "action": self.action,
            "stage": self.stage,
            "detail": self.detail,
        }
        if self.suggested_level is not None:
            payload["suggested_level"] = self.suggested_level
        if self.replicas is not None:
            payload["replicas"] = self.replicas
        if self.quorum is not None:
            payload["quorum"] = self.quorum
        return payload


@dataclass(frozen=True)
class SLOVerdict:
    """The detector's typed answer — rejection or clearance.

    ``achievable`` compares the composite ``bound`` against ``target``
    in the attribute's semiring order (so a *cost* target below the
    cheapest composite is just as unachievable as an availability target
    above the most reliable one).  ``margin`` is the numeric headroom
    ``bound − target`` (positive means slack under a higher-is-better
    order).  Unachievable verdicts always carry at least one
    remediation.
    """

    attribute: str
    target: float
    bound: float
    achievable: bool
    choose: str
    margin: Optional[float]
    stages: Tuple[StageBound, ...]
    remediations: Tuple[Remediation, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attribute": self.attribute,
            "target": self.target,
            "bound": self.bound,
            "achievable": self.achievable,
            "choose": self.choose,
            "margin": self.margin,
            "stages": [
                {
                    "index": stage.index,
                    "label": stage.label,
                    "bound": stage.bound,
                    "services": list(stage.services),
                }
                for stage in self.stages
            ],
            "remediations": [r.to_dict() for r in self.remediations],
        }

    def raise_if_unachievable(self) -> "SLOVerdict":
        if not self.achievable:
            raise UnachievableSLOError(self)
        return self


class UnachievableSLOError(SLOError):
    """Typed rejection: the requested SLO exceeds the composite bound."""

    def __init__(self, verdict: SLOVerdict) -> None:
        self.verdict = verdict
        hint = (
            f"; try: {verdict.remediations[0].detail}"
            if verdict.remediations
            else ""
        )
        super().__init__(
            f"{verdict.attribute} target {verdict.target!r} is unachievable"
            f" — composite bound {verdict.bound!r}{hint}"
        )


def check_slo(
    plan: Plan,
    levels: Mapping[str, float],
    target: float,
    attribute: str = "availability",
    choose: str = "worst-case",
    rule: Optional[AggregationRule] = None,
    semiring: Optional[Semiring] = None,
) -> SLOVerdict:
    """Decide whether ``target`` is reachable over ``plan`` at
    per-service ``levels`` (each service's best achievable level).

    ``semiring`` defaults to the attribute's natural cost model and
    provides the comparison order; custom attributes need it (together
    with ``rule``) passed explicitly.
    """
    if semiring is None:
        try:
            semiring = resolve_attribute(attribute).semiring()
        except QoSError as exc:
            raise SLOError(
                f"unknown attribute {attribute!r} needs an explicit "
                "semiring= for the target order"
            ) from exc
    if not semiring.is_element(target):
        raise SLOError(
            f"target {target!r} is not a {semiring.name} level"
        )
    bound = composite_bound(plan, levels, attribute, choose, rule)
    achievable = semiring.geq(bound, target)
    margin: Optional[float] = None
    if isinstance(bound, (int, float)) and isinstance(target, (int, float)):
        margin = float(bound) - float(target)
    remediations: Tuple[Remediation, ...] = ()
    if not achievable:
        remediations = _remediations(
            plan, levels, target, attribute, choose, rule, semiring
        )
    verdict = SLOVerdict(
        attribute=attribute,
        target=target,
        bound=bound,
        achievable=achievable,
        choose=choose,
        margin=margin,
        stages=stage_bounds(plan, levels, attribute, choose, rule),
        remediations=remediations,
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "slo_checks_total",
            "Unachievable-SLO detector verdicts.",
            labelnames=("attribute", "verdict"),
        ).labels(
            attribute, "achievable" if achievable else "unachievable"
        ).inc()
        if not achievable:
            get_events().emit(
                "slo.unachievable",
                attribute=attribute,
                target=target,
                bound=bound,
                remediations=len(remediations),
            )
    return verdict


# ----------------------------------------------------------------------
# Remediation search
# ----------------------------------------------------------------------


def _remediations(
    plan: Plan,
    levels: Mapping[str, float],
    target: float,
    attribute: str,
    choose: str,
    rule: Optional[AggregationRule],
    semiring: Semiring,
) -> Tuple[Remediation, ...]:
    def achieves(overridden: Mapping[str, float]) -> bool:
        return semiring.geq(
            composite_bound(plan, overridden, attribute, choose, rule),
            target,
        )

    def with_stage(service_id: str, value: float) -> Dict[str, float]:
        patched = dict(levels)
        patched[service_id] = value
        return patched

    services = sorted(set(plan.services()))
    # Ties break lexicographically, so the suggestion is deterministic.
    weakest = services[0]
    for service_id in services[1:]:
        if semiring.lt(levels[service_id], levels[weakest]):
            weakest = service_id
    current = float(levels[weakest])
    ideal = float(semiring.one)

    found = []

    # (a) raise one stage's level: the minimal semiring-better level of
    # the weakest stage that lifts the composite over the target.
    if achieves(with_stage(weakest, ideal)):
        low, high = current, ideal  # invariant: high achieves, low doesn't
        for _ in range(_BISECTION_STEPS):
            mid = (low + high) / 2.0
            if achieves(with_stage(weakest, mid)):
                high = mid
            else:
                low = mid
        found.append(
            Remediation(
                action="raise-stage-level",
                stage=weakest,
                suggested_level=high,
                detail=(
                    f"bring stage {weakest!r} from {current:.6g} to "
                    f"{attribute} level {high:.6g}"
                ),
            )
        )
    else:
        # No single stage suffices: suggest the uniform per-stage level
        # that does (always exists for the standard monotone rules,
        # found by bisecting every stage toward the semiring unit).
        low, high = current, ideal
        if achieves({s: ideal for s in levels}):
            for _ in range(_BISECTION_STEPS):
                mid = (low + high) / 2.0
                if achieves({s: mid for s in levels}):
                    high = mid
                else:
                    low = mid
            found.append(
                Remediation(
                    action="uniform-stage-level",
                    stage=plan.describe(),
                    suggested_level=high,
                    detail=(
                        f"bring every stage to {attribute} level "
                        f"{high:.6g}"
                    ),
                )
            )

    # (b)/(c) redundancy suggestions only make sense for probabilities.
    if attribute in MULTIPLICATIVE_ATTRIBUTES:
        for replicas in range(2, MAX_REPLICAS + 1):
            replicated = parallel_reliability([current] * replicas)
            if achieves(with_stage(weakest, replicated)):
                found.append(
                    Remediation(
                        action="replicate-stage",
                        stage=weakest,
                        replicas=replicas,
                        suggested_level=replicated,
                        detail=(
                            f"run {replicas} failover replicas of stage "
                            f"{weakest!r} (effective level "
                            f"{replicated:.6g})"
                        ),
                    )
                )
                break
        for group in range(2, MAX_QUORUM_GROUP + 1):
            # Prefer the strongest quorum that still reaches the target
            # (k = 1 degenerates to plain replication, reported above).
            for quorum in range(group, 1, -1):
                level = k_out_of_n_reliability(current, quorum, group)
                if achieves(with_stage(weakest, level)):
                    found.append(
                        Remediation(
                            action="k-out-of-n",
                            stage=weakest,
                            replicas=group,
                            quorum=quorum,
                            suggested_level=level,
                            detail=(
                                f"require {quorum} of {group} replicas "
                                f"of stage {weakest!r} (effective level "
                                f"{level:.6g})"
                            ),
                        )
                    )
                    break
            else:
                continue
            break

    if not found:
        # Unreachable even at ideal levels — only possible under custom
        # rules; the actionable advice is structural.
        found.append(
            Remediation(
                action="restructure-plan",
                stage=plan.describe(),
                detail=(
                    f"target {target!r} is unreachable even with every "
                    f"stage at {semiring.name} level {ideal!r}; add "
                    "redundant stages or relax the target"
                ),
            )
        )
    return tuple(found)
