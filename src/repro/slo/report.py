"""The full SLO analytics report: detector + budget + buffers.

:func:`analyze` is the one-call entry point the broker query and the
``repro slo`` CLI share: discount published levels by observed history
(adaptive buffers), run the unachievable-SLO detector on the effective
levels, and break the error budget down per stage.  Everything is
serializable (:meth:`SLOReport.to_dict`) and human-renderable
(:func:`render_text`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..dependability.metrics import ObservationWindow
from ..soa.composition import AggregationRule, Plan
from ..telemetry import get_registry, get_tracer
from .budget import DEFAULT_FLAG_SHARE, ErrorBudget, error_budget
from .buffers import (
    DEFAULT_BUFFER,
    DEFAULT_MIN_ATTEMPTS,
    EffectiveLevel,
    effective_levels,
)
from .bounds import MULTIPLICATIVE_ATTRIBUTES
from .detector import SLOVerdict, check_slo


@dataclass(frozen=True)
class SLOReport:
    """One complete analysis of a plan against an SLO target."""

    plan: str
    attribute: str
    target: float
    verdict: SLOVerdict
    budget: Optional[ErrorBudget]
    levels: Tuple[EffectiveLevel, ...]
    buffer: float
    min_attempts: int

    @property
    def achievable(self) -> bool:
        return self.verdict.achievable

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "attribute": self.attribute,
            "target": self.target,
            "achievable": self.achievable,
            "buffer": self.buffer,
            "min_attempts": self.min_attempts,
            "levels": [level.to_dict() for level in self.levels],
            "verdict": self.verdict.to_dict(),
            "budget": None if self.budget is None else self.budget.to_dict(),
        }


def analyze(
    plan: Plan,
    published: Mapping[str, float],
    target: float,
    attribute: str = "availability",
    observations: Optional[Mapping[str, ObservationWindow]] = None,
    buffer: float = DEFAULT_BUFFER,
    min_attempts: int = DEFAULT_MIN_ATTEMPTS,
    choose: str = "worst-case",
    flag_share: float = DEFAULT_FLAG_SHARE,
    rule: Optional[AggregationRule] = None,
    semiring: Any = None,
    trust_published: bool = False,
) -> SLOReport:
    """Analyze ``plan`` against ``target``.

    ``published`` maps each leaf service to its advertised best level;
    ``observations`` (service id → :class:`ObservationWindow`) triggers
    the adaptive buffer — pass ``trust_published=True`` to skip
    discounting entirely (the raw-advertised baseline the buffered
    verdict is compared against).  The error budget is attached for
    probability-valued attributes only.
    """
    with get_tracer().span(
        "slo.analyze",
        attribute=attribute,
        target=target,
        services=len(published),
    ):
        if trust_published or attribute not in MULTIPLICATIVE_ATTRIBUTES:
            effective = tuple(
                EffectiveLevel(
                    service_id=service_id,
                    published=level,
                    effective=level,
                    attempts=0,
                    informative=False,
                )
                for service_id, level in sorted(published.items())
            )
        else:
            discounted = effective_levels(
                published,
                observations,
                buffer=buffer,
                min_attempts=min_attempts,
            )
            effective = tuple(
                discounted[service_id]
                for service_id in sorted(discounted)
            )
        levels = {
            level.service_id: level.effective for level in effective
        }
        verdict = check_slo(
            plan,
            levels,
            target,
            attribute=attribute,
            choose=choose,
            rule=rule,
            semiring=semiring,
        )
        budget: Optional[ErrorBudget] = None
        if attribute in MULTIPLICATIVE_ATTRIBUTES and 0.0 < target < 1.0:
            budget = error_budget(
                plan,
                levels,
                target,
                attribute=attribute,
                choose=choose,
                rule=rule,
                flag_share=flag_share,
            )
        report = SLOReport(
            plan=plan.describe(),
            attribute=attribute,
            target=target,
            verdict=verdict,
            budget=budget,
            levels=effective,
            buffer=buffer,
            min_attempts=min_attempts,
        )
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "slo_analyses_total",
            "Full SLO analytics reports produced.",
            labelnames=("attribute", "verdict"),
        ).labels(
            attribute, "achievable" if report.achievable else "unachievable"
        ).inc()
    return report


def render_text(report: SLOReport) -> str:
    """A terminal-friendly rendering of one report."""
    lines = [
        f"SLO report — {report.attribute} target {report.target:g} "
        f"over {report.plan}",
        f"  composite bound : {report.verdict.bound:g}  "
        f"({'ACHIEVABLE' if report.achievable else 'UNACHIEVABLE'})",
    ]
    if report.verdict.margin is not None:
        lines.append(f"  margin          : {report.verdict.margin:+g}")
    lines.append("  levels (effective ← published):")
    for level in report.levels:
        history = (
            f"wilson {level.observed_lower:.6g} over "
            f"{level.attempts} obs"
            if level.informative
            else "no informative history"
        )
        lines.append(
            f"    {level.service_id:<16} {level.effective:.6g} ← "
            f"{level.published:.6g}  [{history}]"
        )
    if report.budget is not None:
        lines.append(
            f"  error budget    : {report.budget.budget:g} "
            f"(first-order spend {report.budget.spent_share:.1%})"
        )
        for share in report.budget.shares:
            flag = "  ⚠ HIGH-RISK" if share.flagged else ""
            lines.append(
                f"    {share.stage:<24} share {share.share:.1%}{flag}"
            )
    if not report.achievable:
        lines.append("  remediation:")
        for remedy in report.verdict.remediations:
            lines.append(f"    - {remedy.detail}")
    return "\n".join(lines)
