"""repro.slo — SLO analytics over service composition graphs.

The quantitative layer on top of the paper's Sec. 5 refinement checks
(ROADMAP item 3): Sec. 5 tells us whether an agreed store is dependably
*safe*; this package tells SRE teams whether a numeric SLO target is
*achievable at all* before any negotiation starts, and where the error
budget goes once it is.

Four concerns, one module each:

* :mod:`~repro.slo.bounds` — fold per-service availability/reliability
  levels through a :class:`~repro.soa.composition.Plan` (sequence
  ``∏Rᵢ``, parallel join ``∏Rᵢ``, redundant choice ``1−∏(1−Rᵢ)``,
  worst-case choice ``min``), reusing the same
  :data:`~repro.soa.composition.AGGREGATION_RULES` the semiring ``×``
  column is pinned against;
* :mod:`~repro.slo.detector` — the unachievable-SLO detector: a target
  above the composite bound yields a typed
  :class:`~repro.slo.detector.SLOVerdict` rejection carrying actionable
  remediation (which stage to replicate, what per-stage level would
  suffice, k-out-of-n suggestions);
* :mod:`~repro.slo.budget` — per-dependency error-budget breakdown of
  ``1 − target`` with high-consumption flagging (the matchmaking
  penalty's input);
* :mod:`~repro.slo.buffers` — adaptive buffers for external providers:
  ``min(observed Wilson lower bound, published) × buffer`` instead of
  trusting advertised QoS, with an explicit ``min_attempts`` guard so
  the optimistic no-data prior of
  :class:`~repro.dependability.metrics.ObservationWindow` is never mixed
  with the conservative no-data prior of ``wilson_lower_bound``.

:mod:`~repro.slo.report` ties them together into one
:class:`~repro.slo.report.SLOReport` (JSON + text rendering) — the
payload behind ``Broker.slo_report`` and the ``repro slo`` CLI command.
"""

from .bounds import (
    CHOOSE_MODES,
    MULTIPLICATIVE_ATTRIBUTES,
    SLOError,
    analysis_rule,
    composite_bound,
    stage_bounds,
    StageBound,
)
from .budget import (
    DEFAULT_FLAG_SHARE,
    BudgetShare,
    ErrorBudget,
    error_budget,
    share_of,
)
from .buffers import (
    DEFAULT_BUFFER,
    DEFAULT_MIN_ATTEMPTS,
    EffectiveLevel,
    effective_level,
    effective_levels,
    window_from_reports,
)
from .detector import (
    Remediation,
    SLOVerdict,
    UnachievableSLOError,
    check_slo,
)
from .report import SLOReport, analyze, render_text

__all__ = [
    "SLOError",
    "CHOOSE_MODES",
    "MULTIPLICATIVE_ATTRIBUTES",
    "analysis_rule",
    "composite_bound",
    "stage_bounds",
    "StageBound",
    "BudgetShare",
    "ErrorBudget",
    "error_budget",
    "share_of",
    "DEFAULT_FLAG_SHARE",
    "EffectiveLevel",
    "effective_level",
    "effective_levels",
    "window_from_reports",
    "DEFAULT_BUFFER",
    "DEFAULT_MIN_ATTEMPTS",
    "Remediation",
    "SLOVerdict",
    "UnachievableSLOError",
    "check_slo",
    "SLOReport",
    "analyze",
    "render_text",
]
