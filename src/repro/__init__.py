"""repro — Soft Constraints for Dependable Service Oriented Architectures.

A full reproduction of Bistarelli & Santini (2008): semiring-based soft
constraints, the nmsccp concurrent constraint language, an SOA substrate
with a negotiation broker, dependability-as-refinement analysis, and
trustworthy coalition formation.

Subpackages
-----------
``repro.semirings``
    Absorptive c-semirings (Classical, Fuzzy, Probabilistic, Weighted,
    Set-based, products) with residuated division and law validators.
``repro.constraints``
    Soft constraints, the operators ⊗ / ÷ / ⇓ / ∃x, diagonal constraints,
    entailment and the immutable constraint store.
``repro.solver``
    SCSP solving: exhaustive, bucket elimination, branch & bound, soft
    arc consistency, α-cuts.
``repro.sccp``
    The nonmonotonic soft concurrent constraint language: checked
    transitions C1–C4, rules R1–R10, schedulers, exhaustive exploration.
``repro.soa``
    Services, registry, message bus, broker, SLAs, composition patterns,
    execution with fault injection, SLA monitoring.
``repro.runtime``
    Concurrent serving layer: bounded admission, worker pool with
    executor-offloaded solves, deadlines, retry/backoff, graceful
    degradation, and an open/closed-loop load generator.
``repro.dependability``
    Attribute taxonomy, integrity-as-refinement (Defs. 1–2), quantitative
    reliability analysis, classical dependability arithmetic.
``repro.coalitions``
    Trust networks, coalition trustworthiness, blocking-coalition
    stability, exact/greedy/local-search structure generation.
"""

from . import (
    coalitions,
    constraints,
    dependability,
    runtime,
    sccp,
    semirings,
    serialization,
    soa,
    solver,
)

__version__ = "1.0.0"

__all__ = [
    "semirings",
    "constraints",
    "solver",
    "sccp",
    "soa",
    "runtime",
    "dependability",
    "coalitions",
    "serialization",
    "__version__",
]
