"""Command-line interface: ``python -m repro.cli <command> …``.

Exposes the library's main flows over JSON files (the wire format of
:mod:`repro.serialization`):

* ``solve PROBLEM.json``        — solve an SCSP, print blevel + optima;
* ``coalitions NETWORK.json``   — best (stable) partition of a trust net;
* ``negotiate MARKET.json``     — run the broker over a market spec;
* ``runtime MARKET.json``       — serve concurrent sessions of a market
  through the asyncio runtime (admission, deadlines, retry, faults);
* ``loadgen``                   — drive the runtime with a synthetic
  client population and report throughput + latency percentiles;
* ``fleet``                     — serve the same load through a sharded
  multi-broker fleet (consistent-hash routing, two-tier solve cache);
* ``dlq``                       — inspect or replay a dead-letter file
  captured by a resilient serving run;
* ``slo MARKET.json``           — SLO analytics for a composition plan:
  composite bound, unachievable-SLO verdict with remediation guidance,
  per-stage error-budget breakdown, observation-discounted levels;
* ``validate-semiring NAME``    — check the semiring laws on a sample.

The serving commands (``runtime``/``loadgen``/``fleet``) accept the
resilience flags (``--resilience``, ``--breaker-*``, ``--bulkhead-*``,
``--health-*``, ``--hedge-*``, ``--dlq``/``--dlq-out``) described in
``docs/resilience.md``.

Each command reads JSON and prints a JSON result on stdout, so the tools
compose in shell pipelines.  Exit status 0 = the engine ran and found an
answer; 1 = well-formed input but no solution (inconsistent problem,
failed negotiation, no stable partition found); 2 = bad input.

Observability (any command): ``--telemetry`` collects metrics and spans
for the run and embeds the snapshot under a ``"telemetry"`` key in the
output; ``--trace-out PATH`` writes the span/event journal as JSON
lines; ``--prometheus-out PATH`` writes the metrics in Prometheus text
format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from . import serialization
from .coalitions import solve_engine, solve_exact, solve_local_search
from .constraints.store import STORE_BACKENDS, set_default_store_backend
from .sccp.check import CheckSpec
from .semirings.properties import validate_semiring
from .semirings.registry import get_semiring
from .soa.broker import Broker, BrokerError, ClientRequest
from .soa.registry import RegistryError, ServiceRegistry
from .soa.service import ServiceDescription, ServiceInterface
from .solver import solve
from .telemetry import (
    TelemetrySession,
    snapshot as telemetry_snapshot,
    telemetry_session,
    write_prometheus,
    write_trace_jsonl,
)

#: The session active for the current command (set by ``main``); when
#: present, ``_emit`` attaches its snapshot to the printed payload.
_session: Optional[TelemetrySession] = None


def _read_json(path: str) -> Any:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def _emit(payload: Dict[str, Any]) -> None:
    if _session is not None:
        payload = {
            **payload,
            "telemetry": telemetry_snapshot(
                _session.registry, _session.tracer, _session.events
            ),
        }
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_solve(args: argparse.Namespace) -> int:
    problem = serialization.problem_from_dict(_read_json(args.problem))
    result = solve(
        problem, method=args.method, backend=args.solver_backend
    )
    _emit(
        {
            "problem": problem.name,
            "method": result.method,
            "blevel": serialization.value_to_json(result.blevel),
            "consistent": result.is_consistent,
            "optima": [
                [
                    {
                        name: serialization.value_to_json(value)
                        for name, value in assignment.items()
                    }
                    for assignment in group
                ]
                for group in result.optima
            ],
            "stats": {
                "leaves_evaluated": result.stats.leaves_evaluated,
                "nodes_expanded": result.stats.nodes_expanded,
                "prunes": result.stats.prunes,
            },
        }
    )
    return 0 if result.is_consistent else 1


def cmd_coalitions(args: argparse.Namespace) -> int:
    network = serialization.trust_network_from_dict(
        _read_json(args.network)
    )
    if args.method == "exact":
        solution = solve_exact(
            network, op=args.op, aggregate=args.aggregate
        )
    elif args.method == "engine":
        solution = solve_engine(
            network,
            op=args.op,
            aggregate=args.aggregate,
            seed=args.seed,
            restarts=args.restarts,
            max_iterations=args.max_iterations,
            neighbour_sample=args.neighbour_sample,
            workers=args.workers,
        )
    else:
        solution = solve_local_search(
            network,
            op=args.op,
            aggregate=args.aggregate,
            seed=args.seed,
            restarts=args.restarts,
            max_iterations=args.max_iterations,
            neighbour_sample=args.neighbour_sample,
        )
    _emit(serialization.coalition_solution_to_dict(solution))
    # "No solution" covers the heuristics ending on an unstable local
    # optimum, not just exact search proving no stable partition exists
    # — a partition with blocking coalitions is not a valid Def. 4
    # answer, merely the best one seen.
    return 0 if solution.found and solution.stable else 1


def _market_registry(market: Dict[str, Any]) -> ServiceRegistry:
    """Publish every service of a market spec into a fresh registry."""
    registry = ServiceRegistry()
    for entry in market.get("services", []):
        document = serialization.qos_document_from_dict(entry["qos"])
        registry.publish(
            ServiceDescription(
                service_id=entry["service_id"],
                name=entry.get("name", document.service_name),
                provider=document.provider,
                interface=ServiceInterface(operation=entry["operation"]),
                qos=document,
                tags=tuple(entry.get("tags", ())),
            )
        )
    return registry


def _market_request(market: Dict[str, Any]) -> ClientRequest:
    """The client request of a market spec."""
    spec = market["request"]
    from .soa.qos import resolve_attribute

    semiring = resolve_attribute(spec["attribute"]).semiring()
    acceptance = None
    if "acceptance" in spec:
        acceptance = CheckSpec(
            semiring,
            lower=serialization.value_from_json(
                spec["acceptance"].get("lower")
            ),
            upper=serialization.value_from_json(
                spec["acceptance"].get("upper")
            ),
        )
    return ClientRequest(
        client=spec.get("client", "cli"),
        operation=spec["operation"],
        attribute=spec["attribute"],
        acceptance=acceptance,
    )


def _load_market(path: str) -> Dict[str, Any]:
    market = _read_json(path)
    if market.get("kind") != "market":
        raise SystemExit("error: payload is not a market spec")
    return market


def cmd_negotiate(args: argparse.Namespace) -> int:
    market = _load_market(args.market)
    registry = _market_registry(market)
    request = _market_request(market)
    broker = _broker(args, registry)
    result = broker.negotiate(
        request,
        verify_scheduler_independence=getattr(
            args, "verify_independence", False
        ),
    )
    _emit(
        {
            "success": result.success,
            "detail": result.detail,
            "sla": None
            if result.sla is None
            else {
                "sla_id": result.sla.sla_id,
                "providers": list(result.sla.providers),
                "service_ids": list(result.sla.service_ids),
                "agreed_level": serialization.value_to_json(
                    result.sla.agreed_level
                ),
            },
            "evaluations": [
                {
                    "provider": evaluation.provider,
                    "service_id": evaluation.description.service_id,
                    "blevel": serialization.value_to_json(evaluation.blevel),
                    "accepted": evaluation.accepted,
                }
                for evaluation in result.evaluations
            ],
        }
    )
    return 0 if result.success else 1


def _batch_config(args: argparse.Namespace) -> Optional["BatchConfig"]:
    """A :class:`BatchConfig` from the ``--solver-batching`` flag family,
    ``None`` when batching is off (or the command has no such flags)."""
    if not getattr(args, "solver_batching", False):
        return None
    from .runtime.batching import BatchConfig

    return BatchConfig(
        window_ms=args.batch_window_ms, max_batch=args.batch_max
    )


def _broker(
    args: argparse.Namespace, registry: ServiceRegistry
) -> Broker:
    """A broker honouring the ``--solver-backend``/``--solve-cache``/
    ``--store-backend``/``--solver-batching`` flags."""
    backend = getattr(args, "store_backend", None)
    if backend is not None:
        # Sessions the broker does not build itself (negotiate() internals,
        # nmsccp runs kicked off by handlers) follow the same choice.
        set_default_store_backend(backend)
    allocation = getattr(args, "allocation_policy", None)
    rounds = None
    if allocation is not None:
        # The --batch-window-ms/--batch-max knobs shape allocation
        # rounds too, whether or not solver batching is on.
        from .runtime.batching import BatchConfig

        rounds = BatchConfig(
            window_ms=args.batch_window_ms, max_batch=args.batch_max
        )
    return Broker(
        registry,
        solve_cache=args.solve_cache,
        solver_backend=args.solver_backend,
        store_backend=backend,
        batching=_batch_config(args),
        allocation_policy=allocation,
        rounds=rounds,
    )


def _build_injector(
    args: argparse.Namespace, registry: ServiceRegistry
) -> Optional["FaultInjector"]:
    """Fault injector from the ``--fault-*`` flags, attached to every
    published service; ``None`` when no fault flag was given."""
    from .soa.faults import (
        BernoulliCrash,
        BurstOutage,
        FaultInjector,
        RandomDelay,
    )

    models = []
    if args.fault_crash is not None:
        models.append(BernoulliCrash(args.fault_crash))
    if args.fault_outage is not None:
        try:
            start, length = (int(p) for p in args.fault_outage.split(":"))
        except ValueError:
            raise SystemExit(
                "error: --fault-outage expects START:LENGTH (integers)"
            )
        models.append(BurstOutage(start, length))
    if args.fault_delay is not None:
        try:
            prob, extra_ms = (float(p) for p in args.fault_delay.split(":"))
        except ValueError:
            raise SystemExit(
                "error: --fault-delay expects PROB:MILLISECONDS"
            )
        models.append(RandomDelay(prob, extra_ms))
    if not models:
        return None
    injector = FaultInjector(seed=args.seed)
    for description in registry.find():
        for model in models:
            injector.attach(description.service_id, model)
    return injector


def _resilience_config(
    args: argparse.Namespace,
) -> "Optional[ResilienceConfig]":
    """Resilience layer from the ``--breaker-*``/``--bulkhead-*``/
    ``--health-*``/``--hedge-*``/``--dlq*`` flags.

    ``--resilience`` turns every pattern on at its defaults; otherwise
    each pattern activates when one of its own flags is given.  Returns
    ``None`` (the exact pre-resilience serving path) when nothing asked
    for it.
    """
    from .resilience import (
        BreakerConfig,
        BulkheadConfig,
        DLQConfig,
        HealthConfig,
        HedgeConfig,
        ResilienceConfig,
    )

    everything = args.resilience
    breaker = None
    if everything or args.breaker_threshold or args.breaker_recovery:
        breaker = BreakerConfig(
            failure_threshold=args.breaker_threshold or 3,
            recovery_s=(
                args.breaker_recovery
                if args.breaker_recovery is not None
                else 0.25
            ),
        )
    bulkhead = None
    if everything or args.bulkhead_limit:
        bulkhead = BulkheadConfig(default_limit=args.bulkhead_limit or 16)
    health = None
    if everything or args.health_interval or args.health_unhealthy_after:
        health = HealthConfig(
            interval_s=args.health_interval or 0.05,
            unhealthy_after=args.health_unhealthy_after or 2,
        )
    hedge = None
    if everything or args.hedge_delay or args.hedge_percentile:
        hedge = HedgeConfig(
            delay_s=(
                args.hedge_delay if args.hedge_delay is not None else 0.1
            ),
            percentile=args.hedge_percentile or 95.0,
        )
    dlq = None
    if everything or args.dlq or args.dlq_out:
        dlq = DLQConfig()
    if not any((breaker, bulkhead, health, hedge, dlq)):
        return None
    return ResilienceConfig(
        breaker=breaker,
        bulkhead=bulkhead,
        health=health,
        hedge=hedge,
        dlq=dlq,
    )


def _write_dlq(args: argparse.Namespace, dlq: Any) -> Optional[str]:
    """Persist the captured dead letters when ``--dlq-out`` was given."""
    if dlq is None or not getattr(args, "dlq_out", None):
        return None
    return str(dlq.to_jsonl(args.dlq_out))


def _runtime_config(args: argparse.Namespace) -> "RuntimeConfig":
    from .runtime import RetryPolicy, RuntimeConfig

    return RuntimeConfig(
        workers=args.workers,
        max_queue_depth=args.queue,
        deadline_s=args.deadline if args.deadline > 0 else None,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            base_backoff_s=args.base_backoff,
        ),
        seed=args.seed,
        verify_independence=getattr(args, "verify_independence", False),
    )


def _session_summary(result: "SessionResult") -> Dict[str, Any]:
    return {
        "index": result.index,
        "client": result.request.client,
        "status": result.status.value,
        "attempts": result.attempts,
        "retries": result.retries,
        "sla_id": None if result.sla is None else result.sla.sla_id,
        "agreed_level": None
        if result.sla is None
        else serialization.value_to_json(result.sla.agreed_level),
        "queue_wait_s": round(result.queue_wait_s, 6),
        "latency_s": round(result.latency_s, 6),
        "detail": result.detail,
    }


def cmd_runtime(args: argparse.Namespace) -> int:
    """Serve N copies of a market's request through the runtime."""
    from .runtime import RuntimeServer, SessionStatus

    market = _load_market(args.market)
    registry = _market_registry(market)
    request = _market_request(market)
    injector = _build_injector(args, registry)
    server = RuntimeServer(
        _broker(args, registry),
        _runtime_config(args),
        injector=injector,
        resilience=_resilience_config(args),
    )
    template = request
    requests = [
        ClientRequest(
            client=f"{template.client}-{index}",
            operation=template.operation,
            attribute=template.attribute,
            requirements=template.requirements,
            acceptance=template.acceptance,
        )
        for index in range(args.requests)
    ]
    results = server.run(requests)
    outcomes: Dict[str, int] = {}
    for result in results:
        key = result.status.value
        outcomes[key] = outcomes.get(key, 0) + 1
    served = outcomes.get(SessionStatus.COMPLETED.value, 0) + outcomes.get(
        SessionStatus.DEGRADED.value, 0
    )
    payload = {
        "requests": len(results),
        "outcomes": outcomes,
        "retries_total": sum(result.retries for result in results),
        "sessions": [_session_summary(result) for result in results],
    }
    if server.resilience.config.any_enabled:
        payload["resilience"] = server.resilience.snapshot()
        dlq_path = _write_dlq(args, server.resilience.dlq)
        if dlq_path is not None:
            payload["dlq_out"] = dlq_path
    _emit(payload)
    return 0 if served == len(results) else 1


def _synthetic_market(args: argparse.Namespace):
    """The synthetic market + request factory for loadgen/fleet runs:
    the default polynomial-cost market, or (``--contention``) the
    decreasing-quality contention market the fairness scenario uses."""
    from .runtime import (
        contention_request_factory,
        synthesize_contention_market,
        synthesize_market,
        synthetic_request_factory,
    )

    if getattr(args, "contention", False):
        return (
            synthesize_contention_market(
                providers=args.contention_providers
            ),
            contention_request_factory(),
        )
    return synthesize_market(seed=args.seed), synthetic_request_factory()


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Measure the runtime under a synthetic client population."""
    from .runtime import LoadGenerator, LoadProfile, RuntimeServer

    if args.market is not None:
        market = _load_market(args.market)
        registry = _market_registry(market)
        template = _market_request(market)

        def factory(client: str, index: int) -> ClientRequest:
            return ClientRequest(
                client=client,
                operation=template.operation,
                attribute=template.attribute,
                requirements=template.requirements,
                acceptance=template.acceptance,
            )

    else:
        registry, factory = _synthetic_market(args)

    injector = _build_injector(args, registry)
    server = RuntimeServer(
        _broker(args, registry),
        _runtime_config(args),
        injector=injector,
        resilience=_resilience_config(args),
    )
    profile = LoadProfile(
        clients=args.clients,
        requests=args.requests,
        mode=args.mode,
        rate=args.rate,
        think_time_s=args.think_time,
        seed=args.seed,
    )
    generator = LoadGenerator(server, profile, factory)
    report = generator.run_sync()
    payload = report.to_dict()
    if server.resilience.config.any_enabled:
        payload["resilience"] = server.resilience.snapshot()
        dlq_path = _write_dlq(args, server.resilience.dlq)
        if dlq_path is not None:
            payload["dlq_out"] = dlq_path
    _emit(payload)
    return 0 if report.completed + report.degraded > 0 else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """Measure a sharded broker fleet under synthetic load."""
    from .fleet import FleetConfig, FleetFrontend, FleetLoadGenerator
    from .runtime import LoadProfile, RetryPolicy

    if args.market is not None:
        market = _load_market(args.market)
        registry = _market_registry(market)
        template = _market_request(market)

        def factory(client: str, index: int) -> ClientRequest:
            return ClientRequest(
                client=client,
                operation=template.operation,
                attribute=template.attribute,
                requirements=template.requirements,
                acceptance=template.acceptance,
            )

    else:
        registry, factory = _synthetic_market(args)

    if args.store_backend is not None:
        set_default_store_backend(args.store_backend)
    rounds = None
    if args.allocation_policy is not None:
        from .runtime.batching import BatchConfig

        rounds = BatchConfig(
            window_ms=args.batch_window_ms, max_batch=args.batch_max
        )
    config = FleetConfig(
        shards=args.shards,
        vnodes=args.vnodes,
        workers_per_shard=args.workers,
        ingress_depth=args.queue,
        dispatch_depth=args.dispatch_depth,
        deadline_s=args.deadline if args.deadline > 0 else None,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            base_backoff_s=args.base_backoff,
        ),
        seed=args.seed,
        l2_cache=args.l2_cache,
        route_by=args.route_by,
        solver_backend=args.solver_backend,
        store_backend=args.store_backend,
        batching=_batch_config(args),
        allocation_policy=args.allocation_policy,
        rounds=rounds,
        resilience=_resilience_config(args),
    )
    # Every shard gets its own injector built from the same flags, so
    # fault behaviour stays keyed to the session, not the shard.
    frontend = FleetFrontend(
        registry,
        config,
        injector_factory=lambda shard_id: _build_injector(args, registry),
    )
    profile = LoadProfile(
        clients=args.clients,
        requests=args.requests,
        mode=args.mode,
        rate=args.rate,
        think_time_s=args.think_time,
        seed=args.seed,
    )
    generator = FleetLoadGenerator(frontend, profile, factory)
    report = generator.run_sync()
    payload = report.to_dict()
    if config.resilience is not None:
        payload["resilience"] = frontend.resilience_snapshot()
        dlq_path = _write_dlq(args, frontend.dlq)
        if dlq_path is not None:
            payload["dlq_out"] = dlq_path
    _emit(payload)
    fleet = report.fleet
    return 0 if fleet.completed + fleet.degraded > 0 else 1


def _slo_plan(args: argparse.Namespace, market: Dict[str, Any]):
    """The plan to analyze: ``--plan PATH``, the market's ``plan`` entry,
    or the ``--pipeline id,id,…`` shorthand."""
    if getattr(args, "plan", None):
        return serialization.plan_from_dict(_read_json(args.plan))
    if getattr(args, "pipeline", None):
        from .soa.composition import pipeline as make_pipeline

        return make_pipeline(*args.pipeline.split(","))
    if "plan" in market:
        return serialization.plan_from_dict(market["plan"])
    raise SystemExit(
        "error: no plan to analyze — pass --plan PATH or "
        "--pipeline IDS, or add a 'plan' entry to the market spec"
    )


def cmd_slo(args: argparse.Namespace) -> int:
    from .slo import SLOError, render_text

    market = _load_market(args.market)
    registry = _market_registry(market)
    plan = _slo_plan(args, market)
    for service_id, window in market.get("observations", {}).items():
        registry.record_observations(
            service_id,
            int(window.get("attempts", 0)),
            int(window.get("failures", 0)),
        )
    broker = _broker(args, registry)
    try:
        report = broker.slo_report(
            plan,
            args.target,
            attribute=args.attribute,
            use_observations=not args.trust_published,
            buffer=args.buffer,
            min_attempts=args.min_attempts,
            choose=args.choose,
            flag_share=args.flag_share,
        )
    except (SLOError, BrokerError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "text":
        print(render_text(report))
    else:
        _emit(report.to_dict())
    return 0 if report.achievable else 1


def cmd_dlq(args: argparse.Namespace) -> int:
    """Inspect or replay a dead-letter JSONL file.

    ``inspect`` summarizes the envelopes; ``replay`` re-drives every
    replayable one against the (recovered) market's broker and reports
    the agreement each session would have signed.
    """
    from .resilience import DeadLetterQueue

    queue = DeadLetterQueue.from_jsonl(args.file)
    if args.action == "inspect":
        _emit(
            {
                "file": args.file,
                "stats": queue.stats(),
                "letters": [letter.to_dict() for letter in queue],
            }
        )
        return 0
    if args.market is None:
        raise SystemExit("error: replay requires --market")
    market = _load_market(args.market)
    registry = _market_registry(market)
    broker = _broker(args, registry)
    rows = queue.replay(broker)
    completed = sum(1 for row in rows if row["outcome"] == "completed")
    replayable = sum(1 for letter in queue if letter.replayable)
    _emit(
        {
            "file": args.file,
            "replayed": len(rows),
            "completed": completed,
            "results": rows,
        }
    )
    return 0 if rows and completed == replayable else 1


def cmd_validate_semiring(args: argparse.Namespace) -> int:
    kwargs: Dict[str, Any] = {}
    if args.universe:
        kwargs["universe"] = args.universe.split(",")
    if args.cap is not None:
        kwargs["cap"] = args.cap
    semiring = get_semiring(args.name, **kwargs)
    report = validate_semiring(semiring)
    _emit(
        {
            "semiring": semiring.name,
            "ok": report.ok,
            "violations": [str(v) for v in report.violations],
        }
    )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Soft constraints for dependable SOAs — CLI",
    )
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--telemetry",
        action="store_true",
        help="collect metrics/spans and embed the snapshot in the output",
    )
    observability.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the span/event journal as JSON lines (implies "
        "--telemetry)",
    )
    observability.add_argument(
        "--prometheus-out",
        default=None,
        metavar="PATH",
        help="write metrics in Prometheus text format (implies "
        "--telemetry)",
    )
    solver_opts = argparse.ArgumentParser(add_help=False)
    solver_opts.add_argument(
        "--solver-backend",
        default="auto",
        choices=("auto", "dict", "dense"),
        help="factor representation for the solver hot loop: dict tuple "
        "tables, dense ndarray kernels, or auto (dense whenever the "
        "semiring lowers)",
    )
    broker_opts = argparse.ArgumentParser(add_help=False)
    broker_opts.add_argument(
        "--solve-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoize broker solves under a canonical problem fingerprint",
    )
    broker_opts.add_argument(
        "--store-backend",
        default="auto",
        choices=STORE_BACKENDS,
        help="constraint-store representation: the eagerly-combined "
        "monolith, the structurally-shared factor set, or auto "
        "(factored)",
    )
    broker_opts.add_argument(
        "--solver-batching",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="coalesce concurrent same-topology solves into stacked "
        "batched sweeps (bit-identical to unbatched)",
    )
    broker_opts.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="how long a batch leader waits for followers before "
        "dispatching (with --solver-batching)",
    )
    broker_opts.add_argument(
        "--batch-max",
        type=int,
        default=32,
        metavar="N",
        help="hard cap on sessions coalesced into one stacked solve "
        "(with --solver-batching)",
    )
    broker_opts.add_argument(
        "--allocation-policy",
        default=None,
        choices=("greedy", "fair"),
        help="serve sessions through coalesced allocation rounds: "
        "greedy replays per-session agreements exactly, fair solves "
        "one joint lexicographic ⟨min satisfaction, welfare⟩ SCSP "
        "per round (default: legacy per-session path)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser(
        "solve",
        help="solve a JSON SCSP",
        parents=[observability, solver_opts],
    )
    p_solve.add_argument("problem", help="path to an scsp JSON file")
    p_solve.add_argument(
        "--method",
        default="auto",
        choices=("auto", "exhaustive", "branch-bound", "elimination"),
    )
    p_solve.set_defaults(fn=cmd_solve)

    p_coal = sub.add_parser(
        "coalitions",
        help="partition a JSON trust network",
        parents=[observability],
    )
    p_coal.add_argument("network", help="path to a trust-network JSON file")
    p_coal.add_argument(
        "--method",
        default="exact",
        choices=("exact", "local-search", "engine"),
    )
    p_coal.add_argument("--op", default="avg", choices=("min", "avg", "max"))
    p_coal.add_argument(
        "--aggregate", default="min", choices=("min", "avg", "max")
    )
    p_coal.add_argument("--seed", type=int, default=0)
    p_coal.add_argument(
        "--restarts", type=int, default=3, help="hill-climb restarts"
    )
    p_coal.add_argument(
        "--max-iterations",
        type=int,
        default=200,
        help="climb steps per restart",
    )
    p_coal.add_argument(
        "--neighbour-sample",
        type=int,
        default=64,
        help="candidate moves scored per step",
    )
    p_coal.add_argument(
        "--workers",
        type=int,
        default=1,
        help="portfolio threads for --method engine "
        "(the result is worker-count independent)",
    )
    p_coal.set_defaults(fn=cmd_coalitions)

    p_neg = sub.add_parser(
        "negotiate",
        help="run the broker over a JSON market",
        parents=[observability, solver_opts, broker_opts],
    )
    p_neg.add_argument("market", help="path to a market JSON file")
    p_neg.add_argument(
        "--verify-independence",
        action="store_true",
        help="re-run the winner as nmsccp agents and certify the outcome "
        "is scheduler-independent",
    )
    p_neg.set_defaults(fn=cmd_negotiate)

    serving = argparse.ArgumentParser(add_help=False)
    serving.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    serving.add_argument(
        "--queue",
        type=int,
        default=256,
        metavar="DEPTH",
        help="admission queue bound (full queue ⇒ typed overload)",
    )
    serving.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-session deadline; 0 disables it",
    )
    serving.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per session before degradation",
    )
    serving.add_argument(
        "--base-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="first retry backoff (doubles per attempt, jittered)",
    )
    serving.add_argument(
        "--seed", type=int, default=None, help="master RNG seed"
    )
    serving.add_argument(
        "--fault-crash",
        type=float,
        default=None,
        metavar="PROB",
        help="attach BernoulliCrash(PROB) to every service",
    )
    serving.add_argument(
        "--fault-outage",
        default=None,
        metavar="START:LENGTH",
        help="attach BurstOutage over admission-order ticks",
    )
    serving.add_argument(
        "--fault-delay",
        default=None,
        metavar="PROB:MS",
        help="attach RandomDelay(PROB, MS) to every service",
    )

    resilience = argparse.ArgumentParser(add_help=False)
    resilience.add_argument(
        "--resilience",
        action="store_true",
        help="enable every resilience pattern at its defaults "
        "(breakers, bulkheads, health checks, hedging, DLQ)",
    )
    resilience.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="consecutive failures tripping a provider's circuit "
        "breaker (enables breakers)",
    )
    resilience.add_argument(
        "--breaker-recovery",
        type=float,
        default=None,
        metavar="SECONDS",
        help="open-state duration before a half-open probe "
        "(enables breakers)",
    )
    resilience.add_argument(
        "--bulkhead-limit",
        type=int,
        default=None,
        metavar="N",
        help="in-flight sessions allowed per service class "
        "(enables bulkheads)",
    )
    resilience.add_argument(
        "--health-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat probe period (enables health-checked "
        "matchmaking)",
    )
    resilience.add_argument(
        "--health-unhealthy-after",
        type=int,
        default=None,
        metavar="N",
        help="failed probe sweeps before quarantine (enables health "
        "checks)",
    )
    resilience.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fallback shadow-solve launch delay (enables hedging)",
    )
    resilience.add_argument(
        "--hedge-percentile",
        type=float,
        default=None,
        metavar="P",
        help="latency percentile setting the adaptive hedge delay "
        "(enables hedging)",
    )
    resilience.add_argument(
        "--dlq",
        action="store_true",
        help="capture terminally failed sessions in a dead-letter queue",
    )
    resilience.add_argument(
        "--dlq-out",
        default=None,
        metavar="PATH",
        help="write captured dead letters as JSON lines (implies --dlq)",
    )

    p_rt = sub.add_parser(
        "runtime",
        help="serve concurrent sessions of a JSON market",
        parents=[observability, serving, resilience, solver_opts, broker_opts],
    )
    p_rt.add_argument("market", help="path to a market JSON file")
    p_rt.add_argument(
        "--requests",
        type=int,
        default=10,
        metavar="N",
        help="concurrent sessions to serve",
    )
    p_rt.add_argument(
        "--verify-independence",
        action="store_true",
        help="certify each winner as scheduler-independent (slow)",
    )
    p_rt.set_defaults(fn=cmd_runtime)

    loadshape = argparse.ArgumentParser(add_help=False)
    loadshape.add_argument(
        "--market",
        default=None,
        metavar="PATH",
        help="market JSON to serve (default: synthetic 4-provider market)",
    )
    loadshape.add_argument(
        "--clients", type=int, default=10, help="client population size"
    )
    loadshape.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="total sessions (default: one per client)",
    )
    loadshape.add_argument(
        "--mode", default="open", choices=("open", "closed")
    )
    loadshape.add_argument(
        "--rate",
        type=float,
        default=50.0,
        metavar="RPS",
        help="open loop: mean Poisson arrival rate",
    )
    loadshape.add_argument(
        "--think-time",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="closed loop: pause between a client's requests",
    )
    loadshape.add_argument(
        "--contention",
        action="store_true",
        help="use the synthetic contention market (decreasing-quality "
        "providers for one operation) instead of the default synthetic "
        "market — the fairness scenario for --allocation-policy",
    )
    loadshape.add_argument(
        "--contention-providers",
        type=int,
        default=3,
        metavar="N",
        help="provider count of the contention market",
    )

    p_lg = sub.add_parser(
        "loadgen",
        help="measure the runtime under synthetic load",
        parents=[
            observability,
            serving,
            resilience,
            loadshape,
            solver_opts,
            broker_opts,
        ],
    )
    p_lg.set_defaults(fn=cmd_loadgen)

    p_fleet = sub.add_parser(
        "fleet",
        help="measure a sharded broker fleet under synthetic load",
        parents=[
            observability,
            serving,
            resilience,
            loadshape,
            solver_opts,
            broker_opts,
        ],
    )
    p_fleet.add_argument(
        "--shards", type=int, default=2, help="broker shard count"
    )
    p_fleet.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the consistent-hash ring",
    )
    p_fleet.add_argument(
        "--dispatch-depth",
        type=int,
        default=64,
        metavar="DEPTH",
        help="per-shard dispatch queue bound",
    )
    p_fleet.add_argument(
        "--l2-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share one fleet-wide L2 solve cache across shards "
        "(per-shard L1s become a two-tier stack)",
    )
    p_fleet.add_argument(
        "--route-by",
        default="session",
        choices=("session", "operation"),
        help="ring routing key: per-session spread or per-operation "
        "ownership",
    )
    p_fleet.set_defaults(fn=cmd_fleet)

    p_dlq = sub.add_parser(
        "dlq",
        help="inspect or replay a dead-letter JSONL file",
        parents=[observability, solver_opts, broker_opts],
    )
    p_dlq.add_argument(
        "action", choices=("inspect", "replay"), help="what to do"
    )
    p_dlq.add_argument("file", help="path to a dead-letter JSONL file")
    p_dlq.add_argument(
        "--market",
        default=None,
        metavar="PATH",
        help="market JSON to replay against (required for replay)",
    )
    p_dlq.set_defaults(fn=cmd_dlq)

    p_slo = sub.add_parser(
        "slo",
        help="SLO analytics for a composition plan over a market",
        parents=[observability, solver_opts, broker_opts],
    )
    p_slo.add_argument("market", help="path to a market JSON file")
    p_slo.add_argument(
        "--target",
        type=float,
        required=True,
        help="the SLO level to check reachability of",
    )
    p_slo.add_argument(
        "--attribute",
        default="availability",
        help="QoS attribute to analyze (default: availability)",
    )
    p_slo.add_argument(
        "--plan",
        default=None,
        metavar="PATH",
        help="composition plan JSON (kind: plan); defaults to the "
        "market's own 'plan' entry",
    )
    p_slo.add_argument(
        "--pipeline",
        default=None,
        metavar="IDS",
        help="comma-separated service ids as a pipeline plan shorthand",
    )
    p_slo.add_argument(
        "--choose",
        default="worst-case",
        choices=("worst-case", "redundant"),
        help="reading of Choose nodes: the guarantee holding whichever "
        "branch runs, or failover replicas (1 − ∏(1 − Rᵢ))",
    )
    p_slo.add_argument(
        "--buffer",
        type=float,
        default=0.9,
        metavar="F",
        help="planning safety margin applied to every provider level",
    )
    p_slo.add_argument(
        "--min-attempts",
        type=int,
        default=5,
        metavar="N",
        help="observations required before delivered history discounts "
        "a published level",
    )
    p_slo.add_argument(
        "--flag-share",
        type=float,
        default=0.30,
        metavar="F",
        help="error-budget share above which a stage is flagged "
        "high-risk",
    )
    p_slo.add_argument(
        "--trust-published",
        action="store_true",
        help="skip observation discounting and the safety buffer; "
        "analyze raw advertised levels",
    )
    p_slo.add_argument(
        "--format",
        default="json",
        choices=("json", "text"),
        help="output as JSON (default) or a terminal report",
    )
    p_slo.set_defaults(fn=cmd_slo)

    p_val = sub.add_parser(
        "validate-semiring",
        help="check semiring laws on a sample",
        parents=[observability],
    )
    p_val.add_argument("name", help="registered semiring name")
    p_val.add_argument(
        "--universe", default="", help="comma-separated set universe"
    )
    p_val.add_argument("--cap", type=float, default=None)
    p_val.set_defaults(fn=cmd_validate_semiring)
    return parser


def main(argv=None) -> int:
    global _session
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    prometheus_out = getattr(args, "prometheus_out", None)
    wants_telemetry = bool(
        getattr(args, "telemetry", False) or trace_out or prometheus_out
    )
    try:
        if not wants_telemetry:
            return args.fn(args)
        with telemetry_session() as session:
            _session = session
            code = args.fn(args)
            if trace_out:
                write_trace_jsonl(trace_out, session.tracer, session.events)
            if prometheus_out:
                write_prometheus(prometheus_out, session.registry)
            return code
    except serialization.SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _session = None


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
