"""Command-line interface: ``python -m repro.cli <command> …``.

Exposes the library's main flows over JSON files (the wire format of
:mod:`repro.serialization`):

* ``solve PROBLEM.json``        — solve an SCSP, print blevel + optima;
* ``coalitions NETWORK.json``   — best (stable) partition of a trust net;
* ``negotiate MARKET.json``     — run the broker over a market spec;
* ``validate-semiring NAME``    — check the semiring laws on a sample.

Each command reads JSON and prints a JSON result on stdout, so the tools
compose in shell pipelines.  Exit status 0 = the engine ran and found an
answer; 1 = well-formed input but no solution (inconsistent problem,
failed negotiation); 2 = bad input.

Observability (any command): ``--telemetry`` collects metrics and spans
for the run and embeds the snapshot under a ``"telemetry"`` key in the
output; ``--trace-out PATH`` writes the span/event journal as JSON
lines; ``--prometheus-out PATH`` writes the metrics in Prometheus text
format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from . import serialization
from .coalitions import solve_exact, solve_local_search
from .sccp.check import CheckSpec
from .semirings.properties import validate_semiring
from .semirings.registry import get_semiring
from .soa.broker import Broker, ClientRequest
from .soa.registry import ServiceRegistry
from .soa.service import ServiceDescription, ServiceInterface
from .solver import solve
from .telemetry import (
    TelemetrySession,
    snapshot as telemetry_snapshot,
    telemetry_session,
    write_prometheus,
    write_trace_jsonl,
)

#: The session active for the current command (set by ``main``); when
#: present, ``_emit`` attaches its snapshot to the printed payload.
_session: Optional[TelemetrySession] = None


def _read_json(path: str) -> Any:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def _emit(payload: Dict[str, Any]) -> None:
    if _session is not None:
        payload = {
            **payload,
            "telemetry": telemetry_snapshot(
                _session.registry, _session.tracer, _session.events
            ),
        }
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_solve(args: argparse.Namespace) -> int:
    problem = serialization.problem_from_dict(_read_json(args.problem))
    result = solve(problem, method=args.method)
    _emit(
        {
            "problem": problem.name,
            "method": result.method,
            "blevel": serialization.value_to_json(result.blevel),
            "consistent": result.is_consistent,
            "optima": [
                [
                    {
                        name: serialization.value_to_json(value)
                        for name, value in assignment.items()
                    }
                    for assignment in group
                ]
                for group in result.optima
            ],
            "stats": {
                "leaves_evaluated": result.stats.leaves_evaluated,
                "nodes_expanded": result.stats.nodes_expanded,
                "prunes": result.stats.prunes,
            },
        }
    )
    return 0 if result.is_consistent else 1


def cmd_coalitions(args: argparse.Namespace) -> int:
    network = serialization.trust_network_from_dict(
        _read_json(args.network)
    )
    if args.method == "exact":
        solution = solve_exact(
            network, op=args.op, aggregate=args.aggregate
        )
    else:
        solution = solve_local_search(
            network, op=args.op, aggregate=args.aggregate, seed=args.seed
        )
    _emit(
        {
            "method": solution.method,
            "found": solution.found,
            "stable": solution.stable,
            "trust": solution.trust,
            "partition": [
                sorted(group) for group in (solution.partition or ())
            ],
            "partitions_examined": solution.partitions_examined,
        }
    )
    return 0 if solution.found else 1


def cmd_negotiate(args: argparse.Namespace) -> int:
    market = _read_json(args.market)
    if market.get("kind") != "market":
        raise SystemExit("error: payload is not a market spec")

    registry = ServiceRegistry()
    for entry in market.get("services", []):
        document = serialization.qos_document_from_dict(entry["qos"])
        registry.publish(
            ServiceDescription(
                service_id=entry["service_id"],
                name=entry.get("name", document.service_name),
                provider=document.provider,
                interface=ServiceInterface(operation=entry["operation"]),
                qos=document,
                tags=tuple(entry.get("tags", ())),
            )
        )

    spec = market["request"]
    from .soa.qos import resolve_attribute

    semiring = resolve_attribute(spec["attribute"]).semiring()
    acceptance = None
    if "acceptance" in spec:
        acceptance = CheckSpec(
            semiring,
            lower=serialization.value_from_json(
                spec["acceptance"].get("lower")
            ),
            upper=serialization.value_from_json(
                spec["acceptance"].get("upper")
            ),
        )
    request = ClientRequest(
        client=spec.get("client", "cli"),
        operation=spec["operation"],
        attribute=spec["attribute"],
        acceptance=acceptance,
    )
    broker = Broker(registry)
    result = broker.negotiate(
        request,
        verify_scheduler_independence=getattr(
            args, "verify_independence", False
        ),
    )
    _emit(
        {
            "success": result.success,
            "detail": result.detail,
            "sla": None
            if result.sla is None
            else {
                "sla_id": result.sla.sla_id,
                "providers": list(result.sla.providers),
                "service_ids": list(result.sla.service_ids),
                "agreed_level": serialization.value_to_json(
                    result.sla.agreed_level
                ),
            },
            "evaluations": [
                {
                    "provider": evaluation.provider,
                    "service_id": evaluation.description.service_id,
                    "blevel": serialization.value_to_json(evaluation.blevel),
                    "accepted": evaluation.accepted,
                }
                for evaluation in result.evaluations
            ],
        }
    )
    return 0 if result.success else 1


def cmd_validate_semiring(args: argparse.Namespace) -> int:
    kwargs: Dict[str, Any] = {}
    if args.universe:
        kwargs["universe"] = args.universe.split(",")
    if args.cap is not None:
        kwargs["cap"] = args.cap
    semiring = get_semiring(args.name, **kwargs)
    report = validate_semiring(semiring)
    _emit(
        {
            "semiring": semiring.name,
            "ok": report.ok,
            "violations": [str(v) for v in report.violations],
        }
    )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Soft constraints for dependable SOAs — CLI",
    )
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--telemetry",
        action="store_true",
        help="collect metrics/spans and embed the snapshot in the output",
    )
    observability.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the span/event journal as JSON lines (implies "
        "--telemetry)",
    )
    observability.add_argument(
        "--prometheus-out",
        default=None,
        metavar="PATH",
        help="write metrics in Prometheus text format (implies "
        "--telemetry)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser(
        "solve", help="solve a JSON SCSP", parents=[observability]
    )
    p_solve.add_argument("problem", help="path to an scsp JSON file")
    p_solve.add_argument(
        "--method",
        default="auto",
        choices=("auto", "exhaustive", "branch-bound", "elimination"),
    )
    p_solve.set_defaults(fn=cmd_solve)

    p_coal = sub.add_parser(
        "coalitions",
        help="partition a JSON trust network",
        parents=[observability],
    )
    p_coal.add_argument("network", help="path to a trust-network JSON file")
    p_coal.add_argument(
        "--method", default="exact", choices=("exact", "local-search")
    )
    p_coal.add_argument("--op", default="avg", choices=("min", "avg", "max"))
    p_coal.add_argument(
        "--aggregate", default="min", choices=("min", "avg", "max")
    )
    p_coal.add_argument("--seed", type=int, default=0)
    p_coal.set_defaults(fn=cmd_coalitions)

    p_neg = sub.add_parser(
        "negotiate",
        help="run the broker over a JSON market",
        parents=[observability],
    )
    p_neg.add_argument("market", help="path to a market JSON file")
    p_neg.add_argument(
        "--verify-independence",
        action="store_true",
        help="re-run the winner as nmsccp agents and certify the outcome "
        "is scheduler-independent",
    )
    p_neg.set_defaults(fn=cmd_negotiate)

    p_val = sub.add_parser(
        "validate-semiring",
        help="check semiring laws on a sample",
        parents=[observability],
    )
    p_val.add_argument("name", help="registered semiring name")
    p_val.add_argument(
        "--universe", default="", help="comma-separated set universe"
    )
    p_val.add_argument("--cap", type=float, default=None)
    p_val.set_defaults(fn=cmd_validate_semiring)
    return parser


def main(argv=None) -> int:
    global _session
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    prometheus_out = getattr(args, "prometheus_out", None)
    wants_telemetry = bool(
        getattr(args, "telemetry", False) or trace_out or prometheus_out
    )
    try:
        if not wants_telemetry:
            return args.fn(args)
        with telemetry_session() as session:
            _session = session
            code = args.fn(args)
            if trace_out:
                write_trace_jsonl(trace_out, session.tracer, session.events)
            if prometheus_out:
                write_prometheus(prometheus_out, session.registry)
            return code
    except serialization.SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _session = None


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
