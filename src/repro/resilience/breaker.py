"""Per-provider circuit breakers (closed / open / half-open).

The classic fail-fast pattern wired into matchmaking: a provider that
keeps failing — consecutive injected faults on its sessions, or SLA
violations raised by a monitor — *trips* its breaker, and the broker's
registry search stops offering that provider before negotiation starts
(instead of negotiating, binding, failing and retrying).  After a
recovery timeout the breaker goes *half-open* and hands out a bounded
number of probe slots; a successful probe closes it again, a failed one
re-opens it with a fresh (jittered) recovery deadline.

State machine::

                 failures ≥ threshold
        CLOSED ──────────────────────────▶ OPEN
          ▲                                 │ recovery deadline passed
          │ probe succeeds                  ▼
          └──────────────────────────── HALF-OPEN
                                            │ probe fails
                                            └──────▶ OPEN (rescheduled)

Determinism: the breaker never draws from a session's RNG.  Time comes
from an injected ``clock`` and the probe-deadline jitter from a private
:class:`random.Random` seeded at construction, so a fixed master seed
reproduces every trip and probe schedule of a run — and while no breaker
trips, the layer is observationally silent (agreements are bit-identical
with breakers on or off).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..soa.service import ServiceDescription
from ..telemetry import get_events, get_registry


class BreakerError(Exception):
    """Raised on malformed breaker configurations."""


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the state (exported as ``breaker_state{provider}``).
STATE_LEVELS = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one provider's breaker (shared by the whole registry)."""

    #: Consecutive failures (faults or SLA violations) that trip it.
    failure_threshold: int = 3
    #: Seconds a tripped breaker stays open before probing.
    recovery_s: float = 0.25
    #: Fractional jitter on the recovery deadline (``± jitter·recovery``)
    #: so a fleet's breakers don't all probe in lockstep.
    probe_jitter: float = 0.2
    #: Probe slots handed out per half-open episode.
    half_open_probes: int = 1
    #: Probe successes required to close from half-open.
    close_after: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise BreakerError("failure_threshold must be at least 1")
        if self.recovery_s < 0:
            raise BreakerError("recovery_s must be non-negative")
        if not 0.0 <= self.probe_jitter <= 1.0:
            raise BreakerError("probe_jitter must be a fraction in [0, 1]")
        if self.half_open_probes < 1 or self.close_after < 1:
            raise BreakerError("probe counts must be at least 1")


class CircuitBreaker:
    """One provider's breaker; see the module docstring for the FSM."""

    def __init__(
        self,
        provider: str,
        config: BreakerConfig,
        clock: Callable[[], float],
        rng: random.Random,
    ) -> None:
        self.provider = provider
        self.config = config
        self._clock = clock
        self._rng = rng
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._probe_successes = 0
        self._probes_outstanding = 0
        self._reopen_at: Optional[float] = None
        #: (time, from, to) transition journal for inspection/tests.
        self.transitions: List[Tuple[float, str, str]] = []

    # -- queries -------------------------------------------------------

    def allows(self) -> bool:
        """Whether a request may be routed to this provider *now*.

        Side-effectful on purpose: an open breaker whose recovery
        deadline has passed moves to half-open here, and a half-open
        breaker consumes one probe slot per admission.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self._reopen_at is not None
                and self._clock() >= self._reopen_at
            ):
                self._transition(BreakerState.HALF_OPEN)
                self._probe_successes = 0
                self._probes_outstanding = 0
            else:
                return False
        # Half-open: bounded probe traffic.
        if self._probes_outstanding < self.config.half_open_probes:
            self._probes_outstanding += 1
            return True
        return False

    # -- feedback ------------------------------------------------------

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            self._probes_outstanding = max(0, self._probes_outstanding - 1)
            if self._probe_successes >= self.config.close_after:
                self._transition(BreakerState.CLOSED)
                self._reopen_at = None

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to open, new deadline.
            self._trip()
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._transition(BreakerState.OPEN)
        self.consecutive_failures = 0
        recovery = self.config.recovery_s
        if self.config.probe_jitter and recovery > 0:
            spread = recovery * self.config.probe_jitter
            recovery = max(0.0, recovery + self._rng.uniform(-spread, spread))
        self._reopen_at = self._clock() + recovery

    def _transition(self, to: BreakerState) -> None:
        if to is self.state:
            return
        origin = self.state
        self.state = to
        self.transitions.append((self._clock(), origin.value, to.value))
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "breaker_state",
                "Circuit state per provider (0 closed, 1 half-open, "
                "2 open).",
                labelnames=("provider",),
            ).labels(self.provider).set(STATE_LEVELS[to])
            registry.counter(
                "breaker_transitions_total",
                "Circuit breaker state changes, by provider and target.",
                labelnames=("provider", "to"),
            ).labels(self.provider, to.value).inc()
            get_events().emit(
                "breaker.transition",
                provider=self.provider,
                origin=origin.value,
                to=to.value,
            )


class BreakerRegistry:
    """All per-provider breakers of one serving surface.

    Registered as an availability gate on the
    :class:`~repro.soa.registry.ServiceRegistry` (``admit``), fed from
    the runtime's fault feedback (``record_success`` /
    ``record_failure``) and from SLA monitors (``record_violation``).
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock if clock is not None else time.monotonic
        self._rng = random.Random(seed)
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, provider: str) -> CircuitBreaker:
        breaker = self._breakers.get(provider)
        if breaker is None:
            # Per-breaker RNG split off the registry seed at first
            # sight, keyed only by creation order of providers — which
            # is deterministic because candidate sets are sorted.
            breaker = CircuitBreaker(
                provider,
                self.config,
                self._clock,
                random.Random(self._rng.getrandbits(64)),
            )
            self._breakers[provider] = breaker
        return breaker

    # -- the availability gate ----------------------------------------

    def admit(self, description: ServiceDescription) -> bool:
        """Gate hook for ``ServiceRegistry.add_gate``."""
        breaker = self.breaker(description.provider)
        allowed = breaker.allows()
        if not allowed:
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "breaker_rejections_total",
                    "Candidates hidden from matchmaking by an open "
                    "breaker.",
                    labelnames=("provider",),
                ).labels(description.provider).inc()
        return allowed

    # -- feedback ------------------------------------------------------

    def record_success(self, provider: str) -> None:
        self.breaker(provider).record_success()

    def record_failure(self, provider: str) -> None:
        self.breaker(provider).record_failure()

    def record_violation(self, provider: str) -> None:
        """An SLA violation counts like a failure (Sec. 4's dependable
        broker reacts to monitoring, not only to hard faults)."""
        self.breaker(provider).record_failure()

    # -- inspection ----------------------------------------------------

    def state(self, provider: str) -> BreakerState:
        return self.breaker(provider).state

    def states(self) -> Dict[str, str]:
        return {
            provider: breaker.state.value
            for provider, breaker in sorted(self._breakers.items())
        }

    def open_providers(self) -> List[str]:
        return sorted(
            provider
            for provider, breaker in self._breakers.items()
            if breaker.state is not BreakerState.CLOSED
        )
