"""Health-checked matchmaking: heartbeat probes feeding the registry.

A :class:`HealthMonitor` periodically *probes* every published service
— consulting the same fault models a live invocation would hit, but
without invoking anything — and aggregates the answers per provider:

* ``unhealthy_after`` consecutive failed probe sweeps quarantine the
  provider in the :class:`~repro.soa.registry.ServiceRegistry`, so it
  drops out of matchmaking *before* a doomed negotiation starts;
* ``healthy_after`` consecutive clean sweeps reinstate it.

This is the health-check/heartbeat pattern: the breaker reacts to real
traffic failing, the health monitor detects sick providers even when no
session happens to be routed at them (and, symmetrically, notices
recovery without burning a live probe session).

Determinism: each probe's RNG derives from ``(seed, service id, probe
tick)`` via the same keyed SHA-256 derivation the fleet uses for
sessions (:func:`~repro.runtime.server.derive_session_seed`) — probe
draws never touch the master stream or any session stream, so enabling
health checks cannot shift a single agreement.  Probe ticks come from an
injectable ``tick_source`` (the runtime passes its admission counter, a
fleet its global ingress sequence) so windowed fault models like
``BurstOutage`` are observed in the same coordinate system sessions
experience them in.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..soa.faults import FaultInjector
from ..soa.registry import ServiceRegistry
from ..telemetry import get_events, get_registry


class HealthError(Exception):
    """Raised on malformed health configurations."""


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the heartbeat/probe loop."""

    #: Sleep between probe sweeps in the async loop.
    interval_s: float = 0.05
    #: Consecutive failed sweeps before a provider is quarantined.
    unhealthy_after: int = 2
    #: Consecutive clean sweeps before a quarantined provider rejoins.
    healthy_after: int = 2
    #: Lease renewed on every clean sweep (None = no lease management).
    lease_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise HealthError("interval_s must be positive")
        if self.unhealthy_after < 1 or self.healthy_after < 1:
            raise HealthError("probe thresholds must be at least 1")
        if self.lease_s is not None and self.lease_s <= 0:
            raise HealthError("lease_s must be positive (or None)")


class HealthMonitor:
    """Probes providers and drives registry quarantine/reinstatement."""

    def __init__(
        self,
        registry: ServiceRegistry,
        injector: Optional[FaultInjector] = None,
        config: Optional[HealthConfig] = None,
        seed: Optional[int] = None,
        tick_source: Optional[Callable[[], int]] = None,
    ) -> None:
        self.registry = registry
        self.injector = injector
        self.config = config or HealthConfig()
        self.seed = seed
        self._tick_source = tick_source
        self._sweeps = 0
        self._consecutive_bad: Dict[str, int] = {}
        self._consecutive_good: Dict[str, int] = {}
        #: (sweep, provider, "unhealthy"|"healthy") transition journal.
        self.transitions: List[tuple] = []

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def _probe_service(self, service_id: str, tick: int) -> bool:
        """One synthetic invocation: ``True`` = the service looks up.

        Consults the injector's fault models directly (not ``decide``),
        so probe traffic neither pollutes the injected-fault history nor
        advances any shared RNG stream.
        """
        if self.injector is None:
            return True
        # Imported here: runtime.server imports this package at module
        # level, so the reverse edge must stay lazy.
        from ..runtime.server import derive_session_seed

        rng = random.Random(
            derive_session_seed(self.seed, f"health|{service_id}|{tick}")
        )
        for model in self.injector.models_for(service_id):
            fault = model.apply(tick, rng)
            if fault is not None and fault.fail:
                return False
        return True

    def probe_all(self, tick: Optional[int] = None) -> Dict[str, bool]:
        """One sweep over every provider; returns provider → healthy.

        A provider is healthy when *all* of its published services pass
        their probe.  Quarantined providers are probed too — that is how
        they earn reinstatement.
        """
        if tick is None:
            tick = (
                self._tick_source()
                if self._tick_source is not None
                else self._sweeps
            )
        self._sweeps += 1
        by_provider: Dict[str, bool] = {}
        for description in self.registry.find(include_unavailable=True):
            up = self._probe_service(description.service_id, tick)
            provider = description.provider
            by_provider[provider] = by_provider.get(provider, True) and up
            if up and self.config.lease_s is not None:
                # A clean probe doubles as the provider's heartbeat.
                self.registry.renew_lease(
                    description.service_id, self.config.lease_s
                )
        for provider, healthy in sorted(by_provider.items()):
            self._account(provider, healthy)
        return by_provider

    def _account(self, provider: str, healthy: bool) -> None:
        if healthy:
            self._consecutive_bad[provider] = 0
            good = self._consecutive_good.get(provider, 0) + 1
            self._consecutive_good[provider] = good
            if (
                self.registry.is_quarantined(provider)
                and good >= self.config.healthy_after
            ):
                self.registry.reinstate(provider)
                self._record_transition(provider, "healthy")
        else:
            self._consecutive_good[provider] = 0
            bad = self._consecutive_bad.get(provider, 0) + 1
            self._consecutive_bad[provider] = bad
            if (
                not self.registry.is_quarantined(provider)
                and bad >= self.config.unhealthy_after
            ):
                self.registry.quarantine(provider)
                self._record_transition(provider, "unhealthy")

    def _record_transition(self, provider: str, to: str) -> None:
        self.transitions.append((self._sweeps, provider, to))
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "health_transitions_total",
                "Provider health flips detected by the probe loop.",
                labelnames=("provider", "to"),
            ).labels(provider, to).inc()
            registry.gauge(
                "health_state",
                "Probe verdict per provider (1 healthy, 0 quarantined).",
                labelnames=("provider",),
            ).labels(provider).set(1 if to == "healthy" else 0)
        get_events().emit(
            "health.transition",
            provider=provider,
            to=to,
            sweep=self._sweeps,
        )

    # ------------------------------------------------------------------
    # The async loop (runtime/fleet-owned)
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Probe forever at ``interval_s``; cancel to stop."""
        while True:
            self.probe_all()
            await asyncio.sleep(self.config.interval_s)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def sweeps(self) -> int:
        return self._sweeps

    def is_healthy(self, provider: str) -> bool:
        return not self.registry.is_quarantined(provider)
