"""Resilience layer for the serving path (paper Sec. 4, dependability).

The paper's broker is "dependable" because agreements are checked,
monitored and re-negotiated; this package adds the serving-side
mechanisms that keep the broker *available* while providers misbehave:

* :mod:`~repro.resilience.breaker` — per-provider circuit breakers
  gating matchmaking (fail fast instead of negotiate-and-fail);
* :mod:`~repro.resilience.bulkhead` — bounded per-service-class
  compartments so one bad operation cannot starve the worker pool;
* :mod:`~repro.resilience.health` — heartbeat probes that quarantine
  sick providers in the registry before negotiation sees them;
* :mod:`~repro.resilience.hedge` — shadow solves for deadline-bound
  sessions stuck in the latency tail;
* :mod:`~repro.resilience.dlq` — a dead-letter queue of terminal
  failures, serialized for offline inspection and deterministic replay.

Everything is seed-deterministic and observationally silent while idle:
with a fixed master seed, a run with resilience enabled is bit-identical
to one with it disabled as long as no breaker trips and no hedge wins.
"""

from .breaker import (
    BreakerConfig,
    BreakerError,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from .bulkhead import Bulkhead, BulkheadConfig, BulkheadError
from .dlq import (
    DeadLetter,
    DeadLetterQueue,
    DLQConfig,
    DLQError,
    replay_letter,
)
from .health import HealthConfig, HealthError, HealthMonitor
from .hedge import (
    HedgeConfig,
    HedgeError,
    HedgePolicy,
    LatencyTracker,
    hedge_attempt_key,
)
from .policy import (
    NO_RESILIENCE,
    ResilienceConfig,
    ResiliencePolicy,
    build_resilience,
)

__all__ = [
    "BreakerConfig",
    "BreakerError",
    "BreakerRegistry",
    "BreakerState",
    "Bulkhead",
    "BulkheadConfig",
    "BulkheadError",
    "CircuitBreaker",
    "DLQConfig",
    "DLQError",
    "DeadLetter",
    "DeadLetterQueue",
    "HealthConfig",
    "HealthError",
    "HealthMonitor",
    "HedgeConfig",
    "HedgeError",
    "HedgePolicy",
    "LatencyTracker",
    "NO_RESILIENCE",
    "ResilienceConfig",
    "ResiliencePolicy",
    "build_resilience",
    "hedge_attempt_key",
    "replay_letter",
]
