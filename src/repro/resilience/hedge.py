"""Hedged (shadow) solves for deadline-sensitive sessions.

The tail-latency pattern: when a session's primary attempt chain has
been running longer than the observed latency percentile, launch one
shadow attempt in parallel — *first success wins*, the loser is
cancelled.  A session stuck behind an injected delay or a slow provider
finishes at roughly the latency of the second-fastest path instead of
the slowest.

Reproducibility is the delicate part (and the reason this is not just
``asyncio.wait``): concurrent attempts must **never share a session's
RNG** — interleaved draws would make fault decisions and backoff jitter
depend on scheduling.  The primary attempt keeps the session's own
stream untouched (so with hedging enabled but never winning, a run is
bit-identical to hedging disabled — the regression test in
``tests/resilience/test_hedge.py``), and each shadow attempt ``n``
derives a fresh stream from ``(master seed, session key, n)`` via the
keyed SHA-256 derivation of
:func:`~repro.runtime.server.derive_session_seed`.

The launch threshold adapts: a :class:`LatencyTracker` keeps a bounded
window of completed-session latencies and hedges at their ``percentile``
once ``min_samples`` are in; before that it falls back to the fixed
``delay_s``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..telemetry import get_registry


class HedgeError(Exception):
    """Raised on malformed hedge configurations."""


@dataclass(frozen=True)
class HedgeConfig:
    """When (and how often) to launch shadow attempts."""

    #: Fallback launch delay while the tracker is still warming up.
    delay_s: float = 0.1
    #: Latency percentile (0–100) that sets the adaptive launch delay.
    percentile: float = 95.0
    #: Completed sessions required before the percentile is trusted.
    min_samples: int = 20
    #: Shadow attempts per session (1 = classic hedged request).
    max_hedges: int = 1
    #: Hedge only sessions that carry a deadline (the latency-sensitive
    #: ones); ``False`` hedges everything.
    deadline_only: bool = True

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise HedgeError("delay_s must be non-negative")
        if not 0 < self.percentile <= 100:
            raise HedgeError("percentile must be in (0, 100]")
        if self.min_samples < 1:
            raise HedgeError("min_samples must be at least 1")
        if self.max_hedges < 1:
            raise HedgeError("max_hedges must be at least 1")


class LatencyTracker:
    """Bounded window of observed latencies with nearest-rank quantile."""

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise HedgeError("window must be at least 1")
        self.window = window
        self._samples: List[float] = []
        self._next = 0

    def observe(self, latency_s: float) -> None:
        if len(self._samples) < self.window:
            self._samples.append(latency_s)
        else:  # ring overwrite, O(1), no deque import needed
            self._samples[self._next] = latency_s
            self._next = (self._next + 1) % self.window

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> Optional[float]:
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]


class HedgePolicy:
    """Decides launch delays and accounts hedge outcomes.

    The runtime owns the racing (it holds the sessions and the event
    loop); this object owns *policy*: whether a session qualifies, how
    long to wait before shadowing, and the launched/won counters.
    """

    def __init__(
        self,
        config: Optional[HedgeConfig] = None,
        tracker: Optional[LatencyTracker] = None,
    ) -> None:
        self.config = config or HedgeConfig()
        self.tracker = tracker or LatencyTracker()
        self.launched = 0
        self.won = 0

    def applies(self, deadline_s: Optional[float]) -> bool:
        if self.config.deadline_only and deadline_s is None:
            return False
        return True

    def launch_delay(self) -> float:
        """Seconds the primary may run before a shadow launches."""
        if len(self.tracker) >= self.config.min_samples:
            threshold = self.tracker.quantile(self.config.percentile)
            if threshold is not None:
                return max(threshold, self.config.delay_s)
        return self.config.delay_s

    def observe_latency(self, latency_s: float) -> None:
        self.tracker.observe(latency_s)

    # -- accounting ----------------------------------------------------

    def record_launched(self) -> None:
        self.launched += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "hedge_launched_total",
                "Shadow attempts launched for slow sessions.",
            ).inc()

    def record_won(self) -> None:
        self.won += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "hedge_won_total",
                "Sessions whose shadow attempt finished first.",
            ).inc()


def hedge_attempt_key(session_key: str, attempt: int) -> str:
    """The keyed-derivation suffix for shadow attempt ``attempt``.

    Distinct from every session key a fleet can generate (sessions never
    contain ``|hedge|``), so a shadow stream can never collide with a
    primary one.
    """
    return f"{session_key}|hedge|{attempt}"
