"""Composing the resilience patterns into one policy object.

:class:`ResilienceConfig` is the declarative half: a frozen bundle of
optional per-pattern configs, where ``None`` disables that pattern —
the all-``None`` default is byte-for-byte the pre-resilience serving
path.  :class:`ResiliencePolicy` is the runtime half: the live breaker
registry, bulkhead, health monitor, hedge policy and dead-letter queue
built from a config by :func:`build_resilience`.

One policy serves one :class:`~repro.runtime.server.RuntimeServer`.  A
fleet builds one policy per shard but passes ``shared_*`` instances for
the state that must be fleet-global (breakers, health, DLQ: a provider
that is down is down for every shard), while bulkheads and hedge
latency tracking stay per-shard (they guard per-shard resources).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..soa.faults import FaultInjector
from ..soa.registry import ServiceRegistry
from .breaker import BreakerConfig, BreakerRegistry
from .bulkhead import Bulkhead, BulkheadConfig
from .dlq import DeadLetterQueue, DLQConfig
from .health import HealthConfig, HealthMonitor
from .hedge import HedgeConfig, HedgePolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Which patterns are on, and how they are tuned.

    Every field is optional; ``None`` disables the pattern entirely
    (no object built, no gate registered, no counters touched).
    """

    breaker: Optional[BreakerConfig] = None
    bulkhead: Optional[BulkheadConfig] = None
    health: Optional[HealthConfig] = None
    hedge: Optional[HedgeConfig] = None
    dlq: Optional[DLQConfig] = None

    @property
    def any_enabled(self) -> bool:
        return any(
            (self.breaker, self.bulkhead, self.health, self.hedge, self.dlq)
        )

    @classmethod
    def all_defaults(cls) -> "ResilienceConfig":
        """Every pattern on, at its default tuning."""
        return cls(
            breaker=BreakerConfig(),
            bulkhead=BulkheadConfig(),
            health=HealthConfig(),
            hedge=HedgeConfig(),
            dlq=DLQConfig(),
        )


#: Disabled-everything singleton (the implicit default everywhere).
NO_RESILIENCE = ResilienceConfig()


@dataclass
class ResiliencePolicy:
    """Live resilience state for one serving surface."""

    config: ResilienceConfig
    breakers: Optional[BreakerRegistry] = None
    bulkhead: Optional[Bulkhead] = None
    health: Optional[HealthMonitor] = None
    hedge: Optional[HedgePolicy] = None
    dlq: Optional[DeadLetterQueue] = None
    #: Whether the owning server should drive the health probe loop
    #: (a fleet runs one shared loop itself and sets this False).
    owns_health_loop: bool = True
    _gated_registry: Optional[ServiceRegistry] = field(
        default=None, repr=False
    )

    # ------------------------------------------------------------------

    def attach(self, registry: ServiceRegistry) -> None:
        """Register the breaker gate on the matchmaking registry."""
        if self.breakers is not None and self._gated_registry is None:
            registry.add_gate(self.breakers.admit)
            self._gated_registry = registry

    def detach(self) -> None:
        if self.breakers is not None and self._gated_registry is not None:
            self._gated_registry.remove_gate(self.breakers.admit)
            self._gated_registry = None

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view for CLI summaries and bench artifacts."""
        out: Dict[str, Any] = {}
        if self.breakers is not None:
            out["breakers"] = self.breakers.states()
        if self.bulkhead is not None:
            out["bulkhead_rejections"] = dict(
                sorted(self.bulkhead.rejections.items())
            )
        if self.health is not None:
            out["health_sweeps"] = self.health.sweeps
            out["health_transitions"] = [
                {"sweep": sweep, "provider": provider, "to": to}
                for sweep, provider, to in self.health.transitions
            ]
        if self.hedge is not None:
            out["hedges_launched"] = self.hedge.launched
            out["hedges_won"] = self.hedge.won
        if self.dlq is not None:
            out["dlq"] = self.dlq.stats()
        return out


def build_resilience(
    config: Optional[ResilienceConfig],
    registry: ServiceRegistry,
    injector: Optional[FaultInjector] = None,
    seed: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
    tick_source: Optional[Callable[[], int]] = None,
    shared_breakers: Optional[BreakerRegistry] = None,
    shared_health: Optional[HealthMonitor] = None,
    shared_dlq: Optional[DeadLetterQueue] = None,
    owns_health_loop: bool = True,
) -> ResiliencePolicy:
    """Build (or adopt) the live objects for ``config``.

    ``shared_*`` lets a fleet hand every shard the same breaker
    registry, health monitor and DLQ while each shard still gets its
    own bulkhead and hedge tracker.  The breaker gate is attached to
    ``registry`` before this returns.
    """
    config = config or NO_RESILIENCE
    policy = ResiliencePolicy(config=config, owns_health_loop=owns_health_loop)
    # Explicit None checks: shared instances can be *empty* (a fresh
    # DLQ is falsy via __len__) and must still be adopted, not rebuilt.
    if config.breaker is not None:
        policy.breakers = (
            shared_breakers
            if shared_breakers is not None
            else BreakerRegistry(config.breaker, clock=clock, seed=seed)
        )
    if config.bulkhead is not None:
        policy.bulkhead = Bulkhead(config.bulkhead)
    if config.health is not None:
        policy.health = (
            shared_health
            if shared_health is not None
            else HealthMonitor(
                registry,
                injector=injector,
                config=config.health,
                seed=seed,
                tick_source=tick_source,
            )
        )
    if config.hedge is not None:
        policy.hedge = HedgePolicy(config.hedge)
    if config.dlq is not None:
        policy.dlq = (
            shared_dlq if shared_dlq is not None else DeadLetterQueue(config.dlq)
        )
    policy.attach(registry)
    return policy
