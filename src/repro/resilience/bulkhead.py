"""Bulkhead isolation: bounded per-service-class compartments.

The runtime's worker pool is a shared resource; without isolation, one
pathological service class (an operation whose solves crawl, a provider
whose injected delays stall every attempt) can occupy every worker and
every queue slot, starving the classes that are perfectly healthy.  A
:class:`Bulkhead` caps how many *admitted-but-unfinished* sessions each
class may hold at once — since workers only ever hold admitted sessions,
the cap bounds the class's worker occupancy too, exactly the
compartmentalized-hull picture the pattern is named after.

Admission is synchronous and non-blocking (``try_acquire``): a full
compartment rejects the session immediately with a typed result
(``SessionStatus.BULKHEAD_REJECTED``) instead of letting it crowd the
shared queue — the same explicit-backpressure stance as the admission
queue itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..telemetry import get_registry


class BulkheadError(Exception):
    """Raised on malformed bulkhead configurations."""


@dataclass(frozen=True)
class BulkheadConfig:
    """Compartment sizing.

    ``default_limit`` caps every class not named in ``limits``; a class
    mapped to ``None`` in ``limits`` is uncapped.
    """

    default_limit: int = 16
    limits: Mapping[str, Optional[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_limit < 1:
            raise BulkheadError("default_limit must be at least 1")
        for cls, limit in self.limits.items():
            if limit is not None and limit < 1:
                raise BulkheadError(
                    f"limit for class {cls!r} must be at least 1 (or None)"
                )

    def limit_for(self, cls: str) -> Optional[int]:
        if cls in self.limits:
            return self.limits[cls]
        return self.default_limit


class Bulkhead:
    """Non-blocking per-class admission slots.

    Single-threaded by design: acquire/release happen on the event loop
    (admission and completion callbacks), never from worker threads.
    """

    def __init__(self, config: Optional[BulkheadConfig] = None) -> None:
        self.config = config or BulkheadConfig()
        self._inflight: Dict[str, int] = {}
        self.rejections: Dict[str, int] = {}

    def try_acquire(self, cls: str) -> bool:
        """Take one slot of ``cls``; ``False`` = compartment full."""
        limit = self.config.limit_for(cls)
        held = self._inflight.get(cls, 0)
        if limit is not None and held >= limit:
            self.rejections[cls] = self.rejections.get(cls, 0) + 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "bulkhead_rejections_total",
                    "Sessions bounced by a full service-class "
                    "compartment.",
                    labelnames=("service_class",),
                ).labels(cls).inc()
            return False
        self._inflight[cls] = held + 1
        self._gauge(cls)
        return True

    def release(self, cls: str) -> None:
        held = self._inflight.get(cls, 0)
        if held <= 0:
            raise BulkheadError(
                f"release of class {cls!r} without a matching acquire"
            )
        self._inflight[cls] = held - 1
        self._gauge(cls)

    def inflight(self, cls: str) -> int:
        return self._inflight.get(cls, 0)

    def _gauge(self, cls: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "bulkhead_inflight",
                "Admitted-but-unfinished sessions per service class.",
                labelnames=("service_class",),
            ).labels(cls).set(self._inflight.get(cls, 0))
