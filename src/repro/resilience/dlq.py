"""Dead-letter queue: terminal failures captured for replay.

A session that exhausts its retries without an SLA (and has nothing to
degrade to) used to evaporate into a counter.  The DLQ keeps it: the
full request is serialized into a JSON *envelope* — via the same wire
format every other declarative object uses
(:mod:`repro.serialization`) — together with the reproducibility
coordinates (master seed, session key, fault tick), bounded in memory
with drop-oldest overflow, and persistable as JSON lines.

Because negotiation is deterministic given the market and the request,
replaying an envelope against a recovered broker (``repro dlq replay``)
re-produces exactly the agreement the session would have signed had its
providers been up — the acceptance test for the whole resilience layer's
bookkeeping.

Function-valued requirements are materialized to tables on capture when
possible; a request that genuinely cannot serialize is still captured
(status, detail, coordinates) but flagged ``replayable: false``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .. import serialization
from ..sccp.check import CheckSpec
from ..soa.broker import ClientRequest
from ..telemetry import get_events, get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.server import SessionResult


class DLQError(Exception):
    """Raised on malformed envelopes or replay misuse."""


@dataclass(frozen=True)
class DLQConfig:
    """Knobs of the dead-letter queue."""

    #: Envelopes kept in memory; overflow drops the oldest.
    maxlen: int = 1024
    #: Session outcomes captured (``SessionStatus.value`` strings).
    #: Both defaults are the retries-exhausted outcomes: ``failed``
    #: (nothing to serve) and ``degraded`` (a stale SLA was served —
    #: the envelope records the request whose *fresh* agreement is
    #: still owed).
    capture_statuses: tuple = ("failed", "degraded")

    def __post_init__(self) -> None:
        if self.maxlen < 1:
            raise DLQError("maxlen must be at least 1")
        if not self.capture_statuses:
            raise DLQError("capture_statuses must not be empty")


@dataclass
class DeadLetter:
    """One captured terminal failure."""

    client: str
    operation: str
    attribute: str
    status: str
    detail: str = ""
    attempts: int = 0
    index: int = -1
    session_key: Optional[str] = None
    tick: Optional[int] = None
    master_seed: Optional[int] = None
    #: Serialized requirements/acceptance (absent ⇒ not replayable).
    requirements: Optional[List[Dict[str, Any]]] = None
    acceptance: Optional[Dict[str, Any]] = None
    replayable: bool = True
    #: Capture ordinal within this queue (stable replay order).
    seq: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "dead-letter",
            "seq": self.seq,
            "client": self.client,
            "operation": self.operation,
            "attribute": self.attribute,
            "status": self.status,
            "detail": self.detail,
            "attempts": self.attempts,
            "index": self.index,
            "session_key": self.session_key,
            "tick": self.tick,
            "master_seed": self.master_seed,
            "requirements": self.requirements,
            "acceptance": self.acceptance,
            "replayable": self.replayable,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DeadLetter":
        if payload.get("kind") != "dead-letter":
            raise DLQError("payload is not a dead-letter envelope")
        return cls(
            client=payload["client"],
            operation=payload["operation"],
            attribute=payload["attribute"],
            status=payload["status"],
            detail=payload.get("detail", ""),
            attempts=payload.get("attempts", 0),
            index=payload.get("index", -1),
            session_key=payload.get("session_key"),
            tick=payload.get("tick"),
            master_seed=payload.get("master_seed"),
            requirements=payload.get("requirements"),
            acceptance=payload.get("acceptance"),
            replayable=payload.get("replayable", True),
            seq=payload.get("seq", 0),
            extra=payload.get("extra", {}),
        )

    # -- rehydration ---------------------------------------------------

    def to_request(self) -> ClientRequest:
        """Rebuild the original :class:`ClientRequest`."""
        if not self.replayable:
            raise DLQError(
                f"envelope #{self.seq} was captured without a "
                "serializable request"
            )
        requirements = [
            serialization.constraint_from_dict(payload)
            for payload in (self.requirements or [])
        ]
        acceptance = None
        if self.acceptance is not None:
            acceptance = CheckSpec(
                serialization.semiring_from_dict(
                    self.acceptance["semiring"]
                ),
                lower=serialization.value_from_json(
                    self.acceptance.get("lower")
                ),
                upper=serialization.value_from_json(
                    self.acceptance.get("upper")
                ),
            )
        return ClientRequest(
            client=self.client,
            operation=self.operation,
            attribute=self.attribute,
            requirements=requirements,
            acceptance=acceptance,
        )


class DeadLetterQueue:
    """Bounded capture buffer + JSONL persistence + replay."""

    def __init__(self, config: Optional[DLQConfig] = None) -> None:
        self.config = config or DLQConfig()
        self._letters: List[DeadLetter] = []
        self._captured = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def wants(self, status_value: str) -> bool:
        return status_value in self.config.capture_statuses

    def capture(
        self,
        result: "SessionResult",
        master_seed: Optional[int] = None,
        tick: Optional[int] = None,
    ) -> Optional[DeadLetter]:
        """Envelope one terminal session result (if its status is
        captured); returns the envelope or ``None``."""
        if not self.wants(result.status.value):
            return None
        request = result.request
        requirements: Optional[List[Dict[str, Any]]] = None
        acceptance: Optional[Dict[str, Any]] = None
        replayable = True
        try:
            requirements = [
                serialization.constraint_to_dict(constraint)
                for constraint in request.requirements
            ]
            if request.acceptance is not None:
                spec = request.acceptance
                acceptance = {
                    "semiring": serialization.semiring_to_dict(spec.semiring),
                    "lower": serialization.value_to_json(spec.lower),
                    "upper": serialization.value_to_json(spec.upper),
                }
        except serialization.SerializationError:
            requirements = None
            acceptance = None
            replayable = False
        letter = DeadLetter(
            client=request.client,
            operation=request.operation,
            attribute=request.attribute,
            status=result.status.value,
            detail=result.detail,
            attempts=result.attempts,
            index=result.index,
            session_key=result.session_key,
            tick=tick if tick is not None else result.index,
            master_seed=master_seed,
            requirements=requirements,
            acceptance=acceptance,
            replayable=replayable,
            seq=self._captured,
        )
        self._captured += 1
        self._letters.append(letter)
        if len(self._letters) > self.config.maxlen:
            self._letters.pop(0)
            self.dropped += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "dlq_captured_total",
                "Terminal sessions captured into the dead-letter queue.",
                labelnames=("status",),
            ).labels(letter.status).inc()
            registry.gauge(
                "dlq_depth",
                "Envelopes currently held by the dead-letter queue.",
            ).set(len(self._letters))
        get_events().emit(
            "dlq.captured",
            client=letter.client,
            operation=letter.operation,
            status=letter.status,
            session_key=letter.session_key,
        )
        return letter

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self):
        return iter(self._letters)

    @property
    def captured_total(self) -> int:
        return self._captured

    def letters(self) -> List[DeadLetter]:
        return list(self._letters)

    def stats(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for letter in self._letters:
            by_status[letter.status] = by_status.get(letter.status, 0) + 1
        return {
            "depth": len(self._letters),
            "captured_total": self._captured,
            "dropped": self.dropped,
            "by_status": by_status,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_jsonl(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for letter in self._letters:
                handle.write(json.dumps(letter.to_dict()) + "\n")
        return path

    @classmethod
    def from_jsonl(
        cls, path: "str | Path", config: Optional[DLQConfig] = None
    ) -> "DeadLetterQueue":
        queue = cls(config or DLQConfig())
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            letter = DeadLetter.from_dict(json.loads(line))
            queue._letters.append(letter)
            queue._captured = max(queue._captured, letter.seq + 1)
        return queue

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self, target: Any) -> List[Dict[str, Any]]:
        """Re-drive every replayable envelope against ``target``.

        ``target`` is a :class:`~repro.soa.broker.Broker` (direct
        negotiation) or anything server-shaped with ``run`` /
        ``submit(session_key=…)`` (a
        :class:`~repro.runtime.server.RuntimeServer` or a fleet
        front-end).  Returns one summary row per envelope.
        """
        rows: List[Dict[str, Any]] = []
        for letter in self._letters:
            rows.append(replay_letter(letter, target))
        registry = get_registry()
        if registry.enabled and rows:
            counter = registry.counter(
                "dlq_replayed_total",
                "Dead-letter envelopes re-driven, by outcome.",
                labelnames=("outcome",),
            )
            for row in rows:
                counter.labels(row["outcome"]).inc()
        return rows


def replay_letter(letter: DeadLetter, target: Any) -> Dict[str, Any]:
    """Replay one envelope; returns a JSON-able summary row."""
    row: Dict[str, Any] = {
        "seq": letter.seq,
        "client": letter.client,
        "operation": letter.operation,
        "original_status": letter.status,
    }
    if not letter.replayable:
        row["outcome"] = "unreplayable"
        return row
    request = letter.to_request()
    if hasattr(target, "negotiate"):
        result = target.negotiate(request)
        row["outcome"] = "completed" if result.success else "rejected"
        row["detail"] = result.detail
        if result.sla is not None:
            row["sla"] = {
                "sla_id": result.sla.sla_id,
                "providers": list(result.sla.providers),
                "service_ids": list(result.sla.service_ids),
                "agreed_level": serialization.value_to_json(
                    result.sla.agreed_level
                ),
                "resource_assignment": {
                    name: serialization.value_to_json(value)
                    for name, value in sorted(
                        result.sla.resource_assignment.items()
                    )
                },
            }
        return row
    if hasattr(target, "submit"):
        import asyncio

        async def drive():
            owns = not target.started
            if owns:
                await target.start()
            try:
                kwargs = {}
                if letter.session_key is not None:
                    kwargs["session_key"] = letter.session_key
                return await target.submit(request, **kwargs)
            finally:
                if owns:
                    await target.stop()

        session = asyncio.run(drive())
        row["outcome"] = session.status.value
        row["detail"] = session.detail
        if session.sla is not None:
            row["sla"] = {
                "sla_id": session.sla.sla_id,
                "providers": list(session.sla.providers),
                "service_ids": list(session.sla.service_ids),
                "agreed_level": serialization.value_to_json(
                    session.sla.agreed_level
                ),
            }
        return row
    raise DLQError(
        f"cannot replay against {type(target).__name__}: expected a "
        "broker or a server"
    )
