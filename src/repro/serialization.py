"""JSON (de)serialization for problems, QoS documents and trust networks.

The paper's broker consumes "XML-based documents" describing QoS and
turns them into soft constraints; this module is the equivalent wire
format for this library (JSON rather than XML — same role, see DESIGN.md
substitutions).  Everything that can be stated declaratively round-trips:

* semirings (by registry name + parameters, including products);
* variables, table / polynomial / constant constraints;
* whole SCSPs ``⟨C, con⟩``;
* :class:`~repro.soa.qos.QoSDocument` / :class:`~repro.soa.qos.QoSPolicy`;
* :class:`~repro.coalitions.trust.TrustNetwork`.

Function constraints (arbitrary Python callables) intentionally do not
serialize — materialize them to tables first (`constraint.materialize()`).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from .coalitions.exact import CoalitionSolution
from .coalitions.trust import TrustNetwork
from .constraints.constraint import (
    ConstantConstraint,
    SoftConstraint,
)
from .constraints.polynomial import Polynomial, polynomial_constraint
from .constraints.table import TableConstraint, to_table
from .constraints.variables import Variable
from .semirings.base import Semiring
from .semirings.product import ProductSemiring
from .semirings.registry import get_semiring
from .semirings.setbased import SetSemiring
from .semirings.weighted import BoundedWeightedSemiring, WeightedSemiring
from .soa.composition import Choose, Invoke, Pipeline, Plan, Split
from .soa.qos import QoSDocument, QoSPolicy
from .solver.problem import SCSP


class SerializationError(Exception):
    """Raised on unknown payloads or non-serializable objects."""


# ----------------------------------------------------------------------
# Semirings
# ----------------------------------------------------------------------


def semiring_to_dict(semiring: Semiring) -> Dict[str, Any]:
    if isinstance(semiring, ProductSemiring):
        return {
            "kind": "product",
            "components": [
                semiring_to_dict(c) for c in semiring.components
            ],
        }
    if isinstance(semiring, SetSemiring):
        return {"kind": "set", "universe": sorted(map(str, semiring.universe))}
    if isinstance(semiring, BoundedWeightedSemiring):
        return {"kind": "bounded-weighted", "cap": semiring.cap}
    if isinstance(semiring, WeightedSemiring):
        return {"kind": "weighted", "integral": semiring.integral}
    name = semiring.name.lower()
    if name in ("classical", "fuzzy", "probabilistic"):
        return {"kind": name}
    raise SerializationError(
        f"semiring {semiring.name!r} has no registered JSON form"
    )


def semiring_from_dict(payload: Dict[str, Any]) -> Semiring:
    kind = payload.get("kind")
    if kind == "product":
        return ProductSemiring(
            [semiring_from_dict(c) for c in payload["components"]]
        )
    if kind == "set":
        return get_semiring("set", universe=payload["universe"])
    if kind == "bounded-weighted":
        return get_semiring("bounded-weighted", cap=payload["cap"])
    if kind == "weighted":
        return get_semiring(
            "weighted", integral=payload.get("integral", False)
        )
    if kind in ("classical", "fuzzy", "probabilistic", "boolean"):
        return get_semiring(kind)
    raise SerializationError(f"unknown semiring kind {kind!r}")


# ----------------------------------------------------------------------
# Values (semiring elements) — JSON has no ∞ or frozensets
# ----------------------------------------------------------------------


def value_to_json(value: Any) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, frozenset):
        return {"set": sorted(map(str, value))}
    if isinstance(value, tuple):
        return {"tuple": [value_to_json(v) for v in value]}
    return value


def value_from_json(payload: Any) -> Any:
    if payload == "inf":
        return math.inf
    if isinstance(payload, dict) and "set" in payload:
        return frozenset(payload["set"])
    if isinstance(payload, dict) and "tuple" in payload:
        return tuple(value_from_json(v) for v in payload["tuple"])
    return payload


# ----------------------------------------------------------------------
# Variables and constraints
# ----------------------------------------------------------------------


def variable_to_dict(variable: Variable) -> Dict[str, Any]:
    return {"name": variable.name, "domain": list(variable.domain)}


def variable_from_dict(payload: Dict[str, Any]) -> Variable:
    return Variable(payload["name"], tuple(payload["domain"]))


def polynomial_to_dict(polynomial: Polynomial) -> List[Dict[str, Any]]:
    return [
        {"monomial": [list(item) for item in monomial], "coeff": coeff}
        for monomial, coeff in sorted(polynomial.coefficients.items())
    ]


def polynomial_from_dict(payload: List[Dict[str, Any]]) -> Polynomial:
    return Polynomial(
        {
            tuple((name, power) for name, power in term["monomial"]): term[
                "coeff"
            ]
            for term in payload
        }
    )


def constraint_to_dict(constraint: SoftConstraint) -> Dict[str, Any]:
    """Serialize a constraint; non-table kinds are materialized."""
    semiring = semiring_to_dict(constraint.semiring)
    if isinstance(constraint, ConstantConstraint):
        return {
            "kind": "constant",
            "semiring": semiring,
            "value": value_to_json(constraint.constant),
        }
    poly = getattr(constraint, "_serialized_polynomial", None)
    if poly is not None:
        return {
            "kind": "polynomial",
            "semiring": semiring,
            "scope": [variable_to_dict(v) for v in constraint.scope],
            "polynomial": polynomial_to_dict(poly),
            "name": getattr(constraint, "name", ""),
        }
    table = to_table(constraint)
    return {
        "kind": "table",
        "semiring": semiring,
        "scope": [variable_to_dict(v) for v in table.scope],
        "default": value_to_json(table.default),
        "entries": [
            {"key": list(key), "value": value_to_json(val)}
            for key, val in sorted(
                table.table.items(), key=lambda kv: repr(kv[0])
            )
        ],
        "name": table.name,
    }


def constraint_from_dict(payload: Dict[str, Any]) -> SoftConstraint:
    kind = payload.get("kind")
    semiring = semiring_from_dict(payload["semiring"])
    if kind == "constant":
        return ConstantConstraint(semiring, value_from_json(payload["value"]))
    if kind == "polynomial":
        scope = [variable_from_dict(v) for v in payload["scope"]]
        constraint = polynomial_constraint(
            semiring,
            scope,
            polynomial_from_dict(payload["polynomial"]),
            name=payload.get("name", ""),
        )
        constraint._serialized_polynomial = polynomial_from_dict(  # type: ignore[attr-defined]
            payload["polynomial"]
        )
        return constraint
    if kind == "table":
        scope = [variable_from_dict(v) for v in payload["scope"]]
        entries = {
            tuple(entry["key"]): value_from_json(entry["value"])
            for entry in payload["entries"]
        }
        return TableConstraint(
            semiring,
            scope,
            entries,
            default=value_from_json(payload["default"]),
            name=payload.get("name", ""),
        )
    raise SerializationError(f"unknown constraint kind {kind!r}")


def serializable_polynomial_constraint(
    semiring: Semiring,
    scope: List[Variable],
    polynomial: Polynomial,
    name: str = "",
):
    """A polynomial constraint that remembers its polynomial, so
    :func:`constraint_to_dict` emits the compact symbolic form instead of
    a table."""
    constraint = polynomial_constraint(semiring, scope, polynomial, name)
    constraint._serialized_polynomial = polynomial  # type: ignore[attr-defined]
    return constraint


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------


def problem_to_dict(problem: SCSP) -> Dict[str, Any]:
    return {
        "kind": "scsp",
        "name": problem.name,
        "constraints": [
            constraint_to_dict(c) for c in problem.constraints
        ],
        "con": list(problem.con),
    }


def problem_from_dict(payload: Dict[str, Any]) -> SCSP:
    if payload.get("kind") != "scsp":
        raise SerializationError("payload is not an SCSP")
    constraints = [
        constraint_from_dict(c) for c in payload["constraints"]
    ]
    return SCSP(
        constraints, con=payload.get("con"), name=payload.get("name", "")
    )


# ----------------------------------------------------------------------
# QoS documents
# ----------------------------------------------------------------------


def qos_policy_to_dict(policy: QoSPolicy) -> Dict[str, Any]:
    if policy.fn is not None:
        raise SerializationError(
            "fn-based QoS policies cannot serialize; use table/polynomial"
        )
    payload: Dict[str, Any] = {
        "attribute": policy.attribute,
        "variables": {
            name: list(domain) for name, domain in policy.variables.items()
        },
    }
    if policy.constant is not None:
        payload["constant"] = value_to_json(policy.constant)
    if policy.polynomial is not None:
        payload["polynomial"] = polynomial_to_dict(policy.polynomial)
    if policy.table is not None:
        payload["table"] = [
            {"key": list(key), "value": value_to_json(val)}
            for key, val in sorted(
                policy.table.items(), key=lambda kv: repr(kv[0])
            )
        ]
    return payload


def qos_policy_from_dict(payload: Dict[str, Any]) -> QoSPolicy:
    table = None
    if "table" in payload:
        table = {
            tuple(entry["key"]): value_from_json(entry["value"])
            for entry in payload["table"]
        }
    return QoSPolicy(
        attribute=payload["attribute"],
        variables={
            name: tuple(domain)
            for name, domain in payload.get("variables", {}).items()
        },
        constant=value_from_json(payload["constant"])
        if "constant" in payload
        else None,
        polynomial=polynomial_from_dict(payload["polynomial"])
        if "polynomial" in payload
        else None,
        table=table,
    )


def qos_document_to_dict(document: QoSDocument) -> Dict[str, Any]:
    return {
        "kind": "qos-document",
        "service_name": document.service_name,
        "provider": document.provider,
        "policies": [qos_policy_to_dict(p) for p in document.policies],
    }


def qos_document_from_dict(payload: Dict[str, Any]) -> QoSDocument:
    if payload.get("kind") != "qos-document":
        raise SerializationError("payload is not a QoS document")
    return QoSDocument(
        service_name=payload["service_name"],
        provider=payload["provider"],
        policies=[
            qos_policy_from_dict(p) for p in payload.get("policies", [])
        ],
    )


# ----------------------------------------------------------------------
# Composition plans
# ----------------------------------------------------------------------

_PLAN_TYPES = {"pipeline": Pipeline, "split": Split, "choose": Choose}


def _plan_node_to_dict(node: Plan) -> Dict[str, Any]:
    if isinstance(node, Invoke):
        return {"type": "invoke", "service_id": node.service_id}
    for type_name, plan_type in _PLAN_TYPES.items():
        if isinstance(node, plan_type):
            return {
                "type": type_name,
                "children": [
                    _plan_node_to_dict(child) for child in node.children
                ],
            }
    raise SerializationError(
        f"cannot serialize plan node {type(node).__name__}"
    )


def _plan_node_from_dict(payload: Dict[str, Any]) -> Plan:
    node_type = payload.get("type")
    if node_type == "invoke":
        try:
            return Invoke(payload["service_id"])
        except KeyError:
            raise SerializationError(
                "invoke node needs a service_id"
            ) from None
    plan_type = _PLAN_TYPES.get(node_type)
    if plan_type is None:
        raise SerializationError(f"unknown plan node type {node_type!r}")
    children = payload.get("children")
    if not children:
        raise SerializationError(
            f"{node_type} node needs a non-empty children list"
        )
    return plan_type([_plan_node_from_dict(child) for child in children])


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    return {"kind": "plan", "root": _plan_node_to_dict(plan)}


def plan_from_dict(payload: Dict[str, Any]) -> Plan:
    if payload.get("kind") != "plan":
        raise SerializationError("payload is not a composition plan")
    try:
        root = payload["root"]
    except KeyError:
        raise SerializationError("plan payload needs a root node") from None
    return _plan_node_from_dict(root)


# ----------------------------------------------------------------------
# Trust networks
# ----------------------------------------------------------------------


def trust_network_to_dict(network: TrustNetwork) -> Dict[str, Any]:
    return {
        "kind": "trust-network",
        "agents": list(network.agents),
        "default": network.default,
        "scores": [
            {"source": source, "target": target, "trust": value}
            for (source, target), value in sorted(
                network.known_scores().items()
            )
        ],
    }


def trust_network_from_dict(payload: Dict[str, Any]) -> TrustNetwork:
    if payload.get("kind") != "trust-network":
        raise SerializationError("payload is not a trust network")
    scores = {
        (entry["source"], entry["target"]): entry["trust"]
        for entry in payload.get("scores", [])
    }
    return TrustNetwork(
        payload["agents"], scores, default=payload.get("default")
    )


def coalition_solution_to_dict(
    solution: CoalitionSolution,
) -> Dict[str, Any]:
    """JSON view of a coalition search result, shared by the CLI and the
    runtime so both surfaces report the same shape.

    ``stable_partitions`` is only meaningful for exact enumeration (the
    heuristics never count the stable universe), so it is included only
    when the method actually measured it.
    """
    payload: Dict[str, Any] = {
        "kind": "coalition-solution",
        "method": solution.method,
        "found": solution.found,
        "stable": solution.stable,
        "trust": solution.trust,
        "partition": [
            sorted(group) for group in (solution.partition or ())
        ],
        "partitions_examined": solution.partitions_examined,
    }
    if solution.method == "exact":
        payload["stable_partitions"] = solution.stable_partitions
    return payload


# ----------------------------------------------------------------------
# Top-level convenience
# ----------------------------------------------------------------------

_DUMPERS = {
    SCSP: problem_to_dict,
    QoSDocument: qos_document_to_dict,
    TrustNetwork: trust_network_to_dict,
    CoalitionSolution: coalition_solution_to_dict,
    Plan: plan_to_dict,
}

_LOADERS = {
    "scsp": problem_from_dict,
    "qos-document": qos_document_from_dict,
    "trust-network": trust_network_from_dict,
    "plan": plan_from_dict,
}


def dumps(obj: Any, indent: int = 2) -> str:
    """Serialize a supported object to a JSON string."""
    for cls, dumper in _DUMPERS.items():
        if isinstance(obj, cls):
            return json.dumps(dumper(obj), indent=indent)
    if isinstance(obj, SoftConstraint):
        return json.dumps(constraint_to_dict(obj), indent=indent)
    raise SerializationError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Any:
    """Deserialize any supported top-level payload."""
    payload = json.loads(text)
    kind = payload.get("kind") if isinstance(payload, dict) else None
    if kind in _LOADERS:
        return _LOADERS[kind](payload)
    if kind in ("table", "polynomial", "constant"):
        return constraint_from_dict(payload)
    raise SerializationError(f"unknown payload kind {kind!r}")
