"""Named registry of semiring instances.

QoS documents in the SOA layer reference their cost model by name
(``"weighted"``, ``"fuzzy"``, …); this registry resolves those names to
validated instances, and lets applications register custom semirings
(after which the broker can negotiate over them like any built-in one).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from typing import List

from .base import Semiring, SemiringError
from .boolean import BooleanSemiring
from .fuzzy import FuzzySemiring
from .probabilistic import ProbabilisticSemiring
from .product import LexicographicSemiring, ProductSemiring
from .setbased import SetSemiring
from .weighted import BoundedWeightedSemiring, WeightedSemiring


def _resolve_components(
    kind: str, components: tuple, factory_kwargs: dict
) -> List[Semiring]:
    """Resolve composite-semiring components given as names or instances,
    failing with the component (not just the unknown name) in the
    message so a typo inside ``product[weighted, fuzyz]`` is findable."""
    if not components:
        raise SemiringError(
            f"the {kind!r} semiring needs at least one component, e.g. "
            f"get_semiring({kind!r}, 'weighted', 'probabilistic')"
        )
    resolved: List[Semiring] = []
    for item in components:
        if isinstance(item, Semiring):
            resolved.append(item)
            continue
        try:
            resolved.append(get_semiring(item, **factory_kwargs))
        except SemiringError as exc:
            raise SemiringError(
                f"{kind} component {item!r}: {exc}"
            ) from None
    return resolved


def _make_product(*components, **factory_kwargs) -> "ProductSemiring":
    return ProductSemiring(
        _resolve_components("product", components, factory_kwargs)
    )


def _make_lexicographic(
    *components, **factory_kwargs
) -> "LexicographicSemiring":
    return LexicographicSemiring(
        _resolve_components("lexicographic", components, factory_kwargs)
    )


_FACTORIES: Dict[str, Callable[..., Semiring]] = {
    "classical": BooleanSemiring,
    "boolean": BooleanSemiring,
    "fuzzy": FuzzySemiring,
    "probabilistic": ProbabilisticSemiring,
    "weighted": WeightedSemiring,
    "bounded-weighted": BoundedWeightedSemiring,
    "set": SetSemiring,
    "product": _make_product,
    "lexicographic": _make_lexicographic,
    "lex": _make_lexicographic,
}


def register_semiring(name: str, factory: Callable[..., Semiring]) -> None:
    """Register a custom semiring factory under ``name`` (lowercased).

    Raises :class:`SemiringError` when the name is already taken, so a
    plugin cannot silently shadow a built-in cost model.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise SemiringError(f"semiring name {name!r} already registered")
    _FACTORIES[key] = factory


def available_semirings() -> Iterable[str]:
    """Sorted names of every registered semiring."""
    return sorted(_FACTORIES)


def get_semiring(name: str, *args, **kwargs) -> Semiring:
    """Instantiate the semiring registered under ``name``.

    Positional/keyword arguments are forwarded to the factory (e.g.
    ``get_semiring("set", universe={"read", "write"})`` or
    ``get_semiring("bounded-weighted", cap=100)``).
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        known = ", ".join(available_semirings())
        raise SemiringError(
            f"unknown semiring {name!r}; known: {known}"
        ) from None
    return factory(*args, **kwargs)


def product_of(*names_or_instances, **factory_kwargs) -> ProductSemiring:
    """Build a multi-criteria product from names and/or instances.

    Example: ``product_of("weighted", "probabilistic")`` models a joint
    (cost, reliability) optimization as in paper Sec. 4.
    """
    return ProductSemiring(
        _resolve_components("product", names_or_instances, factory_kwargs)
    )


def lexicographic_of(
    *names_or_instances, **factory_kwargs
) -> LexicographicSemiring:
    """Build a tie-broken lexicographic composite from names/instances.

    Example: ``lexicographic_of("fuzzy", "probabilistic")`` models the
    fairness objective ⟨min per-client satisfaction, total welfare⟩ —
    maximize the worst-off client, break ties by overall welfare.
    """
    return LexicographicSemiring(
        _resolve_components(
            "lexicographic", names_or_instances, factory_kwargs
        )
    )
