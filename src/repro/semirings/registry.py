"""Named registry of semiring instances.

QoS documents in the SOA layer reference their cost model by name
(``"weighted"``, ``"fuzzy"``, …); this registry resolves those names to
validated instances, and lets applications register custom semirings
(after which the broker can negotiate over them like any built-in one).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from .base import Semiring, SemiringError
from .boolean import BooleanSemiring
from .fuzzy import FuzzySemiring
from .probabilistic import ProbabilisticSemiring
from .product import ProductSemiring
from .setbased import SetSemiring
from .weighted import BoundedWeightedSemiring, WeightedSemiring

_FACTORIES: Dict[str, Callable[..., Semiring]] = {
    "classical": BooleanSemiring,
    "boolean": BooleanSemiring,
    "fuzzy": FuzzySemiring,
    "probabilistic": ProbabilisticSemiring,
    "weighted": WeightedSemiring,
    "bounded-weighted": BoundedWeightedSemiring,
    "set": SetSemiring,
}


def register_semiring(name: str, factory: Callable[..., Semiring]) -> None:
    """Register a custom semiring factory under ``name`` (lowercased).

    Raises :class:`SemiringError` when the name is already taken, so a
    plugin cannot silently shadow a built-in cost model.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise SemiringError(f"semiring name {name!r} already registered")
    _FACTORIES[key] = factory


def available_semirings() -> Iterable[str]:
    """Sorted names of every registered semiring."""
    return sorted(_FACTORIES)


def get_semiring(name: str, *args, **kwargs) -> Semiring:
    """Instantiate the semiring registered under ``name``.

    Positional/keyword arguments are forwarded to the factory (e.g.
    ``get_semiring("set", universe={"read", "write"})`` or
    ``get_semiring("bounded-weighted", cap=100)``).
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        known = ", ".join(available_semirings())
        raise SemiringError(
            f"unknown semiring {name!r}; known: {known}"
        ) from None
    return factory(*args, **kwargs)


def product_of(*names_or_instances, **factory_kwargs) -> ProductSemiring:
    """Build a multi-criteria product from names and/or instances.

    Example: ``product_of("weighted", "probabilistic")`` models a joint
    (cost, reliability) optimization as in paper Sec. 4.
    """
    components = []
    for item in names_or_instances:
        if isinstance(item, Semiring):
            components.append(item)
        else:
            components.append(get_semiring(item, **factory_kwargs))
    return ProductSemiring(components)
