"""Executable validators for the absorptive-semiring axioms.

The paper's framework rests on the algebraic laws of Sec. 2 (and of
Bistarelli & Gadducci 2006 for division).  This module turns each law into
a checkable predicate over a finite sample of carrier elements, so that

* every shipped instance is validated in the unit tests, and
* user-defined semirings can be sanity-checked before being handed to the
  solver (``validate_semiring`` raises with the first violated law).

The checks are necessarily over samples, not proofs — but they catch the
realistic failure modes (wrong unit, non-monotone division, broken
absorption) immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .base import Semiring, pairs, triples


@dataclass
class LawViolation:
    """A single violated law together with the witnessing elements."""

    law: str
    witness: tuple
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.law} violated at {self.witness!r}{suffix}"


@dataclass
class ValidationReport:
    """Outcome of checking a semiring against all axioms."""

    semiring_name: str
    violations: list[LawViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"{self.semiring_name}: all semiring laws hold on sample"
        lines = [f"{self.semiring_name}: {len(self.violations)} violation(s)"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def _elements(semiring: Semiring, elements: Optional[Sequence]) -> tuple:
    if elements is None:
        return tuple(semiring.sample_elements())
    return tuple(elements)


def check_plus_laws(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """``+`` commutative, associative, idempotent, unit 0, absorbing 1."""
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a, b in pairs(elems):
        if semiring.plus(a, b) != semiring.plus(b, a):
            out.append(LawViolation("plus-commutativity", (a, b)))
    for a, b, c in triples(elems):
        left = semiring.plus(semiring.plus(a, b), c)
        right = semiring.plus(a, semiring.plus(b, c))
        if left != right:
            out.append(LawViolation("plus-associativity", (a, b, c)))
    for a in elems:
        if semiring.plus(a, a) != a:
            out.append(LawViolation("plus-idempotency", (a,)))
        if semiring.plus(a, semiring.zero) != a:
            out.append(LawViolation("plus-unit-zero", (a,)))
        if semiring.plus(a, semiring.one) != semiring.one:
            out.append(LawViolation("plus-absorbing-one", (a,)))
    return out


def check_times_laws(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """``×`` commutative, associative, unit 1, absorbing 0, distributive."""
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a, b in pairs(elems):
        if semiring.times(a, b) != semiring.times(b, a):
            out.append(LawViolation("times-commutativity", (a, b)))
    for a, b, c in triples(elems):
        left = semiring.times(semiring.times(a, b), c)
        right = semiring.times(a, semiring.times(b, c))
        if left != right:
            out.append(LawViolation("times-associativity", (a, b, c)))
        dist_left = semiring.times(a, semiring.plus(b, c))
        dist_right = semiring.plus(semiring.times(a, b), semiring.times(a, c))
        if dist_left != dist_right:
            out.append(LawViolation("distributivity", (a, b, c)))
    for a in elems:
        if semiring.times(a, semiring.one) != a:
            out.append(LawViolation("times-unit-one", (a,)))
        if semiring.times(a, semiring.zero) != semiring.zero:
            out.append(LawViolation("times-absorbing-zero", (a,)))
    return out


def check_order_laws(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """``≤S`` is a partial order with 0 min, 1 max; operations monotone;
    absorptiveness ``a × b ≤ a``."""
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a in elems:
        if not semiring.leq(a, a):
            out.append(LawViolation("order-reflexivity", (a,)))
        if not semiring.leq(semiring.zero, a):
            out.append(LawViolation("zero-is-minimum", (a,)))
        if not semiring.leq(a, semiring.one):
            out.append(LawViolation("one-is-maximum", (a,)))
    for a, b in pairs(elems):
        if semiring.leq(a, b) and semiring.leq(b, a) and a != b:
            out.append(LawViolation("order-antisymmetry", (a, b)))
        if not semiring.leq(semiring.times(a, b), a):
            out.append(LawViolation("times-absorptive (a×b ≤ a)", (a, b)))
    for a, b, c in triples(elems):
        if semiring.leq(a, b) and semiring.leq(b, c) and not semiring.leq(a, c):
            out.append(LawViolation("order-transitivity", (a, b, c)))
        if semiring.leq(a, b):
            if not semiring.leq(semiring.plus(a, c), semiring.plus(b, c)):
                out.append(LawViolation("plus-monotonicity", (a, b, c)))
            if not semiring.leq(semiring.times(a, c), semiring.times(b, c)):
                out.append(LawViolation("times-monotonicity", (a, b, c)))
    return out


def check_lub_law(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """``a + b`` is the least upper bound of ``a`` and ``b``."""
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a, b in pairs(elems):
        lub = semiring.plus(a, b)
        if not (semiring.leq(a, lub) and semiring.leq(b, lub)):
            out.append(LawViolation("lub-upper-bound", (a, b)))
        for c in elems:
            if semiring.leq(a, c) and semiring.leq(b, c):
                if not semiring.leq(lub, c):
                    out.append(LawViolation("lub-least", (a, b, c)))
    return out


def check_division_laws(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """``a ÷ b`` is the residuation ``max{x | b × x ≤ a}`` on the sample.

    Checks (i) feasibility ``b × (a ÷ b) ≤ a`` and (ii) maximality: no
    sampled ``x`` with ``b × x ≤ a`` exceeds ``a ÷ b``.
    """
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a, b in pairs(elems):
        quotient = semiring.divide(a, b)
        if not semiring.is_element(quotient):
            out.append(
                LawViolation("division-closure", (a, b), f"got {quotient!r}")
            )
            continue
        if not semiring.leq(semiring.times(b, quotient), a):
            out.append(LawViolation("division-feasibility", (a, b)))
        for x in elems:
            if semiring.leq(semiring.times(b, x), a) and not semiring.leq(
                x, quotient
            ):
                out.append(LawViolation("division-maximality", (a, b, x)))
    return out


def check_invertibility(
    semiring: Semiring, elements: Optional[Sequence] = None
) -> list[LawViolation]:
    """When ``a ≤ b``, division recovers ``a``: ``b × (a ÷ b) = a``.

    This is the *invertible by residuation* property (paper Sec. 2) that
    makes ``retract`` exact: removing a constraint that was previously
    told restores the prior store.
    """
    elems = _elements(semiring, elements)
    out: list[LawViolation] = []
    for a, b in pairs(elems):
        if semiring.leq(a, b):
            recovered = semiring.times(b, semiring.divide(a, b))
            if not semiring.equiv(recovered, a):
                out.append(
                    LawViolation(
                        "invertibility (b × (a÷b) = a when a ≤ b)",
                        (a, b),
                        f"recovered {recovered!r}",
                    )
                )
    return out


_ALL_CHECKS = (
    check_plus_laws,
    check_times_laws,
    check_order_laws,
    check_lub_law,
    check_division_laws,
    check_invertibility,
)


def validate_semiring(
    semiring: Semiring,
    elements: Optional[Iterable] = None,
    raise_on_error: bool = False,
) -> ValidationReport:
    """Run every law check over a sample and collect violations.

    When ``elements`` is omitted, the instance's own ``sample_elements``
    are used.  With ``raise_on_error`` the first failing report raises
    ``ValueError`` — convenient as a guard before handing a user-defined
    semiring to the solver.
    """
    sample = tuple(elements) if elements is not None else None
    report = ValidationReport(semiring_name=semiring.name)
    for check in _ALL_CHECKS:
        report.violations.extend(check(semiring, sample))
    if raise_on_error and not report.ok:
        raise ValueError(str(report))
    return report
