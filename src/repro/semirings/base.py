"""Absorptive c-semirings: the algebraic core of the soft-constraint framework.

An *absorptive semiring* (Bistarelli & Gadducci, ECAI 2006; Sec. 2 of the
paper) is a tuple ``⟨A, +, ×, 0, 1⟩`` such that

* ``A`` is a set with distinguished elements ``0`` and ``1``;
* ``+`` is commutative, associative and idempotent, with unit ``0`` and
  absorbing element ``1``;
* ``×`` is commutative, associative, distributes over ``+``, has unit
  ``1`` and absorbing element ``0``.

The derived relation ``a ≤ b  iff  a + b = b`` is a partial order in which
``0`` is the minimum, ``1`` the maximum, ``a + b = lub(a, b)``, and both
operations are monotone.  ``b`` better than ``a`` means ``a ≤ b``.

A semiring is *residuated* when ``max{x | b × x ≤ a}`` exists for every
``a, b``; that maximum is the weak-inverse *division* ``a ÷ b`` used by the
``retract`` operation of the nmsccp language.  All classical instances
(Boolean, Fuzzy, Probabilistic, Weighted, Set-based) are complete and
hence residuated; every concrete subclass here implements ``divide`` in
closed form.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, Optional, TypeVar

A = TypeVar("A")


class SemiringError(Exception):
    """Raised when a semiring operation receives an invalid element."""


class Semiring(ABC, Generic[A]):
    """Abstract absorptive (c-)semiring ``⟨A, +, ×, 0, 1⟩``.

    Concrete subclasses provide the carrier predicate ``is_element``, the
    two operations ``plus``/``times``, the units ``zero``/``one`` and the
    residuated division ``divide``.  Everything else (order, lub/glb,
    folds, comparability) is derived here.
    """

    #: Human-readable name, e.g. ``"Weighted"``.
    name: str = "Semiring"

    # ------------------------------------------------------------------
    # Core algebra (abstract)
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> A:
        """The unit of ``+`` / absorbing element of ``×`` (worst value)."""

    @property
    @abstractmethod
    def one(self) -> A:
        """The unit of ``×`` / absorbing element of ``+`` (best value)."""

    @abstractmethod
    def plus(self, a: A, b: A) -> A:
        """Additive operation; computes the least upper bound of ``a, b``."""

    @abstractmethod
    def times(self, a: A, b: A) -> A:
        """Multiplicative (combination) operation."""

    @abstractmethod
    def is_element(self, a: Any) -> bool:
        """Return ``True`` when ``a`` belongs to the carrier set ``A``."""

    @abstractmethod
    def divide(self, a: A, b: A) -> A:
        """Residuated division ``a ÷ b = max{x ∈ A | b × x ≤ a}``."""

    # ------------------------------------------------------------------
    # Derived order structure
    # ------------------------------------------------------------------

    def leq(self, a: A, b: A) -> bool:
        """Partial order: ``a ≤S b  iff  a + b = b`` (b is *better*)."""
        return self.plus(a, b) == b

    def lt(self, a: A, b: A) -> bool:
        """Strict order: ``a <S b`` iff ``a ≤S b`` and ``a ≠ b``."""
        return a != b and self.leq(a, b)

    def geq(self, a: A, b: A) -> bool:
        """``a ≥S b`` iff ``b ≤S a``."""
        return self.leq(b, a)

    def gt(self, a: A, b: A) -> bool:
        """``a >S b`` iff ``b <S a``."""
        return self.lt(b, a)

    def comparable(self, a: A, b: A) -> bool:
        """Whether ``a`` and ``b`` are ordered either way (total for most
        instances, partial for Set-based and Cartesian products)."""
        return self.leq(a, b) or self.leq(b, a)

    def equiv(self, a: A, b: A) -> bool:
        """Element equality in the carrier (overridable for tolerance)."""
        return a == b

    def lub(self, a: A, b: A) -> A:
        """Least upper bound — coincides with ``+`` in a c-semiring."""
        return self.plus(a, b)

    def glb(self, a: A, b: A) -> A:
        """Greatest lower bound in the derived lattice.

        For idempotent ``×`` (Boolean, Fuzzy, Set) the glb is ``×`` itself.
        Subclasses with non-idempotent ``×`` override this with the lattice
        meet (e.g. numeric ``max`` for the Weighted semiring).
        """
        if self.is_multiplicative_idempotent():
            return self.times(a, b)
        raise NotImplementedError(
            f"{self.name}: glb not defined for non-idempotent ×"
        )

    # ------------------------------------------------------------------
    # Folds
    # ------------------------------------------------------------------

    def sum(self, values: Iterable[A]) -> A:
        """Fold ``+`` over ``values``; empty iterable yields ``0``."""
        acc = self.zero
        for value in values:
            acc = self.plus(acc, value)
        return acc

    def prod(self, values: Iterable[A]) -> A:
        """Fold ``×`` over ``values``; empty iterable yields ``1``."""
        acc = self.one
        for value in values:
            acc = self.times(acc, value)
            if acc == self.zero:
                # 0 is absorbing for ×: short-circuit.
                return acc
        return acc

    # ------------------------------------------------------------------
    # Structural predicates (used by property validators and solvers)
    # ------------------------------------------------------------------

    def is_multiplicative_idempotent(self) -> bool:
        """Whether ``a × a = a`` for all ``a`` (true for Boolean/Fuzzy/Set).

        Idempotent ``×`` enables local-consistency propagation in the
        solver.  Default ``False``; subclasses opt in.
        """
        return False

    def is_total_order(self) -> bool:
        """Whether ``≤S`` is a total order (enables branch & bound)."""
        return False

    def supports_exact_retract(self) -> bool:
        """Whether ``(a × b) ÷ b = a`` holds *bitwise* on the exact-value
        subset described by :meth:`exact_retract_value`.

        When true, a factored store may implement ``retract`` of a told
        factor by simply dropping it from the factor set instead of
        materializing the residuated division — sound only if dropping
        and dividing agree bit-for-bit, which idempotent ``×`` (Fuzzy,
        Boolean, Set: ``a × a = a`` loses information) and rounding
        float products (Probabilistic) or saturating sums
        (BoundedWeighted) rule out.  Default ``False``; subclasses with
        a cancellative, exactly-representable ``×`` opt in.
        """
        return False

    def exact_retract_value(self, a: A) -> bool:
        """Whether ``a`` lies in the subset where retract-by-removal is
        bitwise exact (see :meth:`supports_exact_retract`)."""
        return False

    def sample_elements(self) -> tuple[A, ...]:
        """A small, fixed tuple of representative carrier elements.

        Used by :mod:`repro.semirings.properties` to check the semiring
        axioms exhaustively over a finite sample, and by property-based
        tests as a seed corpus.  Must include ``zero`` and ``one``.
        """
        return (self.zero, self.one)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def check_element(self, a: Any) -> A:
        """Validate and return ``a``; raise :class:`SemiringError` if it is
        not a carrier element."""
        if not self.is_element(a):
            raise SemiringError(f"{a!r} is not an element of {self.name}")
        return a

    def max_elements(self, values: Iterable[A]) -> list[A]:
        """Maximal elements of ``values`` under ``≤S`` (frontier).

        For totally ordered semirings this is a singleton equal to
        ``sum(values)``; for partial orders it is the Pareto frontier.
        """
        frontier: list[A] = []
        for value in values:
            if any(self.leq(value, kept) for kept in frontier):
                continue
            frontier = [kept for kept in frontier if not self.leq(kept, value)]
            frontier.append(value)
        return frontier

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class TotallyOrderedSemiring(Semiring[A]):
    """Mixin base for semirings whose derived order is total.

    Provides ``glb`` via order comparison and declares totality so the
    branch & bound solver can prune.
    """

    def is_total_order(self) -> bool:
        return True

    def glb(self, a: A, b: A) -> A:
        return a if self.leq(a, b) else b

    def min_value(self, values: Iterable[A]) -> Optional[A]:
        """The worst element of ``values`` (``None`` when empty)."""
        worst: Optional[A] = None
        for value in values:
            if worst is None or self.leq(value, worst):
                worst = value
        return worst


def pairs(elements: Iterable[A]) -> Iterable[tuple[A, A]]:
    """All ordered pairs drawn from ``elements`` (with repetition)."""
    elems = tuple(elements)
    return itertools.product(elems, repeat=2)


def triples(elements: Iterable[A]) -> Iterable[tuple[A, A, A]]:
    """All ordered triples drawn from ``elements`` (with repetition)."""
    elems = tuple(elements)
    return itertools.product(elems, repeat=3)
