"""Cartesian product of c-semirings — multi-criteria optimization.

"The cartesian product of multiple c-semirings is still a c-semiring and,
therefore, we can model also a multicriteria optimization" (paper Sec. 4).
A value is a tuple with one component per criterion (e.g. ``(cost,
reliability)`` over Weighted × Probabilistic); all operations act
componentwise and the derived order is the componentwise (Pareto) partial
order, so incomparable trade-offs are first-class citizens.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence, Tuple

from .base import Semiring, SemiringError

ProductValue = Tuple[Any, ...]


class ProductSemiring(Semiring[ProductValue]):
    """Componentwise product ``S₁ × … × Sₙ`` of absorptive semirings.

    Division is componentwise residuation, which is again the residuation
    of the product (the max of a componentwise-ordered set of tuples is
    the tuple of componentwise maxima).
    """

    name = "Product"

    def __init__(self, components: Sequence[Semiring]) -> None:
        if not components:
            raise SemiringError("ProductSemiring needs at least one component")
        self.components: tuple[Semiring, ...] = tuple(components)
        self.name = "Product[" + ", ".join(c.name for c in self.components) + "]"

    @property
    def arity(self) -> int:
        return len(self.components)

    @property
    def zero(self) -> ProductValue:
        return tuple(c.zero for c in self.components)

    @property
    def one(self) -> ProductValue:
        return tuple(c.one for c in self.components)

    def plus(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.plus(x, y) for c, x, y in zip(self.components, a, b)
        )

    def times(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.times(x, y) for c, x, y in zip(self.components, a, b)
        )

    def divide(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.divide(x, y) for c, x, y in zip(self.components, a, b)
        )

    def leq(self, a: ProductValue, b: ProductValue) -> bool:
        return all(
            c.leq(x, y) for c, x, y in zip(self.components, a, b)
        )

    def equiv(self, a: ProductValue, b: ProductValue) -> bool:
        return all(
            c.equiv(x, y) for c, x, y in zip(self.components, a, b)
        )

    def is_element(self, a: Any) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == self.arity
            and all(c.is_element(x) for c, x in zip(self.components, a))
        )

    def is_multiplicative_idempotent(self) -> bool:
        return all(c.is_multiplicative_idempotent() for c in self.components)

    def is_total_order(self) -> bool:
        # A product of nontrivial total orders is only total when there is
        # a single component; report conservatively.
        return self.arity == 1 and self.components[0].is_total_order()

    def sample_elements(self) -> tuple[ProductValue, ...]:
        per_component = [c.sample_elements()[:3] for c in self.components]
        return tuple(itertools.product(*per_component))

    def check_element(self, a: Any) -> ProductValue:
        if not isinstance(a, tuple) or len(a) != self.arity:
            raise SemiringError(
                f"{a!r} is not a {self.arity}-tuple for {self.name}"
            )
        return tuple(
            c.check_element(x) for c, x in zip(self.components, a)
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.components == other.components
        )

    def __hash__(self) -> int:
        return hash((type(self), self.components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(c) for c in self.components)
        return f"ProductSemiring([{inner}])"
