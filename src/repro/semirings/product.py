"""Composite c-semirings — multi-criteria and tie-broken optimization.

"The cartesian product of multiple c-semirings is still a c-semiring and,
therefore, we can model also a multicriteria optimization" (paper Sec. 4).
A value is a tuple with one component per criterion (e.g. ``(cost,
reliability)`` over Weighted × Probabilistic).  Two composition orders are
provided:

* :class:`ProductSemiring` — operations act componentwise and the derived
  order is the componentwise (Pareto) partial order, so incomparable
  trade-offs are first-class citizens;
* :class:`LexicographicSemiring` — same carrier and ``×``, but ``+``
  selects the lexicographically better tuple, yielding a *total* order
  over totally ordered components.  This is the aggregation the fairness
  literature uses for ⟨min per-client satisfaction, total welfare⟩
  objectives: maximize the worst-off client first, break ties by overall
  welfare.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence, Tuple

from .base import Semiring, SemiringError, TotallyOrderedSemiring

ProductValue = Tuple[Any, ...]


class ProductSemiring(Semiring[ProductValue]):
    """Componentwise product ``S₁ × … × Sₙ`` of absorptive semirings.

    Division is componentwise residuation, which is again the residuation
    of the product (the max of a componentwise-ordered set of tuples is
    the tuple of componentwise maxima).
    """

    name = "Product"

    def __init__(self, components: Sequence[Semiring]) -> None:
        if not components:
            raise SemiringError("ProductSemiring needs at least one component")
        self.components: tuple[Semiring, ...] = tuple(components)
        self.name = "Product[" + ", ".join(c.name for c in self.components) + "]"

    @property
    def arity(self) -> int:
        return len(self.components)

    @property
    def zero(self) -> ProductValue:
        return tuple(c.zero for c in self.components)

    @property
    def one(self) -> ProductValue:
        return tuple(c.one for c in self.components)

    def plus(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.plus(x, y) for c, x, y in zip(self.components, a, b)
        )

    def times(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.times(x, y) for c, x, y in zip(self.components, a, b)
        )

    def divide(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.divide(x, y) for c, x, y in zip(self.components, a, b)
        )

    def leq(self, a: ProductValue, b: ProductValue) -> bool:
        return all(
            c.leq(x, y) for c, x, y in zip(self.components, a, b)
        )

    def equiv(self, a: ProductValue, b: ProductValue) -> bool:
        return all(
            c.equiv(x, y) for c, x, y in zip(self.components, a, b)
        )

    def is_element(self, a: Any) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == self.arity
            and all(c.is_element(x) for c, x in zip(self.components, a))
        )

    def is_multiplicative_idempotent(self) -> bool:
        return all(c.is_multiplicative_idempotent() for c in self.components)

    def is_total_order(self) -> bool:
        # A product of nontrivial total orders is only total when there is
        # a single component; report conservatively.
        return self.arity == 1 and self.components[0].is_total_order()

    def sample_elements(self) -> tuple[ProductValue, ...]:
        per_component = [c.sample_elements()[:3] for c in self.components]
        return tuple(itertools.product(*per_component))

    def check_element(self, a: Any) -> ProductValue:
        if not isinstance(a, tuple) or len(a) != self.arity:
            raise SemiringError(
                f"{a!r} is not a {self.arity}-tuple for {self.name}"
            )
        return tuple(
            c.check_element(x) for c, x in zip(self.components, a)
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.components == other.components
        )

    def __hash__(self) -> int:
        return hash((type(self), self.components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(c) for c in self.components)
        return f"ProductSemiring([{inner}])"


class LexicographicSemiring(TotallyOrderedSemiring[ProductValue]):
    """Lexicographic composition ``S₁ ⋉ … ⋉ Sₙ`` of *totally ordered*
    c-semirings.

    The carrier and ``×`` are those of the Cartesian product, but ``+``
    selects the lexicographically better tuple: component 1 decides,
    component 2 breaks ties, and so on.  The derived order is total over
    totally ordered components, and ``×`` stays absorptive
    (``a × b ≤lex a``), which is exactly what branch & bound's pruning
    soundness needs — so ``solve(method="auto")`` handles Lex problems.
    Full distributivity and ``×``-monotonicity, however, hold only up to
    tie-collapse: multiplying can flatten a strict first-component order
    into a tie, promoting a later component to decider on one side of
    ``a × (b ⊕ c) = (a × b) ⊕ (a × c)`` but not the other (the pinned
    counterexample lives in ``tests/semirings/test_composite_laws.py``).
    On *comonotone* carriers — every component ranks the sampled tuples
    the same way — the law does hold, and the law suite validates it
    there.  (The fairness allocation in :mod:`repro.soa.allocation` is
    exact regardless: its joint problem is a single constraint, so no
    ``⊕``/``×`` interchange is ever needed.)

    Ties are decided by *exact* component equality (``==``), not the
    tolerant ``equiv`` — deliberately, so the pure-Python order agrees
    bit-for-bit with the vectorized lowering in
    :mod:`repro.solver.kernels`, which compares raw float64 planes.

    Residuated division is componentwise with a cutoff: as long as each
    prefix quotient multiplies back *exactly* to ``a``'s component the
    next component stays constrained; the first strictly-worse component
    frees every later one to its best value (``b × x ≤lex a`` then holds
    regardless of the suffix).
    """

    name = "Lex"

    def __init__(self, components: Sequence[Semiring]) -> None:
        if not components:
            raise SemiringError(
                "LexicographicSemiring needs at least one component"
            )
        for component in components:
            if not component.is_total_order():
                raise SemiringError(
                    "lexicographic composition needs totally ordered "
                    f"components; {component.name} is a partial order"
                )
        self.components: tuple[Semiring, ...] = tuple(components)
        self.name = "Lex[" + ", ".join(c.name for c in self.components) + "]"

    @property
    def arity(self) -> int:
        return len(self.components)

    @property
    def zero(self) -> ProductValue:
        return tuple(c.zero for c in self.components)

    @property
    def one(self) -> ProductValue:
        return tuple(c.one for c in self.components)

    def plus(self, a: ProductValue, b: ProductValue) -> ProductValue:
        for c, x, y in zip(self.components, a, b):
            if x == y:
                continue
            return a if c.gt(x, y) else b
        return a

    def times(self, a: ProductValue, b: ProductValue) -> ProductValue:
        return tuple(
            c.times(x, y) for c, x, y in zip(self.components, a, b)
        )

    def divide(self, a: ProductValue, b: ProductValue) -> ProductValue:
        quotient = []
        constrained = True
        for c, x, y in zip(self.components, a, b):
            if not constrained:
                quotient.append(c.one)
                continue
            q = c.divide(x, y)
            quotient.append(q)
            if not c.equiv(c.times(y, q), x):
                constrained = False
        return tuple(quotient)

    def leq(self, a: ProductValue, b: ProductValue) -> bool:
        for c, x, y in zip(self.components, a, b):
            if x == y:
                continue
            return c.lt(x, y)
        return True

    def equiv(self, a: ProductValue, b: ProductValue) -> bool:
        return all(
            c.equiv(x, y) for c, x, y in zip(self.components, a, b)
        )

    def is_element(self, a: Any) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == self.arity
            and all(c.is_element(x) for c, x in zip(self.components, a))
        )

    def is_multiplicative_idempotent(self) -> bool:
        return all(c.is_multiplicative_idempotent() for c in self.components)

    def sample_elements(self) -> tuple[ProductValue, ...]:
        per_component = [c.sample_elements()[:3] for c in self.components]
        return tuple(itertools.product(*per_component))

    def check_element(self, a: Any) -> ProductValue:
        if not isinstance(a, tuple) or len(a) != self.arity:
            raise SemiringError(
                f"{a!r} is not a {self.arity}-tuple for {self.name}"
            )
        return tuple(
            c.check_element(x) for c, x in zip(self.components, a)
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.components == other.components
        )

    def __hash__(self) -> int:
        return hash((type(self), self.components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(c) for c in self.components)
        return f"LexicographicSemiring([{inner}])"
