"""The Fuzzy semiring ``⟨[0, 1], max, min, 0, 1⟩``.

Models *concave* metrics (paper Sec. 4): the combination of several
preference levels flattens to the worst one, and optimization maximizes
that worst level.  The paper uses it for coarse reliability preferences
(low/medium/high) when detailed information is unavailable, for the
graphical SLA agreement of Fig. 5, and as the optimization criterion for
trustworthy coalitions (Sec. 6.1: "maximize the minimum trustworthiness of
all the obtained coalitions").
"""

from __future__ import annotations

import math
from typing import Any

from .base import SemiringError, TotallyOrderedSemiring


class FuzzySemiring(TotallyOrderedSemiring[float]):
    """Preference levels in ``[0, 1]``; bigger is better, ``min`` combines.

    Residuated division (Gödel implication)::

        a ÷ b = 1   if b ≤ a
                a   otherwise

    which is the largest ``x`` with ``min(b, x) ≤ a``.
    """

    name = "Fuzzy"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def plus(self, a: float, b: float) -> float:
        return a if a >= b else b

    def times(self, a: float, b: float) -> float:
        return a if a <= b else b

    def divide(self, a: float, b: float) -> float:
        return 1.0 if b <= a else a

    def is_element(self, a: Any) -> bool:
        return (
            isinstance(a, (int, float))
            and not isinstance(a, bool)
            and not math.isnan(a)
            and 0.0 <= a <= 1.0
        )

    def is_multiplicative_idempotent(self) -> bool:
        return True

    def sample_elements(self) -> tuple[float, ...]:
        return (0.0, 0.25, 0.5, 0.75, 1.0)

    def check_element(self, a: Any) -> float:
        if not self.is_element(a):
            raise SemiringError(f"{a!r} is not a fuzzy level in [0, 1]")
        return float(a)
