"""The Probabilistic semiring ``⟨[0, 1], max, ×, 0, 1⟩``.

Models *multiplicative* metrics (paper Sec. 4): the probability that a
composed service behaves successfully is the product of its components'
success probabilities, and the broker maximizes that product.  It is the
instance used for the quantitative integrity analysis of Sec. 5 (module
reliabilities ``c1 ⊗ c2 ⊗ c3``).
"""

from __future__ import annotations

import math
from typing import Any

from .base import SemiringError, TotallyOrderedSemiring

#: Tolerance used when comparing probabilities that went through division
#: and multiplication round trips.
_EPS = 1e-12


class ProbabilisticSemiring(TotallyOrderedSemiring[float]):
    """Success probabilities in ``[0, 1]``; ``max`` selects, ``×`` chains.

    Residuated division (Goguen implication)::

        a ÷ b = 1            if b ≤ a (in particular b = 0)
                min(1, a/b)  otherwise

    the largest ``x`` with ``b · x ≤ a``.
    """

    name = "Probabilistic"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def plus(self, a: float, b: float) -> float:
        return a if a >= b else b

    def times(self, a: float, b: float) -> float:
        return a * b

    def divide(self, a: float, b: float) -> float:
        if b <= a:
            return 1.0
        # b > a ≥ 0 here, so b > 0 and the quotient is well defined.
        return a / b

    def is_element(self, a: Any) -> bool:
        return (
            isinstance(a, (int, float))
            and not isinstance(a, bool)
            and not math.isnan(a)
            and 0.0 <= a <= 1.0
        )

    def equiv(self, a: float, b: float) -> bool:
        return abs(a - b) <= _EPS

    def sample_elements(self) -> tuple[float, ...]:
        return (0.0, 0.25, 0.5, 0.8, 1.0)

    def check_element(self, a: Any) -> float:
        if not self.is_element(a):
            raise SemiringError(f"{a!r} is not a probability in [0, 1]")
        return float(a)
