"""The Set-based semiring ``⟨P(U), ∪, ∩, ∅, U⟩`` over a finite universe U.

Models qualitative features of service components (paper Sec. 4): security
rights, capability sets, admissible time slots.  Combining components
intersects their feature sets; the derived order is set inclusion, which
is a genuine *partial* order — two services can be incomparable.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable

from .base import Semiring, SemiringError

SetValue = FrozenSet[Any]


class SetSemiring(Semiring[SetValue]):
    """Subsets of a finite universe; union selects, intersection combines.

    Residuated division::

        a ÷ b = a ∪ (U ∖ b)

    the largest ``x`` with ``b ∩ x ⊆ a`` (relative pseudo-complement of the
    powerset Heyting algebra).
    """

    name = "SetBased"

    def __init__(self, universe: Iterable[Any]) -> None:
        self.universe: SetValue = frozenset(universe)
        if not self.universe:
            raise SemiringError("SetSemiring needs a non-empty universe")

    @property
    def zero(self) -> SetValue:
        return frozenset()

    @property
    def one(self) -> SetValue:
        return self.universe

    def plus(self, a: SetValue, b: SetValue) -> SetValue:
        return a | b

    def times(self, a: SetValue, b: SetValue) -> SetValue:
        return a & b

    def divide(self, a: SetValue, b: SetValue) -> SetValue:
        return a | (self.universe - b)

    def leq(self, a: SetValue, b: SetValue) -> bool:
        return a <= b

    def is_element(self, a: Any) -> bool:
        return isinstance(a, frozenset) and a <= self.universe

    def is_multiplicative_idempotent(self) -> bool:
        return True

    def sample_elements(self) -> tuple[SetValue, ...]:
        items = sorted(self.universe, key=repr)
        samples = [frozenset(), self.universe]
        if items:
            samples.append(frozenset(items[:1]))
        if len(items) > 1:
            samples.append(frozenset(items[1:]))
            samples.append(frozenset(items[::2]))
        # Deduplicate while keeping order stable.
        unique: list[SetValue] = []
        for sample in samples:
            if sample not in unique:
                unique.append(sample)
        return tuple(unique)

    def check_element(self, a: Any) -> SetValue:
        if isinstance(a, (set, frozenset)) and frozenset(a) <= self.universe:
            return frozenset(a)
        raise SemiringError(f"{a!r} is not a subset of the universe")

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.universe == other.universe

    def __hash__(self) -> int:
        return hash((type(self), self.universe))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SetSemiring(universe={set(self.universe)!r})"
