"""The Weighted semiring ``⟨ℝ⁺ ∪ {∞}, min, +, ∞, 0⟩``.

Models *additive* metrics (paper Sec. 4): costs, downtime hours, money —
quantities that accumulate under composition and should be minimized.
The negotiation Examples 1–3 of the paper run over this instance (the
preference is the number of hours spent managing failures).

Note the *inverted* order: the semiring ``+`` is numeric ``min``, so
``a ≤S b`` (b better) iff ``b ≤ a`` numerically; ``0`` (semiring ``one``)
is the best value and ``∞`` (semiring ``zero``) the worst.
"""

from __future__ import annotations

import math
from typing import Any

from .base import SemiringError, TotallyOrderedSemiring

#: Positive infinity — the semiring ``0`` (total violation / no solution).
INFINITY = math.inf


class WeightedSemiring(TotallyOrderedSemiring[float]):
    """Non-negative costs combined by arithmetic sum, selected by ``min``.

    Residuated division is truncated subtraction::

        a ÷ b = a − b   if a > b     (numerically)
                0       otherwise

    the semiring-largest (numerically smallest) ``x`` with ``b + x ≥ a``.
    This is the operator that lets ``retract`` remove a previously told
    cost polynomial from an nmsccp store (paper Example 2).
    """

    name = "Weighted"

    def __init__(self, integral: bool = False) -> None:
        #: When ``True``, carrier is ℕ ∪ {∞} instead of ℝ⁺ ∪ {∞}.
        self.integral = integral

    @property
    def zero(self) -> float:
        return INFINITY

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return a if a <= b else b

    def times(self, a: float, b: float) -> float:
        return a + b

    def divide(self, a: float, b: float) -> float:
        if a <= b:
            # Covers a = b = ∞ as well: retracting everything leaves 0 cost.
            return 0.0
        if b == INFINITY:
            return 0.0
        return a - b

    def leq(self, a: float, b: float) -> bool:
        # a ≤S b iff min(a, b) = b iff b ≤ a numerically.
        return b <= a

    def equiv(self, a: float, b: float) -> bool:
        # Costs are floats; division/combination round trips may be off
        # by an ulp, which `equiv` (unlike `==`) is meant to absorb.
        if a == b:
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    def is_element(self, a: Any) -> bool:
        if isinstance(a, bool) or not isinstance(a, (int, float)):
            return False
        if math.isnan(a) or a < 0:
            return False
        if self.integral and a != INFINITY and a != int(a):
            return False
        return True

    def sample_elements(self) -> tuple[float, ...]:
        return (INFINITY, 7.0, 3.0, 1.0, 0.0)

    def supports_exact_retract(self) -> bool:
        # + over ℕ is cancellative and exact in binary64 up to 2⁵³, so
        # dropping a told integer-cost factor equals dividing it out,
        # bit for bit.  ∞ is excluded: divide(∞, ∞) = 0 ≠ ∞ − anything.
        return True

    def exact_retract_value(self, a: float) -> bool:
        return a != INFINITY and abs(a) <= 2.0**50 and float(a).is_integer()

    def check_element(self, a: Any) -> float:
        if not self.is_element(a):
            raise SemiringError(f"{a!r} is not a non-negative cost")
        return float(a)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.integral == other.integral

    def __hash__(self) -> int:
        return hash((type(self), self.integral))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedSemiring(integral={self.integral})"


class BoundedWeightedSemiring(TotallyOrderedSemiring[float]):
    """Weighted semiring truncated at a cap: ``⟨[0, k], min, +ₖ, k, 0⟩``.

    ``a +ₖ b = min(a + b, k)``.  Useful to model saturating penalties
    (e.g. "any downtime beyond *k* hours is equally unacceptable") and as
    a finite-carrier instance for exhaustive axiom checking.
    """

    name = "BoundedWeighted"

    def __init__(self, cap: float) -> None:
        if not (isinstance(cap, (int, float)) and cap > 0):
            raise SemiringError(f"cap must be a positive number, got {cap!r}")
        self.cap = float(cap)

    @property
    def zero(self) -> float:
        return self.cap

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return a if a <= b else b

    def times(self, a: float, b: float) -> float:
        total = a + b
        return total if total < self.cap else self.cap

    def divide(self, a: float, b: float) -> float:
        # max_S{x | min(b + x, cap) ≥ a}: when a ≤ b, x = 0; when a = cap,
        # any x with b + x ≥ cap works, smallest is cap − b; else a − b.
        if a <= b:
            return 0.0
        return a - b

    def leq(self, a: float, b: float) -> bool:
        return b <= a

    def equiv(self, a: float, b: float) -> bool:
        # Same float tolerance rationale as WeightedSemiring.equiv.
        if a == b:
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    def is_element(self, a: Any) -> bool:
        if isinstance(a, bool) or not isinstance(a, (int, float)):
            return False
        return not math.isnan(a) and 0.0 <= a <= self.cap

    def sample_elements(self) -> tuple[float, ...]:
        return (self.cap, self.cap / 2.0, 1.0 if self.cap >= 1 else self.cap / 3.0, 0.0)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.cap == other.cap

    def __hash__(self) -> int:
        return hash((type(self), self.cap))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedWeightedSemiring(cap={self.cap})"
