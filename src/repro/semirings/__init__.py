"""Semiring algebra (paper Sec. 2 and 4).

Every dependability/QoS cost model in the framework is an *absorptive
c-semiring*; this package ships the five instances the paper names
(Classical, Fuzzy, Probabilistic, Weighted, Set-based), the Cartesian
product for multi-criteria optimization, residuated division for all of
them, and executable validators for the semiring laws.
"""

from .base import (
    Semiring,
    SemiringError,
    TotallyOrderedSemiring,
)
from .boolean import BooleanSemiring
from .fuzzy import FuzzySemiring
from .probabilistic import ProbabilisticSemiring
from .product import LexicographicSemiring, ProductSemiring
from .setbased import SetSemiring
from .weighted import INFINITY, BoundedWeightedSemiring, WeightedSemiring
from .properties import (
    LawViolation,
    ValidationReport,
    check_division_laws,
    check_invertibility,
    check_lub_law,
    check_order_laws,
    check_plus_laws,
    check_times_laws,
    validate_semiring,
)
from .registry import (
    available_semirings,
    get_semiring,
    lexicographic_of,
    product_of,
    register_semiring,
)

__all__ = [
    "Semiring",
    "SemiringError",
    "TotallyOrderedSemiring",
    "BooleanSemiring",
    "FuzzySemiring",
    "ProbabilisticSemiring",
    "ProductSemiring",
    "LexicographicSemiring",
    "SetSemiring",
    "WeightedSemiring",
    "BoundedWeightedSemiring",
    "INFINITY",
    "LawViolation",
    "ValidationReport",
    "validate_semiring",
    "check_plus_laws",
    "check_times_laws",
    "check_order_laws",
    "check_lub_law",
    "check_division_laws",
    "check_invertibility",
    "available_semirings",
    "get_semiring",
    "lexicographic_of",
    "product_of",
    "register_semiring",
]
