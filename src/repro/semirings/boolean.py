"""The Classical (Boolean) semiring ``⟨{0, 1}, ∨, ∧, 0, 1⟩``.

Casts crisp constraints into the semiring framework (paper Sec. 4):
a constraint is either satisfied (``True``) or violated (``False``), and a
problem is consistent iff its ``blevel`` is ``True``.  It is the instance
used by the crisp integrity analysis of Sec. 5 (the photo-editing
``Memory``/``Imp1``/``Imp2`` example).
"""

from __future__ import annotations

from typing import Any

from .base import TotallyOrderedSemiring


class BooleanSemiring(TotallyOrderedSemiring[bool]):
    """Crisp truth values with disjunction as ``+`` and conjunction as ``×``.

    Division is Boolean residuation ``a ÷ b = b → a`` (implication), the
    largest ``x`` with ``b ∧ x ≤ a``.
    """

    name = "Classical"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def divide(self, a: bool, b: bool) -> bool:
        # max{x | b ∧ x ≤ a}: if b is False any x works (take True);
        # if b is True we need x ≤ a, whose maximum is a itself.
        return (not b) or a

    def is_element(self, a: Any) -> bool:
        return isinstance(a, bool)

    def is_multiplicative_idempotent(self) -> bool:
        return True

    def sample_elements(self) -> tuple[bool, ...]:
        return (False, True)
