"""The one bounded-LRU implementation shared by every memo in the tree.

Three independent LRU variants used to coexist (the telemetry cache, the
store's entailment memo wrapper, and the solve cache's lock-wrapped
copy); they are consolidated here behind a single class with a single
stats interface.  Every cache registers itself (weakly) under its name,
so :func:`cache_stats` reports the hit/miss/eviction counters of *all*
live caches in one call — the "single pane of glass" the runtime and the
bench harness read.

Hit/miss traffic also feeds the active metrics registry (counter family
``cache_hits_total``/``cache_misses_total{cache=<name>,tier=<tier>}``);
counter children are re-resolved only when the active registry changes,
so the per-access telemetry cost is one identity comparison.  The
``tier`` label is empty for standalone caches and names the level
(``l1``/``l2``) for caches stacked by :mod:`repro.fleet.cache`, so a
metrics snapshot separates per-shard from fleet-wide hit traffic.

Entries can optionally age out: pass ``ttl`` (seconds) and expired
entries read as misses (counted under ``expirations``).  Expiry reads
the injected ``clock`` — ``time.monotonic`` by default — and the clock
is consulted *only* when a TTL is configured, so the common (unbounded
lifetime) hot path never makes a syscall.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

_MISSING = object()

#: Default capacity for library caches.
DEFAULT_CACHE_SIZE = 4096

#: Weak registry of every live cache, keyed by insertion order; names may
#: repeat (e.g. per-broker solve caches), so stats are reported as a list
#: per name.
_ALL_CACHES: "weakref.WeakSet[LRUCache]" = weakref.WeakSet()


class _NullLock:
    """No-op lock for single-threaded caches (the common case)."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


class LRUCache:
    """Least-recently-used mapping with a hard capacity.

    Keys are kept with strong references, so identity-keyed callers
    (e.g. caching per-constraint-object results) never see an id reused
    by the garbage collector while the entry is alive.  Pass
    ``threadsafe=True`` to guard every operation with an ``RLock`` (the
    runtime's worker pool shares the solve cache across threads).
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        name: str = "cache",
        threadsafe: bool = False,
        telemetry: bool = True,
        tier: str = "",
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.maxsize = maxsize
        self.name = name
        self.threadsafe = threadsafe
        #: Cache-tier label for the hit/miss counter family; empty for
        #: standalone caches, ``l1``/``l2`` for fleet-stacked ones.
        self.tier = tier
        #: Entry lifetime in seconds; ``None`` (the default) keeps
        #: entries until LRU eviction.  ``clock`` is injectable for
        #: tests and is never consulted while ``ttl`` is ``None``.
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        #: ``telemetry=False`` skips the per-access metrics emission —
        #: for caches on paths hot enough that even the null-registry
        #: resolution shows up (the coalition engine's scorer does a few
        #: hundred lookups per candidate).  ``hits``/``misses`` and
        #: :func:`cache_stats` still work; callers surface totals
        #: through their own counters instead.
        self.telemetry = telemetry
        self._lock = threading.RLock() if threadsafe else _NullLock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self._bound: Tuple[Any, Any, Any] = (None, None, None)
        _ALL_CACHES.add(self)

    # -- telemetry ------------------------------------------------------

    def _counters(self) -> Tuple[Any, Any]:
        from .telemetry.runtime import get_registry

        registry, hit, miss = self._bound
        active = get_registry()
        if registry is not active:
            hit = active.counter(
                "cache_hits_total",
                "Cache lookups answered from the cache.",
                labelnames=("cache", "tier"),
            ).labels(self.name, self.tier)
            miss = active.counter(
                "cache_misses_total",
                "Cache lookups that had to be computed.",
                labelnames=("cache", "tier"),
            ).labels(self.name, self.tier)
            self._bound = (active, hit, miss)
        return hit, miss

    # -- mapping --------------------------------------------------------

    def _lookup(self, key: Hashable) -> Any:
        """Raw lookup under the caller-held lock: the live value, or
        ``_MISSING`` for absent *and* TTL-expired entries (expired ones
        are dropped on sight)."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return _MISSING
        if self.ttl is not None:
            expires_at, payload = value
            if self._clock() >= expires_at:
                del self._data[key]
                self.expirations += 1
                return _MISSING
            value = payload
        self._data.move_to_end(key)
        return value

    def get(self, key: Hashable, default: Any = None) -> Any:
        if not self.telemetry:
            with self._lock:
                value = self._lookup(key)
                if value is _MISSING:
                    self.misses += 1
                    return default
                self.hits += 1
            return value
        hit, miss = self._counters()
        with self._lock:
            value = self._lookup(key)
            if value is _MISSING:
                self.misses += 1
            else:
                self.hits += 1
        if value is _MISSING:
            miss.inc()
            return default
        hit.inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.ttl is not None:
            value = (self._clock() + self.ttl, value)
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            if self.ttl is None:
                return key in self._data
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                return False
            if self._clock() >= value[0]:
                del self._data[key]
                self.expirations += 1
                return False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting the LRU tail if shrinking."""
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        with self._lock:
            self.maxsize = maxsize
            while len(self._data) > maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            stats: Dict[str, int] = {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
        if self.tier:
            stats["tier"] = self.tier  # type: ignore[assignment]
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache({self.name!r}, {len(self._data)}/{self.maxsize}, "
            f"{self.hits} hit(s), {self.misses} miss(es))"
        )


#: Extra stat rows merged into :func:`cache_stats` by name — for memo-adjacent
#: counters that are not LRU caches (e.g. the solver's lowering-fallback
#: tally).  Each provider returns the same row-list shape ``stats()`` does.
_STATS_PROVIDERS: Dict[str, Callable[[], List[Dict[str, int]]]] = {}


def register_stats_provider(
    name: str, provider: Callable[[], List[Dict[str, int]]]
) -> None:
    """Publish non-LRU counter rows under ``name`` in :func:`cache_stats`."""
    _STATS_PROVIDERS[name] = provider


def cache_stats() -> Dict[str, List[Dict[str, int]]]:
    """Stats of every live cache, grouped by name — the single stats
    interface over the formerly-independent LRU implementations."""
    grouped: Dict[str, List[Dict[str, int]]] = {}
    for cache in list(_ALL_CACHES):
        grouped.setdefault(cache.name, []).append(cache.stats())
    for stats_list in grouped.values():
        stats_list.sort(
            key=lambda s: (-s.get("size", 0), -s.get("hits", 0))
        )
    for name, provider in _STATS_PROVIDERS.items():
        rows = provider()
        if rows:
            grouped[name] = rows
    return grouped
