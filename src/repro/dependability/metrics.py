"""Classical dependability arithmetic: the numbers behind the semirings.

Availability from MTBF/MTTR, mission reliability from failure rates,
series/parallel reliability block diagrams.  These closed forms serve two
purposes: they turn raw observations into the semiring levels the broker
negotiates over, and they cross-check the semiring composition — a series
block diagram must agree with the Probabilistic semiring's ``×`` (tested
in the suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class MetricError(Exception):
    """Raised on physically meaningless inputs (negative rates, …)."""


def availability_from_mtbf(mtbf_hours: float, mttr_hours: float) -> float:
    """Steady-state availability ``MTBF / (MTBF + MTTR)``."""
    if mtbf_hours <= 0 or mttr_hours < 0:
        raise MetricError("MTBF must be > 0 and MTTR ≥ 0")
    return mtbf_hours / (mtbf_hours + mttr_hours)


def downtime_hours_per_year(availability: float) -> float:
    """Expected yearly downtime implied by an availability level."""
    if not 0.0 <= availability <= 1.0:
        raise MetricError("availability must be a probability")
    return (1.0 - availability) * 365.0 * 24.0


def mission_reliability(
    failure_rate_per_hour: float, mission_hours: float
) -> float:
    """Exponential-model reliability ``e^{−λt}``."""
    if failure_rate_per_hour < 0 or mission_hours < 0:
        raise MetricError("rate and mission time must be non-negative")
    return math.exp(-failure_rate_per_hour * mission_hours)


def failure_rate_from_reliability(
    reliability: float, mission_hours: float
) -> float:
    """Invert ``e^{−λt}``: the constant failure rate behind an observed
    mission reliability."""
    if not 0.0 < reliability <= 1.0:
        raise MetricError("reliability must be in (0, 1]")
    if mission_hours <= 0:
        raise MetricError("mission time must be positive")
    return -math.log(reliability) / mission_hours


def series_reliability(reliabilities: Iterable[float]) -> float:
    """Series block diagram: all components must work — ``∏ rᵢ``.

    Coincides with the Probabilistic semiring ``×`` folded over the
    components (the cross-check for the paper's pipeline analysis).
    """
    result = 1.0
    for value in reliabilities:
        _check_probability(value)
        result *= value
    return result


def parallel_reliability(reliabilities: Iterable[float]) -> float:
    """Parallel (redundant) block diagram: ``1 − ∏ (1 − rᵢ)``."""
    complement = 1.0
    for value in reliabilities:
        _check_probability(value)
        complement *= 1.0 - value
    return 1.0 - complement


def k_out_of_n_reliability(r: float, k: int, n: int) -> float:
    """k-out-of-n identical components: ``Σ_{i=k}^{n} C(n,i) rⁱ(1−r)^{n−i}``."""
    _check_probability(r)
    if not 0 < k <= n:
        raise MetricError("need 0 < k ≤ n")
    return sum(
        math.comb(n, i) * r**i * (1.0 - r) ** (n - i)
        for i in range(k, n + 1)
    )


@dataclass(frozen=True)
class ObservationWindow:
    """Raw dependability observations over a monitoring window.

    **No-data convention.**  With zero observations the two estimators
    in this module deliberately answer in opposite directions:

    * :attr:`reliability` / :attr:`availability` return the
      **optimistic** prior ``1.0`` — a monitor must not alarm before it
      has evidence of failure;
    * :func:`wilson_lower_bound` returns the **conservative** prior
      ``0.0`` — a prudent advertisement must not claim what no evidence
      supports.

    Never mix the two priors in one formula: a consumer that needs
    evidence-backed numbers should check :meth:`informative` (or an
    explicit ``min_attempts`` guard, as
    :func:`repro.slo.effective_level` does) before reading either.
    """

    attempts: int
    failures: int
    total_repair_hours: float = 0.0
    total_uptime_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts < 0 or self.failures < 0:
            raise MetricError("counts must be non-negative")
        if self.failures > self.attempts:
            raise MetricError("failures cannot exceed attempts")

    @property
    def reliability(self) -> float:
        """Empirical per-invocation success probability."""
        if self.attempts == 0:
            return 1.0
        return 1.0 - self.failures / self.attempts

    @property
    def availability(self) -> float:
        """Uptime fraction (optimistic 1.0 when nothing was measured —
        see the class docstring's no-data convention)."""
        total = self.total_uptime_hours + self.total_repair_hours
        if total == 0:
            return 1.0
        return self.total_uptime_hours / total

    @property
    def successes(self) -> int:
        return self.attempts - self.failures

    def informative(self, min_attempts: int = 1) -> bool:
        """Whether this window holds enough evidence to consume
        (``attempts ≥ min_attempts``)."""
        if min_attempts < 1:
            raise MetricError("min_attempts must be at least 1")
        return self.attempts >= min_attempts

    def wilson_reliability(self, z: float = 1.96) -> float:
        """Conservative (Wilson lower bound) reading of this window —
        0.0 when empty, per the no-data convention."""
        return wilson_lower_bound(self.successes, self.attempts, z)

    def merged(self, other: "ObservationWindow") -> "ObservationWindow":
        """Pool two windows' evidence."""
        return ObservationWindow(
            attempts=self.attempts + other.attempts,
            failures=self.failures + other.failures,
            total_repair_hours=(
                self.total_repair_hours + other.total_repair_hours
            ),
            total_uptime_hours=(
                self.total_uptime_hours + other.total_uptime_hours
            ),
        )


def wilson_lower_bound(
    successes: int, attempts: int, z: float = 1.96
) -> float:
    """Conservative reliability estimate: Wilson score lower bound.

    The level a *prudent* broker should advertise from finite
    observations rather than the raw ratio.  At zero attempts this
    returns the conservative prior **0.0** — the opposite of
    :attr:`ObservationWindow.reliability`'s optimistic 1.0; see that
    class's no-data convention before mixing the two.
    """
    if attempts < 0 or successes < 0 or successes > attempts:
        raise MetricError("need 0 ≤ successes ≤ attempts")
    if attempts == 0:
        return 0.0
    phat = successes / attempts
    denominator = 1.0 + z * z / attempts
    centre = phat + z * z / (2 * attempts)
    margin = z * math.sqrt(
        (phat * (1.0 - phat) + z * z / (4 * attempts)) / attempts
    )
    return max(0.0, (centre - margin) / denominator)


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise MetricError(f"{value!r} is not a probability")


def compose_series_parallel(
    series_groups: Sequence[Sequence[float]],
) -> float:
    """Series of parallel groups: each inner list is a redundant group,
    groups are chained — the common shape of a dependable pipeline with
    per-stage replicas."""
    return series_reliability(
        parallel_reliability(group) for group in series_groups
    )
