"""The dependability attribute taxonomy (paper Sec. 3, after Avizienis
et al., IEEE TDSC 2004).

"Dependability is the ability to deliver a service that can justifiably
be trusted."  The agreed attribute list: availability, reliability,
safety, confidentiality, integrity, maintainability — some objective and
quantifiable, others subjective.  Security is the composite of
confidentiality, integrity and availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..semirings.base import Semiring
from ..semirings.registry import get_semiring


@dataclass(frozen=True)
class DependabilityAttribute:
    """One attribute of the taxonomy with its measurement character."""

    name: str
    definition: str
    quantifiable: bool
    default_semiring: Optional[str] = None

    def semiring(self, **kwargs) -> Semiring:
        """The natural cost model for this attribute (paper Sec. 4)."""
        if self.default_semiring is None:
            raise ValueError(
                f"{self.name} is subjective; pick a semiring explicitly "
                "(e.g. fuzzy for coarse low/medium/high judgements)"
            )
        return get_semiring(self.default_semiring, **kwargs)


AVAILABILITY = DependabilityAttribute(
    "availability",
    "the probability that a service is present and ready for use",
    quantifiable=True,
    default_semiring="probabilistic",
)
RELIABILITY = DependabilityAttribute(
    "reliability",
    "the capability of maintaining the service and service quality",
    quantifiable=True,
    default_semiring="probabilistic",
)
SAFETY = DependabilityAttribute(
    "safety",
    "the absence of catastrophic consequences",
    quantifiable=False,
    default_semiring="fuzzy",
)
CONFIDENTIALITY = DependabilityAttribute(
    "confidentiality",
    "information is accessible only to those authorized to use it",
    quantifiable=False,
    default_semiring="set",
)
INTEGRITY = DependabilityAttribute(
    "integrity",
    "the absence of improper system alterations",
    quantifiable=True,
    default_semiring="classical",
)
MAINTAINABILITY = DependabilityAttribute(
    "maintainability",
    "the ability to undergo modifications and repairs",
    quantifiable=True,
    default_semiring="weighted",
)

TAXONOMY: Dict[str, DependabilityAttribute] = {
    attribute.name: attribute
    for attribute in (
        AVAILABILITY,
        RELIABILITY,
        SAFETY,
        CONFIDENTIALITY,
        INTEGRITY,
        MAINTAINABILITY,
    )
}

#: "Security is a composite of the attributes of confidentiality,
#: integrity and availability" (paper Sec. 3).
SECURITY_COMPOSITE: FrozenSet[str] = frozenset(
    {"confidentiality", "integrity", "availability"}
)


def attribute(name: str) -> DependabilityAttribute:
    """Look up a taxonomy attribute by name."""
    try:
        return TAXONOMY[name]
    except KeyError:
        known = ", ".join(sorted(TAXONOMY))
        raise KeyError(
            f"unknown dependability attribute {name!r}; known: {known}"
        ) from None


def is_security_attribute(name: str) -> bool:
    return name in SECURITY_COMPOSITE
