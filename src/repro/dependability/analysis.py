"""Quantitative dependability analysis (paper Sec. 5, second half).

Moving from the Classical to the Probabilistic semiring turns the crisp
refinement check into a quantitative one: module policies become
reliability functions, their combination ``Imp3 = c1 ⊗ c2 ⊗ c3`` is the
system reliability, and ``MemoryProb ⊑ Imp3`` certifies that the client's
minimum-reliability requirement is entailed.  ``blevel`` then picks the
*best* (most reliable) implementation among candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..constraints.constraint import FunctionConstraint, SoftConstraint
from ..constraints.operations import constraint_leq
from ..constraints.variables import Variable
from ..semirings.probabilistic import ProbabilisticSemiring

_PROB = ProbabilisticSemiring()


def compression_reliability(
    input_var: Variable,
    output_var: Variable,
    reliable_below_kb: float = 1024.0,
    broken_above_kb: float = 4096.0,
    efficiency_scale: float = 100.0,
    name: str = "compression-reliability",
) -> FunctionConstraint:
    """The paper's soft constraint ``c1(outcomp, bwbyte)``::

        1                                 if outcomp ≤ 1024 Kb
        0                                 if outcomp > 4096 Kb
        1 − outcomp / (100 · bwbyte)      otherwise

    "the compression does not work if the input image is more than 4Mb,
    while it is completely reliable if less than 1Mb; otherwise more
    compression means more risk".  With the paper's numbers,
    ``c1(4096, 1024) = 0.96``.
    """

    def level(input_kb: float, output_kb: float) -> float:
        if input_kb <= reliable_below_kb:
            return 1.0
        if input_kb > broken_above_kb:
            return 0.0
        value = 1.0 - input_kb / (efficiency_scale * output_kb)
        return min(1.0, max(0.0, value))

    return FunctionConstraint(
        _PROB, (input_var, output_var), level, name=name
    )


def system_reliability(
    module_constraints: Sequence[SoftConstraint],
) -> SoftConstraint:
    """``Imp = c1 ⊗ … ⊗ cn`` — the global reliability of the composition."""
    if not module_constraints:
        raise ValueError("system_reliability() needs at least one module")
    result = module_constraints[0]
    for constraint in module_constraints[1:]:
        result = result.combine(constraint)
    return result


def meets_requirement(
    requirement: SoftConstraint, implementation: SoftConstraint
) -> bool:
    """``MemoryProb ⊑ Imp3`` — every behaviour is at least as reliable as
    the client demands (paper Sec. 5)."""
    return constraint_leq(requirement, implementation)


@dataclass
class ImplementationRanking:
    """Candidates ordered by best level of consistency (best first)."""

    ranked: List[Tuple[str, Any]]

    @property
    def best(self) -> Tuple[str, Any]:
        return self.ranked[0]

    def level_of(self, name: str) -> Any:
        for candidate, level in self.ranked:
            if candidate == name:
                return level
        raise KeyError(name)


def best_implementation(
    candidates: Dict[str, SoftConstraint],
    requirement: Optional[SoftConstraint] = None,
) -> ImplementationRanking:
    """Rank candidate implementations by blevel, optionally filtering by a
    requirement ("by exploiting the notion of best level of consistency,
    we can find the most reliable implementation among those possible").

    Candidates failing ``requirement ⊑ candidate`` are excluded; ties
    break on the candidate name for determinism.
    """
    if not candidates:
        raise ValueError("best_implementation() needs candidates")
    scored: List[Tuple[str, Any]] = []
    for name, implementation in candidates.items():
        if requirement is not None and not meets_requirement(
            requirement, implementation
        ):
            continue
        scored.append((name, implementation.consistency()))
    if not scored:
        raise ValueError(
            "no candidate implementation meets the requirement"
        )
    semiring = next(iter(candidates.values())).semiring

    def sort_key(item: Tuple[str, Any]):
        return item[0]

    # Stable selection sort by the (possibly partial) semiring order:
    # repeatedly pull out a maximal element.
    remaining = sorted(scored, key=sort_key)
    ranked: List[Tuple[str, Any]] = []
    while remaining:
        best = remaining[0]
        for item in remaining[1:]:
            if semiring.gt(item[1], best[1]):
                best = item
        remaining.remove(best)
        ranked.append(best)
    return ImplementationRanking(ranked)
