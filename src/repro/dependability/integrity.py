"""Integrity as refinement (paper Sec. 5, Defs. 1–2, after Bistarelli &
Foley, SAFECOMP 2003).

An implementation ``S`` (the combination of the per-module policies)
upholds a high-level requirement ``R`` when every behaviour ``S`` allows
is allowed by ``R`` *at the interface*:

* Def. 1 (local refinement):  ``S ⇓V ⊑ R ⇓V``;
* Def. 2 (dependably safe):   same check at the interface ``E``, with
  ``S`` additionally modelling the (un)reliability of the infrastructure
  — e.g. a module that may misbehave is replaced by the ``true``
  constraint, after which the refinement may no longer hold (the paper's
  ``Imp2 ⋢ Memory``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..constraints.constraint import (
    ConstantConstraint,
    SoftConstraint,
)
from ..constraints.operations import combine
from ..constraints.store import ConstraintStore
from ..constraints.variables import Variable, iter_assignments, merge_scopes
from ..semirings.base import Semiring

#: A refinement check accepts either a bare constraint or a whole store —
#: a broker session *is* an implementation, and routing the projection
#: through :meth:`ConstraintStore.project` lets the factored backend use
#: its solver-backed (and cached) elimination instead of materializing
#: the full combination first.
Implementation = Union[SoftConstraint, ConstraintStore]


def _interface_view(
    subject: Implementation, names: Sequence[str]
) -> SoftConstraint:
    """``subject ⇓ names`` as an honest constraint, store- or
    constraint-shaped input alike."""
    return subject.project(names)


@dataclass
class RefinementReport:
    """Outcome of a refinement check, with counterexamples when it fails.

    ``witnesses`` lists up to ``max_witnesses`` interface assignments
    where the implementation exceeds what the requirement allows
    (``S⇓V η >S R⇓V η`` is impossible — the violation is ``¬(≤S)``,
    which in partial orders includes incomparability).
    """

    holds: bool
    interface: tuple
    witnesses: List[Dict[str, Any]] = field(default_factory=list)
    checked_assignments: int = 0

    def __bool__(self) -> bool:
        return self.holds


def locally_refines(
    implementation: Implementation,
    requirement: Implementation,
    interface: Iterable[str | Variable],
    max_witnesses: int = 5,
) -> RefinementReport:
    """Def. 1: ``S ⇓V ⊑ R ⇓V`` through the interface ``V``.

    Either side may be a :class:`ConstraintStore` (the running broker
    session) instead of a bare constraint.  Returns a report rather than
    a bare bool so failed checks carry the interface assignments that
    break the requirement.
    """
    names = tuple(
        item.name if isinstance(item, Variable) else item for item in interface
    )
    semiring = implementation.semiring
    s_view = _interface_view(implementation, names)
    r_view = _interface_view(requirement, names)
    scope = merge_scopes(s_view.scope, r_view.scope)

    report = RefinementReport(holds=True, interface=names)
    for assignment in iter_assignments(scope):
        report.checked_assignments += 1
        if not semiring.leq(s_view.value(assignment), r_view.value(assignment)):
            report.holds = False
            if len(report.witnesses) < max_witnesses:
                report.witnesses.append(dict(assignment))
    return report


def dependably_safe(
    implementation: Implementation,
    requirement: Implementation,
    interface: Iterable[str | Variable],
    max_witnesses: int = 5,
) -> RefinementReport:
    """Def. 2: dependably-safe check at interface ``E``.

    Identical machinery to Def. 1 — the difference is in *what you pass*:
    ``implementation`` must already include the reliability model of the
    infrastructure (see :func:`assume_unreliable`).
    """
    return locally_refines(
        implementation, requirement, interface, max_witnesses
    )


def assume_unreliable(
    module_policy: SoftConstraint,
) -> SoftConstraint:
    """Replace a module's policy by ``true`` / ``1̄`` — "REDF could take on
    any behavior" (paper Sec. 5).

    The result has empty support: the module no longer constrains
    anything, exactly like the paper's
    ``RedFilter ≡ (redbyte ≤ bwbyte ∨ redbyte > bwbyte) = true``.
    """
    semiring = module_policy.semiring
    return ConstantConstraint(semiring, semiring.one)


def integrate(
    policies: Sequence[SoftConstraint],
    semiring: Optional[Semiring] = None,
) -> SoftConstraint:
    """``Imp ≡ policy₁ ⊗ … ⊗ policyₙ`` — the federated implementation."""
    if not policies and semiring is None:
        raise ValueError("integrate() of nothing needs a semiring")
    return combine(
        policies, semiring=semiring or policies[0].semiring
    )


def interface_of(
    implementation: SoftConstraint, internal: Iterable[str | Variable]
) -> SoftConstraint:
    """The service's external interface: project the internal variables
    *out* (paper Sec. 5: "projecting over some variables leads to the
    interface of the service, that is what is visible to the other
    software components")."""
    internal_names = {
        item.name if isinstance(item, Variable) else item for item in internal
    }
    keep = [
        var.name
        for var in implementation.scope
        if var.name not in internal_names
    ]
    return implementation.project(keep)
