"""Dependability layer (paper Sec. 3 & 5).

The Avizienis attribute taxonomy, integrity-as-refinement checks
(Defs. 1–2), quantitative reliability analysis over the Probabilistic
semiring, and classical dependability arithmetic (MTBF, block diagrams)
cross-checking the semiring composition.
"""

from .analysis import (
    ImplementationRanking,
    best_implementation,
    compression_reliability,
    meets_requirement,
    system_reliability,
)
from .attributes import (
    AVAILABILITY,
    CONFIDENTIALITY,
    INTEGRITY,
    MAINTAINABILITY,
    RELIABILITY,
    SAFETY,
    SECURITY_COMPOSITE,
    TAXONOMY,
    DependabilityAttribute,
    attribute,
    is_security_attribute,
)
from .integrity import (
    RefinementReport,
    assume_unreliable,
    dependably_safe,
    integrate,
    interface_of,
    locally_refines,
)
from .metrics import (
    MetricError,
    ObservationWindow,
    availability_from_mtbf,
    compose_series_parallel,
    downtime_hours_per_year,
    failure_rate_from_reliability,
    k_out_of_n_reliability,
    mission_reliability,
    parallel_reliability,
    series_reliability,
    wilson_lower_bound,
)

__all__ = [
    "DependabilityAttribute",
    "TAXONOMY",
    "SECURITY_COMPOSITE",
    "attribute",
    "is_security_attribute",
    "AVAILABILITY",
    "RELIABILITY",
    "SAFETY",
    "CONFIDENTIALITY",
    "INTEGRITY",
    "MAINTAINABILITY",
    "RefinementReport",
    "locally_refines",
    "dependably_safe",
    "assume_unreliable",
    "integrate",
    "interface_of",
    "compression_reliability",
    "system_reliability",
    "meets_requirement",
    "best_implementation",
    "ImplementationRanking",
    "availability_from_mtbf",
    "downtime_hours_per_year",
    "mission_reliability",
    "failure_rate_from_reliability",
    "series_reliability",
    "parallel_reliability",
    "k_out_of_n_reliability",
    "compose_series_parallel",
    "wilson_lower_bound",
    "ObservationWindow",
    "MetricError",
]
