"""Time-dependent concession tactics for SLA negotiation.

The paper's Examples 1–2 show a provider *relaxing* its policy when
agreement fails; this module supplies the standard tactics deciding
*when* and *how much* to relax (time-dependent functions in the style of
Faratin, Sierra & Jennings, 1998):

* each party owns a **policy ladder** — an ordered list of soft
  constraints from its strictest to its laxest acceptable policy (each
  rung entailed by the previous one: relaxing is a `retract`-like move);
* a tactic maps normalized time ``t/T`` to a rung: **Boulware** (β < 1)
  concedes late, **Conceder** (β > 1) early, β = 1 linearly;
* :func:`alternating_offers` runs the classic protocol on a shared
  store: at each round both parties put their current rungs on the
  table, the broker combines them and checks both acceptance intervals;
  first mutually acceptable round wins, the deadline kills the rest.

Everything is expressed through the store algebra, so an agreement comes
back as an honest constraint (the SLA body) plus its consistency level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..constraints.constraint import SoftConstraint
from ..constraints.operations import combine, constraint_leq
from ..constraints.store import empty_store
from ..sccp.check import CheckSpec
from ..semirings.base import Semiring


class StrategyError(Exception):
    """Raised on malformed ladders or tactic parameters."""


def concession_index(
    step: int, deadline: int, rungs: int, beta: float
) -> int:
    """Which ladder rung to offer at ``step`` of ``deadline``.

    ``index = floor(((step/deadline) ** (1/β)) · (rungs − 1))`` — the
    standard time-dependent decision function: β < 1 keeps the strict
    rungs long (Boulware), β > 1 jumps to lax rungs quickly (Conceder).
    """
    if deadline <= 0:
        raise StrategyError("deadline must be positive")
    if rungs <= 0:
        raise StrategyError("a ladder needs at least one rung")
    if beta <= 0:
        raise StrategyError("beta must be positive")
    t = min(max(step, 0), deadline) / deadline
    fraction = t ** (1.0 / beta)
    return min(rungs - 1, int(fraction * (rungs - 1) + 1e-12))


@dataclass
class Tactic:
    """A policy ladder plus its concession temperament."""

    name: str
    ladder: Sequence[SoftConstraint]
    beta: float = 1.0
    acceptance: Optional[CheckSpec] = None

    def __post_init__(self) -> None:
        if not self.ladder:
            raise StrategyError(f"{self.name}: empty policy ladder")
        if self.beta <= 0:
            raise StrategyError(f"{self.name}: beta must be positive")

    def offer_at(self, step: int, deadline: int) -> SoftConstraint:
        index = concession_index(step, deadline, len(self.ladder), self.beta)
        return self.ladder[index]

    def validate_ladder_monotone(self) -> bool:
        """Whether each rung genuinely relaxes the previous one
        (``rung_{i} ⊑ rung_{i+1}``: later offers are weaker constraints).
        """
        return all(
            constraint_leq(stricter, laxer)
            for stricter, laxer in zip(self.ladder, self.ladder[1:])
        )


def boulware(
    name: str,
    ladder: Sequence[SoftConstraint],
    acceptance: Optional[CheckSpec] = None,
    beta: float = 0.3,
) -> Tactic:
    """Concede late (hold the strict policy almost to the deadline)."""
    if beta >= 1:
        raise StrategyError("Boulware needs beta < 1")
    return Tactic(name, ladder, beta=beta, acceptance=acceptance)


def conceder(
    name: str,
    ladder: Sequence[SoftConstraint],
    acceptance: Optional[CheckSpec] = None,
    beta: float = 3.0,
) -> Tactic:
    """Concede early (drop to lax policies quickly)."""
    if beta <= 1:
        raise StrategyError("Conceder needs beta > 1")
    return Tactic(name, ladder, beta=beta, acceptance=acceptance)


@dataclass
class NegotiationRound:
    """What was on the table at one round."""

    step: int
    offers: List[int]  # rung index per party
    consistency: Any
    accepted: bool


@dataclass
class ProtocolOutcome:
    """Result of an alternating-offers run."""

    agreed: bool
    at_step: Optional[int]
    agreement: Optional[SoftConstraint]
    agreed_level: Any
    rounds: List[NegotiationRound] = field(default_factory=list)

    def concession_curve(self) -> List[Any]:
        """The consistency trail over rounds (the plot a dashboard shows)."""
        return [r.consistency for r in self.rounds]


def alternating_offers(
    semiring: Semiring,
    parties: Sequence[Tactic],
    deadline: int,
    store_backend: Optional[str] = None,
) -> ProtocolOutcome:
    """Run the rounds until every acceptance interval holds, or time out.

    At round ``t`` each party offers its tactic's rung; the round's store
    (one told factor per offer) must satisfy *every* party's acceptance
    check (a missing check accepts anything consistent).
    """
    if not parties:
        raise StrategyError("alternating_offers needs parties")
    outcome = ProtocolOutcome(
        agreed=False, at_step=None, agreement=None, agreed_level=semiring.zero
    )
    for step in range(deadline + 1):
        offers = [
            party.offer_at(step, deadline) for party in parties
        ]
        indices = [
            concession_index(step, deadline, len(p.ladder), p.beta)
            for p in parties
        ]
        merged = combine(list(offers), semiring=semiring)
        store = empty_store(semiring, backend=store_backend)
        for offer in offers:
            store = store.tell(offer)
        consistency = store.consistency()
        acceptable = all(
            party.acceptance is None or party.acceptance.holds(store)
            for party in parties
        ) and semiring.gt(consistency, semiring.zero)
        outcome.rounds.append(
            NegotiationRound(step, indices, consistency, acceptable)
        )
        if acceptable:
            outcome.agreed = True
            outcome.at_step = step
            outcome.agreement = merged
            outcome.agreed_level = consistency
            return outcome
    return outcome
