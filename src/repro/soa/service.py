"""Services, providers and service descriptions (paper Sec. 3).

"Basic services, their descriptions, and basic operations (publication,
discovery, selection, and binding) that produce or utilize such
descriptions constitute the SOA foundation."  A
:class:`ServiceDescription` is what gets published to the registry; a
:class:`Service` is the runtime object the execution engine invokes,
with a seeded stochastic behaviour so observed dependability can be
compared against the advertised one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .capabilities import CapabilityPolicy
from .qos import QoSDocument


class ServiceError(Exception):
    """Raised on malformed service definitions or invocation misuse."""


@dataclass(frozen=True)
class ServiceInterface:
    """Functional face of a service: operation name, inputs, outputs and
    pre/postconditions (informal strings — the paper's 'data formats,
    pre and post conditions')."""

    operation: str
    inputs: tuple = ()
    outputs: tuple = ()
    preconditions: tuple = ()
    postconditions: tuple = ()


@dataclass
class ServiceDescription:
    """What a provider publishes: interface + QoS document + metadata.

    ``capabilities`` (optional) is the provider's MUST/MAY security
    policy; the query engine refuses candidates whose policy is
    incompatible with the client's (paper Sec. 8's HTTP-auth example).
    """

    service_id: str
    name: str
    provider: str
    interface: ServiceInterface
    qos: QoSDocument
    tags: tuple = ()
    capabilities: Optional[CapabilityPolicy] = None

    def __post_init__(self) -> None:
        if not self.service_id:
            raise ServiceError("service_id must be non-empty")
        if self.qos.provider != self.provider:
            raise ServiceError(
                f"QoS document provider {self.qos.provider!r} does not match "
                f"service provider {self.provider!r}"
            )


@dataclass
class InvocationOutcome:
    """Result of one simulated invocation.

    ``charges`` records the additive metrics this invocation actually
    incurred (``{"cost": …, "downtime": …}``), as billed from the
    service's advertised QoS at invocation time.  Monitors derive
    per-run cost from these — never from latency.  An outcome for a
    service that was never reached (e.g. a fault-injector crash fired
    before the call) carries no charges.
    """

    service_id: str
    success: bool
    latency_ms: float
    output: Any = None
    fault: Optional[str] = None
    charges: Dict[str, float] = field(default_factory=dict)


class Service:
    """A runtime service with stochastic, seeded behaviour.

    ``reliability`` is the per-invocation success probability;
    ``base_latency_ms``/``latency_jitter_ms`` shape the response-time
    distribution; ``behaviour`` optionally computes a real output from
    the request payload (defaults to echoing it).
    """

    def __init__(
        self,
        description: ServiceDescription,
        reliability: float = 1.0,
        base_latency_ms: float = 10.0,
        latency_jitter_ms: float = 2.0,
        behaviour: Optional[Callable[[Any], Any]] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= reliability <= 1.0:
            raise ServiceError("reliability must be a probability")
        self.description = description
        self.reliability = reliability
        self.base_latency_ms = base_latency_ms
        self.latency_jitter_ms = latency_jitter_ms
        self.behaviour = behaviour if behaviour is not None else (lambda x: x)
        self._rng = random.Random(seed)
        self.invocations = 0
        self.failures = 0

    @property
    def service_id(self) -> str:
        return self.description.service_id

    def invoke(self, payload: Any = None) -> InvocationOutcome:
        """One invocation: may fail with probability ``1 − reliability``."""
        self.invocations += 1
        latency = max(
            0.0,
            self.base_latency_ms
            + self._rng.uniform(-self.latency_jitter_ms, self.latency_jitter_ms),
        )
        if self._rng.random() > self.reliability:
            self.failures += 1
            return InvocationOutcome(
                self.service_id,
                success=False,
                latency_ms=latency,
                fault="service-fault",
            )
        return InvocationOutcome(
            self.service_id,
            success=True,
            latency_ms=latency,
            output=self.behaviour(payload),
        )

    @property
    def observed_reliability(self) -> float:
        """Empirical success ratio so far (1.0 before any invocation)."""
        if self.invocations == 0:
            return 1.0
        return 1.0 - self.failures / self.invocations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Service({self.service_id!r}, reliability={self.reliability}, "
            f"invocations={self.invocations})"
        )


class ServicePool:
    """Runtime lookup from service id to live :class:`Service` objects."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}

    def add(self, service: Service) -> None:
        if service.service_id in self._services:
            raise ServiceError(
                f"service id {service.service_id!r} already in pool"
            )
        self._services[service.service_id] = service

    def get(self, service_id: str) -> Service:
        try:
            return self._services[service_id]
        except KeyError:
            raise ServiceError(f"no service {service_id!r} in pool") from None

    def all(self) -> List[Service]:
        return list(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._services
