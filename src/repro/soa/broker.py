"""The QoS/dependability broker-orchestrator (paper Sec. 4, Fig. 6).

The broker sits between clients and providers, hosts the soft-constraint
solver, and carries out the five computation steps of the paper:

1. the client requests a binding, stating the required QoS;
2. the broker searches the UDDI registry for providers;
3. the broker performs QoS negotiation (nmsccp agents on its store);
4. offered vs required QoS are compared to determine an agreed QoS;
5. on success, an SLA binding is created and both parties informed.

Selection solves one SCSP per candidate (client requirement ⊗ provider
offer) and keeps the semiring-best; composition introduces one selection
variable per pipeline slot and solves for the best provider tuple under
the per-attribute aggregation rules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..constraints.constraint import FunctionConstraint, SoftConstraint
from ..telemetry import get_events, get_registry, get_tracer
from ..constraints.operations import combine
from ..constraints.store import empty_store
from ..constraints.variables import Variable
from ..semirings.base import Semiring
from ..sccp.check import CheckSpec
from ..solver import SCSP, SolveCache, solve
from .composition import (
    AGGREGATION_RULES,
    AggregationRule,
    Choose,
    Invoke,
    Pipeline,
    Plan,
    Split,
)
from .messages import MessageBus
from .negotiation import NegotiationOutcome, Party, negotiate
from .qos import compile_document, resolve_attribute
from .registry import ServiceRegistry
from .service import ServiceDescription
from .sla import SLA, SLARepository


class BrokerError(Exception):
    """Raised on unanswerable requests (no providers, no attribute, …)."""


@dataclass
class ClientRequest:
    """Step 1: a binding request with its required QoS.

    ``requirements`` are soft constraints over shared resource variables;
    ``acceptance`` is the client's checked interval on the merged store
    (``None`` accepts any consistent agreement).
    """

    client: str
    operation: str
    attribute: str
    requirements: List[SoftConstraint] = field(default_factory=list)
    acceptance: Optional[CheckSpec] = None
    semiring: Optional[Semiring] = None

    def resolved_semiring(self) -> Semiring:
        if self.semiring is not None:
            return self.semiring
        if self.requirements:
            return self.requirements[0].semiring
        return resolve_attribute(self.attribute).semiring()


@dataclass
class CandidateEvaluation:
    """Step 4 for one provider: offered ⊗ required, solved."""

    description: ServiceDescription
    blevel: Any
    accepted: bool
    best_assignment: Optional[Dict[str, Any]]

    @property
    def provider(self) -> str:
        return self.description.provider


@dataclass
class NegotiationResult:
    """The broker's answer to a client request."""

    request: ClientRequest
    success: bool
    sla: Optional[SLA]
    evaluations: List[CandidateEvaluation]
    outcome: Optional[NegotiationOutcome] = None
    detail: str = ""
    #: Round metadata (:class:`~repro.soa.allocation.AllocationInfo`)
    #: attached when the session was served through an allocation policy;
    #: ``None`` on the legacy per-session path.  Never affects the SLA.
    allocation: Any = None

    @property
    def chosen(self) -> Optional[CandidateEvaluation]:
        if self.sla is None:
            return None
        for evaluation in self.evaluations:
            if evaluation.description.service_id in self.sla.service_ids:
                return evaluation
        return None


@dataclass
class ParetoPoint:
    """One nondominated offer: a candidate, its product-valued level and
    the resource assignment achieving it."""

    description: ServiceDescription
    level: Tuple[Any, ...]
    assignment: Dict[str, Any]

    @property
    def provider(self) -> str:
        return self.description.provider


@dataclass
class MulticriteriaResult:
    """The Pareto frontier of a joint multi-attribute negotiation."""

    client: str
    operation: str
    attributes: Tuple[str, ...]
    frontier: List[ParetoPoint]
    semiring: Any

    @property
    def satisfiable(self) -> bool:
        return bool(self.frontier)

    def providers(self) -> List[str]:
        return sorted({point.provider for point in self.frontier})

    def dominated_by_frontier(self, level: Tuple[Any, ...]) -> bool:
        """Whether ``level`` is strictly worse than some frontier point."""
        return any(
            self.semiring.gt(point.level, level) for point in self.frontier
        )


class Broker:
    """The negotiation orchestrator with an embedded SCSP solver.

    ``solve_cache`` (on by default) memoizes candidate-SCSP solves under
    a canonical problem fingerprint, so a market's repeated negotiations
    hit warm entries instead of re-running the solver;
    ``solver_backend`` selects the factor representation
    (``auto``/``dict``/``dense``, see :mod:`repro.solver.kernels`);
    ``store_backend`` selects the constraint-store representation for
    acceptance checks and nmsccp confirmation runs
    (``auto``/``monolith``/``factored``, see
    :mod:`repro.constraints.store`); ``batching`` (a
    :class:`~repro.runtime.batching.BatchConfig` or a prebuilt
    :class:`~repro.runtime.batching.BatchScheduler`) coalesces
    concurrent candidate solves sharing one constraint topology into
    stacked batched sweeps — the ``--solver-batching`` serving-path
    optimization; lowerable solves then route through batched bucket
    elimination, bit-identical per session to solving alone;
    ``allocation_policy`` (``"greedy"``/``"fair"`` or an
    :class:`~repro.soa.allocation.AllocationPolicy`) routes
    :meth:`serve_session` through coalesced allocation rounds —
    ``greedy`` reproduces this method's per-session agreements exactly,
    ``fair`` solves one joint SCSP per round over the lexicographic
    ⟨min client satisfaction, total welfare⟩ objective.  ``None`` (the
    default) keeps the legacy path with no policy objects touched.

    ``slo_penalty`` (default ``None`` = off, matchmaking bit-identical
    to before the SLO analytics existed) turns on error-budget-aware
    selection: a flag share in ``(0, 1]``.  When the client's acceptance
    interval states a probability lower bound, step 4 computes each
    accepted candidate's share of the client's error budget
    (:func:`repro.slo.share_of`) and prefers the semiring-best candidate
    whose share stays within the flag share; only when every candidate
    overspends does the unpenalized best win (availability over a
    rejection).
    """

    ENDPOINT = "broker"

    def __init__(
        self,
        registry: ServiceRegistry,
        bus: Optional[MessageBus] = None,
        name: str = "broker",
        solve_cache: bool = True,
        solver_backend: str = "auto",
        store_backend: Optional[str] = None,
        batching: Optional[Any] = None,
        allocation_policy: Optional[Any] = None,
        rounds: Optional[Any] = None,
        slo_penalty: Optional[float] = None,
    ) -> None:
        self.registry = registry
        self.bus = bus
        self.name = name
        self.slas = SLARepository()
        self.solve_cache: Optional[SolveCache] = (
            SolveCache() if solve_cache else None
        )
        self.solver_backend = solver_backend
        self.store_backend = store_backend
        self.batcher = None
        if batching is not None:
            # Deferred import: repro.runtime imports this module.
            from ..runtime.batching import BatchConfig, BatchScheduler

            if isinstance(batching, BatchScheduler):
                self.batcher = batching
            elif isinstance(batching, BatchConfig):
                self.batcher = BatchScheduler(batching)
            else:
                raise BrokerError(
                    "batching must be a BatchConfig or BatchScheduler, "
                    f"got {type(batching).__name__}"
                )
        self.allocation_policy = None
        self.rounds = None
        if allocation_policy is not None:
            # Deferred import: repro.soa.allocation imports this module.
            from .allocation import resolve_allocation_policy

            self.allocation_policy = resolve_allocation_policy(
                allocation_policy
            )
            from ..runtime.batching import BatchConfig, RoundScheduler

            if isinstance(rounds, RoundScheduler):
                self.rounds = rounds
            elif isinstance(rounds, BatchConfig):
                self.rounds = RoundScheduler(rounds)
            elif rounds is None:
                # Allocation rounds ride the same coalescing windows the
                # solver batcher uses, so one --batch-window flag tunes
                # both; without a batcher, a default window applies.
                config = (
                    self.batcher.config
                    if self.batcher is not None
                    else BatchConfig()
                )
                self.rounds = RoundScheduler(config)
            else:
                raise BrokerError(
                    "rounds must be a BatchConfig or RoundScheduler, "
                    f"got {type(rounds).__name__}"
                )
        elif rounds is not None:
            raise BrokerError(
                "rounds requires an allocation_policy to dispatch to"
            )
        if slo_penalty is not None and not 0.0 < slo_penalty <= 1.0:
            raise BrokerError("slo_penalty must be in (0, 1] or None")
        self.slo_penalty = slo_penalty
        #: (qos-doc id, attribute, semiring, pool identities) → compiled
        #: offer constraints + the variables compiling added to the pool.
        self._offer_memo: Dict[tuple, tuple] = {}
        self._clock = 0
        if bus is not None:
            bus.register(self.ENDPOINT)

    def _solve(self, problem: SCSP, **options) -> Any:
        """One SCSP solve through the broker's cache and backend.

        With batching enabled, plain candidate solves (no method
        override) go through the :class:`BatchScheduler`, coalescing
        with concurrent same-topology sessions; explicit-method callers
        (composition paths) keep the direct route.
        """
        if self.batcher is not None and not options:
            return self.batcher.solve(
                problem,
                backend=self.solver_backend,
                cache=self.solve_cache,
            )
        return solve(
            problem,
            backend=self.solver_backend,
            cache=self.solve_cache,
            **options,
        )

    def _compile_offer(
        self,
        description: ServiceDescription,
        attribute: str,
        semiring: Semiring,
        pool: Dict[str, Variable],
    ) -> List[SoftConstraint]:
        """``compile_document``, memoized per document/attribute/pool.

        Repeated negotiations over the same registry re-present the same
        QoS documents and (via shared requirement objects) the same pool
        variables, so the compiled constraint *objects* are reused — and
        with them their materialized-table, dense-factor and fingerprint
        memos: the warm path never re-materializes anything.  Keying on
        object identities makes staleness impossible — republishing a
        service or sending different requirement variables produces a
        fresh key.  (A racing duplicate compile is benign: both threads
        build equal constraints and one memo entry wins.)
        """
        key = (
            id(description.qos),
            attribute,
            semiring,
            tuple(sorted((name, id(var)) for name, var in pool.items())),
        )
        hit = self._offer_memo.get(key)
        if hit is not None:
            constraints, added = hit
            pool.update(added)
            return list(constraints)
        before = set(pool)
        constraints = compile_document(
            description.qos, attribute, semiring, pool
        )
        added = {
            name: var for name, var in pool.items() if name not in before
        }
        self._offer_memo[key] = (tuple(constraints), added)
        return constraints

    # ------------------------------------------------------------------
    # Single-service selection (steps 1–5)
    # ------------------------------------------------------------------

    def negotiate(
        self,
        request: ClientRequest,
        verify_scheduler_independence: bool = False,
    ) -> NegotiationResult:
        """Select the semiring-best provider for one operation.

        Each of the paper's five computation steps (Fig. 6) runs under
        its own telemetry span, all children of one ``broker.request``
        root; the result outcome is counted per class.
        """
        tracer = get_tracer()
        with tracer.span(
            "broker.request",
            client=request.client,
            operation=request.operation,
            attribute=request.attribute,
        ):
            result = self._negotiate_steps(
                request, verify_scheduler_independence, tracer
            )
        self._count_request(result)
        return result

    # ------------------------------------------------------------------
    # Allocation rounds (multi-client serving seam)
    # ------------------------------------------------------------------

    def serve_session(
        self,
        request: ClientRequest,
        verify_scheduler_independence: bool = False,
    ) -> NegotiationResult:
        """Serve one client session through the allocation seam.

        Without an ``allocation_policy`` this *is* :meth:`negotiate` —
        the legacy per-session path, bit-identical agreements.  With a
        policy, the session joins the broker's :class:`RoundScheduler`:
        concurrent sessions for the same operation/attribute coalesce
        into one allocation round and the policy assigns providers
        jointly (see :mod:`repro.soa.allocation`).
        """
        if self.allocation_policy is None:
            return self.negotiate(request, verify_scheduler_independence)
        return self.rounds.negotiate(
            self, request, verify=verify_scheduler_independence
        )

    def negotiate_round(
        self,
        requests: Sequence[ClientRequest],
        verify_scheduler_independence: bool = False,
        round_id: int = 0,
    ) -> List[NegotiationResult]:
        """Allocate one round of coalesced sessions via the policy.

        Results come back in submission order.  Called by the
        :class:`~repro.runtime.batching.RoundScheduler` leader; also
        usable directly for synchronous round-based markets (tests, the
        fairness bench).  Falls back to greedy (legacy semantics) when
        no policy is configured.
        """
        policy = self.allocation_policy
        if policy is None:
            from .allocation import GreedyAllocation

            policy = GreedyAllocation()
        with get_tracer().span(
            "broker.allocation-round",
            policy=policy.name,
            sessions=len(requests),
            round_id=round_id,
        ):
            return policy.allocate(
                self,
                list(requests),
                verify=verify_scheduler_independence,
                round_id=round_id,
            )

    def _negotiate_steps(
        self,
        request: ClientRequest,
        verify_scheduler_independence: bool,
        tracer: Any,
    ) -> NegotiationResult:
        self._clock += 1

        # Step 1: the client requests a binding, stating the required QoS.
        with tracer.span("broker.step1-request"):
            semiring = request.resolved_semiring()
            self._post(
                request.client, "negotiate-request", request.operation
            )

        # Step 2: the broker searches the registry for providers.
        with tracer.span("broker.step2-registry-search") as span:
            candidates = self.registry.find(
                operation=request.operation,
                requires_attribute=request.attribute,
            )
            span.set_attribute("candidates", len(candidates))
            self._post(self.name, "registry-query", len(candidates))
        if not candidates:
            return NegotiationResult(
                request,
                success=False,
                sla=None,
                evaluations=[],
                detail=f"no provider offers {request.operation!r} with "
                f"{request.attribute!r}",
            )

        # Step 3: QoS negotiation — one SCSP per candidate on the
        # broker's store.
        with tracer.span("broker.step3-negotiation"):
            evaluations: List[CandidateEvaluation] = []
            for description in candidates:
                evaluations.append(
                    self._evaluate(description, request, semiring)
                )

        # Step 4: offered vs required QoS determine the agreed QoS.
        with tracer.span("broker.step4-compare") as span:
            accepted = [e for e in evaluations if e.accepted]
            span.set_attribute("accepted", len(accepted))
            if not accepted:
                self._post(self.name, "negotiate-reject", request.client)
                return NegotiationResult(
                    request,
                    success=False,
                    sla=None,
                    evaluations=evaluations,
                    detail="no candidate satisfies the client's "
                    "acceptance interval",
                )
            best = self._select_best(accepted, request, semiring)
            outcome = self._confirm(best, request, semiring) if (
                verify_scheduler_independence
            ) else None
        if outcome is not None and not outcome.success:
            return NegotiationResult(
                request,
                success=False,
                sla=None,
                evaluations=evaluations,
                outcome=outcome,
                detail="nmsccp confirmation run failed",
            )

        # Step 5: the SLA binding is created and both parties informed.
        with tracer.span("broker.step5-sla") as span:
            sla = self._sign(best, request, semiring)
            span.set_attribute("sla_id", sla.sla_id)
            self._post(self.name, "sla-created", sla.sla_id)
        get_events().emit(
            "broker.sla-created",
            sla_id=sla.sla_id,
            client=request.client,
            provider=best.description.provider,
            service_id=best.description.service_id,
            attribute=request.attribute,
        )
        return NegotiationResult(
            request,
            success=True,
            sla=sla,
            evaluations=evaluations,
            outcome=outcome,
            detail=f"bound to {best.description.service_id!r}",
        )

    def _select_best(
        self,
        accepted: List[CandidateEvaluation],
        request: ClientRequest,
        semiring: Semiring,
    ) -> CandidateEvaluation:
        """Step 4's winner among the accepted candidates.

        With ``slo_penalty`` off (the default) this is exactly the
        semiring-best scan it always was.  With it on, candidates whose
        error-budget share against the client's stated probability floor
        exceeds the flag share are penalized: the semiring-best
        *unflagged* candidate wins when one exists.
        """
        def semiring_best(
            pool: List[CandidateEvaluation],
        ) -> CandidateEvaluation:
            best = pool[0]
            for evaluation in pool[1:]:
                if semiring.gt(evaluation.blevel, best.blevel):
                    best = evaluation
            return best

        target = self._budget_target(request)
        if self.slo_penalty is None or target is None:
            return semiring_best(accepted)
        from ..slo import share_of

        unflagged = [
            e
            for e in accepted
            if isinstance(e.blevel, (int, float))
            and 0.0 <= e.blevel <= 1.0
            and share_of(e.blevel, target) <= self.slo_penalty
        ]
        pool = unflagged or accepted
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "broker_slo_penalized_total",
                "Accepted candidates set aside for overspending the "
                "client's error budget.",
                labelnames=("attribute",),
            ).labels(request.attribute).inc(len(accepted) - len(pool))
        return semiring_best(pool)

    def _budget_target(self, request: ClientRequest) -> Optional[float]:
        """The probability floor the penalty budgets against, when the
        request states one (a plain-level lower bound on a probability
        attribute with room for an error budget)."""
        if request.attribute not in ("availability", "reliability"):
            return None
        if request.acceptance is None:
            return None
        lower = request.acceptance.lower
        if isinstance(lower, SoftConstraint) or lower is None:
            return None
        if not isinstance(lower, (int, float)):
            return None
        if not 0.0 < float(lower) < 1.0:
            return None
        return float(lower)

    def _count_request(self, result: NegotiationResult) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        if result.success:
            outcome = "success"
        elif not result.evaluations:
            outcome = "no-provider"
        elif result.outcome is not None and not result.outcome.success:
            outcome = "confirmation-failed"
        else:
            outcome = "rejected"
        registry.counter(
            "broker_requests_total",
            "Client binding requests, by outcome.",
            labelnames=("outcome",),
        ).labels(outcome).inc()
        registry.counter(
            "broker_candidates_evaluated_total",
            "Per-candidate SCSP evaluations performed.",
        ).inc(len(result.evaluations))

    def _evaluate(
        self,
        description: ServiceDescription,
        request: ClientRequest,
        semiring: Semiring,
    ) -> CandidateEvaluation:
        """Step 4: offered ⊗ required as one SCSP."""
        pool: Dict[str, Variable] = {
            var.name: var
            for constraint in request.requirements
            for var in constraint.scope
        }
        offer = self._compile_offer(
            description, request.attribute, semiring, pool
        )
        if not offer:
            return CandidateEvaluation(description, semiring.zero, False, None)
        constraints = list(request.requirements) + offer
        problem = SCSP(constraints, name=description.service_id)
        started = time.perf_counter()
        with get_tracer().span(
            "broker.candidate-solve",
            service_id=description.service_id,
            provider=description.provider,
        ):
            result = self._solve(problem)
        get_registry().histogram(
            "broker_candidate_solve_seconds",
            "Per-candidate SCSP solve wall time.",
        ).observe(time.perf_counter() - started)

        if request.acceptance is not None:
            # Told factor by factor: on the factored backend the store
            # stays a factor set and the acceptance check routes through
            # the solver instead of materializing the union scope.
            store = empty_store(semiring, backend=self.store_backend)
            for constraint in constraints:
                store = store.tell(constraint)
            accepted = request.acceptance.holds(store)
        else:
            accepted = result.is_consistent
        return CandidateEvaluation(
            description, result.blevel, accepted, result.best_assignment
        )

    def _confirm(
        self,
        evaluation: CandidateEvaluation,
        request: ClientRequest,
        semiring: Semiring,
    ) -> NegotiationOutcome:
        """Step 3 made explicit: rerun the winner as nmsccp agents and
        certify scheduler independence."""
        pool: Dict[str, Variable] = {
            var.name: var
            for constraint in request.requirements
            for var in constraint.scope
        }
        offer = self._compile_offer(
            evaluation.description, request.attribute, semiring, pool
        )
        provider = Party(
            evaluation.description.provider, offer, acceptance=None
        )
        client = Party(
            request.client, list(request.requirements), request.acceptance
        )
        return negotiate(
            [provider, client],
            semiring,
            verify_scheduler_independence=True,
            store_backend=self.store_backend,
        )

    def _sign(
        self,
        evaluation: CandidateEvaluation,
        request: ClientRequest,
        semiring: Semiring,
    ) -> SLA:
        pool: Dict[str, Variable] = {
            var.name: var
            for constraint in request.requirements
            for var in constraint.scope
        }
        offer = compile_document(
            evaluation.description.qos, request.attribute, semiring, pool
        )
        agreed = combine(
            list(request.requirements) + offer, semiring=semiring
        )
        sla = SLA(
            client=request.client,
            providers=(evaluation.description.provider,),
            attribute=request.attribute,
            semiring=semiring,
            agreed_constraint=agreed,
            agreed_level=evaluation.blevel,
            resource_assignment=dict(evaluation.best_assignment or {}),
            service_ids=(evaluation.description.service_id,),
            created_at=self._clock,
        )
        self.slas.add(sla)
        return sla

    # ------------------------------------------------------------------
    # Composition selection
    # ------------------------------------------------------------------

    def negotiate_composition(
        self,
        client: str,
        slots: Sequence[str],
        attribute: str,
        pattern: str = "pipeline",
        minimum_level: Any = None,
        rule: Optional[AggregationRule] = None,
        slo_target: Any = None,
        slo_choose: str = "worst-case",
    ) -> Tuple[Optional[SLA], Optional[Plan], Dict[str, Any]]:
        """Choose one provider per operation slot, optimizing the
        aggregated QoS of the composite (paper: "look for complex services
        by composing together simpler service interfaces").

        Returns ``(sla, plan, diagnostics)``; ``sla`` is ``None`` when no
        selection reaches ``minimum_level``.

        ``slo_target`` arms the unachievable-SLO precheck: before the
        selection SCSP is even built, the analytics fold the per-slot
        *best* offers through the aggregation rule (the exact reachable
        optimum, by monotonicity) and compare against the target.  An
        unachievable target short-circuits to ``(None, None,
        diagnostics)`` with the typed verdict — including remediation
        guidance — under ``diagnostics["slo"]``, saving the doomed solve.
        """
        with get_tracer().span(
            "broker.composition",
            client=client,
            slots=len(slots),
            attribute=attribute,
            pattern=pattern,
        ):
            return self._negotiate_composition(
                client,
                slots,
                attribute,
                pattern,
                minimum_level,
                rule,
                slo_target,
                slo_choose,
            )

    def _negotiate_composition(
        self,
        client: str,
        slots: Sequence[str],
        attribute: str,
        pattern: str,
        minimum_level: Any,
        rule: Optional[AggregationRule],
        slo_target: Any = None,
        slo_choose: str = "worst-case",
    ) -> Tuple[Optional[SLA], Optional[Plan], Dict[str, Any]]:
        self._clock += 1
        semiring = resolve_attribute(attribute).semiring()
        if rule is None:
            try:
                rule = AGGREGATION_RULES[attribute]
            except KeyError:
                raise BrokerError(
                    f"no aggregation rule for attribute {attribute!r}"
                ) from None

        # Scalar offer per candidate: its best achievable level.
        slot_candidates: List[List[ServiceDescription]] = []
        offer_level: Dict[str, Any] = {}
        for operation in slots:
            candidates = self.registry.find(
                operation=operation, requires_attribute=attribute
            )
            if not candidates:
                raise BrokerError(
                    f"no provider for slot operation {operation!r}"
                )
            slot_candidates.append(candidates)
            for description in candidates:
                if description.service_id not in offer_level:
                    constraints = self._compile_offer(
                        description, attribute, semiring, {}
                    )
                    problem = SCSP(constraints, name=description.service_id)
                    offer_level[description.service_id] = self._solve(
                        problem
                    ).blevel

        # Unachievable-SLO precheck: fold the per-slot best offers (the
        # reachable optimum) before spending a selection solve.
        if slo_target is not None:
            verdict = self._precheck_slo(
                slot_candidates,
                offer_level,
                pattern,
                attribute,
                semiring,
                rule,
                slo_target,
                slo_choose,
            )
            if verdict is not None and not verdict.achievable:
                diagnostics = {
                    "offer_levels": dict(offer_level),
                    "blevel": None,
                    "evaluations": 0,
                    "slo": verdict.to_dict(),
                }
                self._post(self.name, "composition-slo-reject", client)
                return None, None, diagnostics

        # One selection variable per slot, domain = candidate service ids.
        selection_vars = [
            Variable(f"slot{i}", tuple(d.service_id for d in candidates))
            for i, candidates in enumerate(slot_candidates)
        ]

        fold = {
            "pipeline": rule.sequence,
            "split": rule.split,
            "choose": rule.choose,
        }.get(pattern)
        if fold is None:
            raise BrokerError(f"unknown composition pattern {pattern!r}")

        def aggregated(*chosen_ids: str) -> Any:
            return fold([offer_level[sid] for sid in chosen_ids])

        objective = FunctionConstraint(
            semiring, selection_vars, aggregated, name=f"compose-{attribute}"
        )
        problem = SCSP([objective], name="composition")
        result = self._solve(problem)

        diagnostics = {
            "offer_levels": dict(offer_level),
            "blevel": result.blevel,
            "evaluations": result.stats.leaves_evaluated,
        }
        if minimum_level is not None and not semiring.geq(
            result.blevel, minimum_level
        ):
            return None, None, diagnostics

        assert result.best_assignment is not None
        chosen_ids = [
            result.best_assignment[var.name] for var in selection_vars
        ]
        plan_children = [Invoke(sid) for sid in chosen_ids]
        plan: Plan = {
            "pipeline": Pipeline,
            "split": Split,
            "choose": Choose,
        }[pattern](plan_children)

        providers = tuple(
            self.registry.get(sid).provider for sid in chosen_ids
        )
        sla = SLA(
            client=client,
            providers=providers,
            attribute=attribute,
            semiring=semiring,
            agreed_constraint=objective,
            agreed_level=result.blevel,
            resource_assignment=dict(result.best_assignment),
            service_ids=tuple(chosen_ids),
            created_at=self._clock,
        )
        self.slas.add(sla)
        self._post(self.name, "composition-sla", sla.sla_id)
        get_events().emit(
            "broker.composition-sla",
            sla_id=sla.sla_id,
            client=client,
            attribute=attribute,
            service_ids=list(chosen_ids),
        )
        return sla, plan, diagnostics

    def _precheck_slo(
        self,
        slot_candidates: List[List[ServiceDescription]],
        offer_level: Dict[str, Any],
        pattern: str,
        attribute: str,
        semiring: Semiring,
        rule: Optional[AggregationRule],
        slo_target: Any,
        slo_choose: str,
    ) -> Any:
        """The detector over per-slot best offers (see
        :func:`repro.slo.check_slo`)."""
        from ..slo import SLOError, check_slo

        best_ids: List[str] = []
        for candidates in slot_candidates:
            best = candidates[0].service_id
            for description in candidates[1:]:
                if semiring.gt(
                    offer_level[description.service_id], offer_level[best]
                ):
                    best = description.service_id
            best_ids.append(best)
        plan_type = {
            "pipeline": Pipeline,
            "split": Split,
            "choose": Choose,
        }[pattern]
        plan = plan_type([Invoke(sid) for sid in best_ids])
        try:
            return check_slo(
                plan,
                {sid: offer_level[sid] for sid in best_ids},
                slo_target,
                attribute=attribute,
                choose=slo_choose,
                rule=rule,
                semiring=semiring,
            )
        except SLOError as exc:
            raise BrokerError(f"SLO precheck failed: {exc}") from exc

    # ------------------------------------------------------------------
    # SLO analytics queries
    # ------------------------------------------------------------------

    def advertised_levels(
        self, attribute: str, operation: Optional[str] = None
    ) -> Dict[str, Any]:
        """Each published service's best achievable level for
        ``attribute`` (its scalar offer), via the broker's memoized
        offer compiler and solve cache."""
        semiring = resolve_attribute(attribute).semiring()
        levels: Dict[str, Any] = {}
        for description in self.registry.find(
            operation=operation, requires_attribute=attribute
        ):
            constraints = self._compile_offer(
                description, attribute, semiring, {}
            )
            problem = SCSP(constraints, name=description.service_id)
            levels[description.service_id] = self._solve(problem).blevel
        return levels

    def slo_report(
        self,
        plan: Plan,
        target: float,
        attribute: str = "availability",
        use_observations: bool = True,
        **options: Any,
    ) -> Any:
        """Full SLO analytics (:func:`repro.slo.analyze`) for a plan over
        this broker's market: published levels come from the registered
        QoS offers, delivered-quality evidence from the registry's
        observation ledger (``use_observations=False`` trusts the
        advertisements).  Extra keyword ``options`` pass through to
        ``analyze`` (``buffer``, ``min_attempts``, ``choose``, …)."""
        from ..slo import analyze

        semiring = resolve_attribute(attribute).semiring()
        published: Dict[str, Any] = {}
        for service_id in set(plan.services()):
            description = self.registry.get(service_id)
            constraints = self._compile_offer(
                description, attribute, semiring, {}
            )
            problem = SCSP(constraints, name=service_id)
            published[service_id] = self._solve(problem).blevel
        observations = (
            self.registry.observation_windows() if use_observations else None
        )
        if not use_observations:
            options.setdefault("trust_published", True)
        return analyze(
            plan,
            published,
            target,
            attribute=attribute,
            observations=observations,
            **options,
        )

    # ------------------------------------------------------------------
    # Multi-criteria (Pareto) selection
    # ------------------------------------------------------------------

    def negotiate_multicriteria(
        self,
        client: str,
        operation: str,
        attributes: Sequence[str],
        requirements: Optional[List[SoftConstraint]] = None,
    ) -> "MulticriteriaResult":
        """Negotiate several QoS attributes jointly over their product
        semiring (paper Sec. 4: "the cartesian product of multiple
        c-semirings is still a c-semiring and, therefore, we can model
        also a multicriteria optimization").

        Each candidate's offers for every attribute are folded into one
        product-valued constraint; incomparable trade-offs survive as a
        Pareto frontier instead of being collapsed by an arbitrary
        scalarization.  ``requirements`` (optional) are product-valued
        client constraints combined into every candidate's problem.
        """
        from ..semirings.product import ProductSemiring

        if len(attributes) < 2:
            raise BrokerError(
                "multicriteria negotiation needs at least two attributes"
            )
        self._clock += 1
        component_semirings = [
            resolve_attribute(a).semiring() for a in attributes
        ]
        product = ProductSemiring(component_semirings)

        candidates = [
            d
            for d in self.registry.find(operation=operation)
            if all(a in d.qos.attributes() for a in attributes)
        ]
        if not candidates:
            return MulticriteriaResult(
                client, operation, tuple(attributes), [], product
            )

        points: List[ParetoPoint] = []
        for description in candidates:
            pool: Dict[str, Variable] = {
                var.name: var
                for constraint in (requirements or [])
                for var in constraint.scope
            }
            per_attribute = []
            for attribute, semiring in zip(attributes, component_semirings):
                offer = compile_document(
                    description.qos, attribute, semiring, pool
                )
                per_attribute.append(
                    combine(offer, semiring=semiring)
                )
            scope = tuple(
                {
                    var.name: var
                    for constraint in per_attribute
                    for var in constraint.scope
                }.values()
            )

            def joint(*values, _scope=scope, _parts=per_attribute):
                assignment = {
                    var.name: value for var, value in zip(_scope, values)
                }
                return tuple(part.value(assignment) for part in _parts)

            offer_constraint = FunctionConstraint(
                product, scope, joint, name=description.service_id
            )
            constraints = list(requirements or []) + [offer_constraint]
            problem = SCSP(constraints, name=description.service_id)
            result = solve(problem, method="exhaustive")
            for value, group in zip(result.frontier, result.optima):
                for assignment in group:
                    points.append(
                        ParetoPoint(
                            description=description,
                            level=value,
                            assignment=dict(assignment),
                        )
                    )

        # Pareto-filter across candidates.
        frontier_values = product.max_elements(
            [point.level for point in points]
        )
        frontier = [
            point for point in points if point.level in frontier_values
        ]
        frontier.sort(
            key=lambda p: (p.description.service_id, repr(p.level))
        )
        return MulticriteriaResult(
            client, operation, tuple(attributes), frontier, product
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _post(self, sender: str, kind: str, body: Any) -> None:
        """Journal a protocol step on the bus when one is attached."""
        if self.bus is not None:
            if sender not in self.bus.endpoints():
                self.bus.register(sender)
            self.bus.send(sender, self.ENDPOINT, kind, body)
