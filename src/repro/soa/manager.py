"""The dependability manager: a self-healing negotiate→monitor loop.

The paper's architecture implies a loop it never spells out: the broker
negotiates an SLA (Sec. 4), the composition runs and "needs to be
monitored" (Sec. 3), and a violated agreement sends the client back to
the broker.  :class:`DependabilityManager` closes that loop:

1. negotiate a composite SLA for a pipeline of operations;
2. execute the bound plan, feeding every report to an SLA monitor;
3. on violation: terminate the SLA, blacklist the offending provider,
   renegotiate among the remaining candidates, rebind, continue;
4. give up (and say so) when no compliant market remains.

Every decision is recorded in an event log so tests and operators can
audit exactly why a rebinding happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..telemetry import get_events, get_registry
from .broker import Broker
from .composition import Plan
from .execution import ExecutionEngine, ExecutionReport
from .monitor import SLAMonitor
from .sla import SLA, SLAViolation


class ManagerError(Exception):
    """Raised on impossible management requests."""


@dataclass(frozen=True)
class ManagementEvent:
    """One entry of the audit log."""

    tick: int
    kind: str  # bound | violation | rebound | gave-up
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.tick:>4}] {self.kind}: {self.detail}"


@dataclass
class ManagementOutcome:
    """What a managed run delivered."""

    runs: int
    successes: int
    rebindings: int
    gave_up: bool
    final_sla: Optional[SLA]
    final_plan: Optional[Plan]
    events: List[ManagementEvent] = field(default_factory=list)
    violations: List[SLAViolation] = field(default_factory=list)

    @property
    def availability(self) -> float:
        return self.successes / self.runs if self.runs else 1.0


class DependabilityManager:
    """Owns a broker, an execution engine and the monitors between them."""

    def __init__(
        self,
        broker: Broker,
        engine: ExecutionEngine,
        client: str = "managed-client",
        window: int = 15,
        min_samples: int = 8,
    ) -> None:
        self.broker = broker
        self.engine = engine
        self.client = client
        self.window = window
        self.min_samples = min_samples
        self.blacklist: set[str] = set()
        self.events: List[ManagementEvent] = []

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind(
        self,
        operations: Sequence[str],
        attribute: str,
        minimum_level: Any = None,
    ) -> Tuple[Optional[SLA], Optional[Plan]]:
        """Negotiate a composite SLA, honouring the blacklist.

        Blacklisting works by temporarily unpublishing the offending
        providers' services — the registry equivalent of refusing to
        bind to them.
        """
        removed = []
        for provider in self.blacklist:
            for description in self.broker.registry.find(provider=provider):
                removed.append(
                    self.broker.registry.unpublish(description.service_id)
                )
        try:
            try:
                sla, plan, _ = self.broker.negotiate_composition(
                    self.client,
                    operations,
                    attribute,
                    minimum_level=minimum_level,
                )
            except Exception:
                return None, None
            return sla, plan
        finally:
            for description in removed:
                self.broker.registry.publish(description)

    # ------------------------------------------------------------------
    # The managed loop
    # ------------------------------------------------------------------

    def manage(
        self,
        operations: Sequence[str],
        attribute: str,
        runs: int,
        minimum_level: Any = None,
        payload: Any = None,
        max_rebindings: int = 5,
    ) -> ManagementOutcome:
        """Run ``runs`` executions with automatic renegotiation."""
        if runs <= 0:
            raise ManagerError("runs must be positive")

        outcome = ManagementOutcome(
            runs=0,
            successes=0,
            rebindings=0,
            gave_up=False,
            final_sla=None,
            final_plan=None,
        )

        sla, plan = self.bind(operations, attribute, minimum_level)
        if sla is None or plan is None:
            outcome.gave_up = True
            self._log(outcome, 0, "gave-up", "no initial binding possible")
            return outcome
        self._log(
            outcome,
            0,
            "bound",
            f"SLA#{sla.sla_id} → {plan.describe()} @ {sla.agreed_level!r}",
        )
        monitor = self._monitor(sla, minimum_level)

        while outcome.runs < runs:
            report = self.engine.execute(plan, payload)
            outcome.runs += 1
            outcome.successes += int(report.success)
            violation = monitor.observe(report)
            if violation is None:
                continue

            outcome.violations.append(violation)
            self._log(outcome, report.tick, "violation", str(violation))
            offender = self._offending_provider(report, plan)
            sla.terminate()
            if offender is not None:
                self.blacklist.add(offender)

            if outcome.rebindings >= max_rebindings:
                outcome.gave_up = True
                self._log(
                    outcome, report.tick, "gave-up", "rebinding budget spent"
                )
                break
            new_sla, new_plan = self.bind(
                operations, attribute, minimum_level
            )
            if new_sla is None or new_plan is None:
                outcome.gave_up = True
                self._log(
                    outcome,
                    report.tick,
                    "gave-up",
                    f"no compliant market without {sorted(self.blacklist)}",
                )
                break
            sla, plan = new_sla, new_plan
            monitor = self._monitor(sla, minimum_level)
            outcome.rebindings += 1
            self._log(
                outcome,
                report.tick,
                "rebound",
                f"SLA#{sla.sla_id} → {plan.describe()} "
                f"(blacklist: {sorted(self.blacklist)})",
            )

        outcome.final_sla = sla if sla.active else None
        outcome.final_plan = plan
        return outcome

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _monitor(
        self, sla: SLA, minimum_level: Any = None
    ) -> SLAMonitor:
        """Monitor against the client's contractual floor when one was
        stated; otherwise against the advertised level."""
        return SLAMonitor(
            sla,
            window=self.window,
            min_samples=self.min_samples,
            threshold=minimum_level,
        )

    def _offending_provider(
        self, report: ExecutionReport, plan: Plan
    ) -> Optional[str]:
        """The provider of the service that failed in this run, falling
        back to the plan's first provider when the failure was a window
        effect rather than a single crash."""
        failed = next(
            (o.service_id for o in report.outcomes if not o.success), None
        )
        service_id = failed or (plan.services()[0] if plan.services() else None)
        if service_id is None:
            return None
        try:
            return self.broker.registry.get(service_id).provider
        except Exception:
            return None

    def _log(
        self, outcome: ManagementOutcome, tick: int, kind: str, detail: str
    ) -> None:
        event = ManagementEvent(tick, kind, detail)
        outcome.events.append(event)
        self.events.append(event)
        registry = get_registry()
        if registry.enabled:
            # One counter family mirrors the audit log, so renegotiation
            # statistics (rebound/gave-up rates vs violations) fall out
            # of a metrics snapshot without parsing event text.
            registry.counter(
                "manager_events_total",
                "Dependability-manager decisions, by kind.",
                labelnames=("kind",),
            ).labels(kind).inc()
            get_events().emit(
                "manager." + kind, tick=tick, detail=detail
            )
