"""Fault injection for the simulated execution engine.

The paper motivates dependability monitoring but reports no testbed; we
substitute a seeded stochastic fault layer so the runtime monitor has
real failures to detect (DESIGN.md, substitutions).  Faults are injected
*between* the engine and a service, so a perfectly reliable service can
still be observed failing — the situation where advertised and delivered
dependability diverge.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..telemetry import get_events, get_registry


@dataclass(frozen=True)
class InjectedFault:
    """What the injector decided for one invocation."""

    kind: str
    extra_latency_ms: float = 0.0
    fail: bool = False


class FaultModel(ABC):
    """Per-service fault policy, consulted once per invocation."""

    @abstractmethod
    def apply(self, tick: int, rng: random.Random) -> Optional[InjectedFault]:
        """Return a fault for logical time ``tick`` or ``None``."""


class BernoulliCrash(FaultModel):
    """Independent crash with fixed probability — background noise."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability

    def apply(self, tick: int, rng: random.Random) -> Optional[InjectedFault]:
        if rng.random() < self.probability:
            return InjectedFault(kind="crash", fail=True)
        return None


class BurstOutage(FaultModel):
    """Deterministic outage window: down for ``length`` ticks from
    ``start`` — models a provider incident the monitor must catch."""

    def __init__(self, start: int, length: int) -> None:
        if start < 0 or length <= 0:
            raise ValueError("start must be ≥ 0 and length > 0")
        self.start = start
        self.length = length

    def apply(self, tick: int, rng: random.Random) -> Optional[InjectedFault]:
        if self.start <= tick < self.start + self.length:
            return InjectedFault(kind="outage", fail=True)
        return None


class RandomDelay(FaultModel):
    """Latency spikes: with ``probability``, add ``extra_ms``."""

    def __init__(self, probability: float, extra_ms: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.extra_ms = extra_ms

    def apply(self, tick: int, rng: random.Random) -> Optional[InjectedFault]:
        if rng.random() < self.probability:
            return InjectedFault(kind="delay", extra_latency_ms=self.extra_ms)
        return None


class FaultInjector:
    """Routes fault models to services; owns the seeded RNG.

    Pass ``rng`` to share one seeded :class:`random.Random` with the
    caller (the execution engine, or a runtime session) so that a single
    seed reproduces the whole run — fault decisions included.  Callers
    that manage per-session randomness (the concurrent runtime, where
    a shared stream would make draw order depend on worker interleaving)
    can instead override the stream per decision via ``decide(rng=…)``.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._models: Dict[str, List[FaultModel]] = {}
        self._rng = rng if rng is not None else random.Random(seed)
        self._explicitly_seeded = seed is not None or rng is not None
        self.injected: List[tuple] = []

    def adopt_rng_if_unseeded(self, rng: random.Random) -> bool:
        """Share the caller's stream unless deliberately seeded already.

        Lets one master seed govern engine choices *and* fault decisions
        without overriding an injector the caller configured on purpose.
        """
        if self._explicitly_seeded:
            return False
        self._rng = rng
        self._explicitly_seeded = True
        return True

    def attach(self, service_id: str, model: FaultModel) -> None:
        self._models.setdefault(service_id, []).append(model)

    def models_for(self, service_id: str) -> List[FaultModel]:
        return list(self._models.get(service_id, ()))

    def decide(
        self,
        service_id: str,
        tick: int,
        rng: Optional[random.Random] = None,
    ) -> Optional[InjectedFault]:
        """First applicable fault among the service's models (if any)."""
        draw = rng if rng is not None else self._rng
        for model in self._models.get(service_id, ()):  # ordered
            fault = model.apply(tick, draw)
            if fault is not None:
                self.injected.append((tick, service_id, fault.kind))
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "faults_injected_total",
                        "Faults injected between engine and services.",
                        labelnames=("kind",),
                    ).labels(fault.kind).inc()
                    get_events().emit(
                        "fault.injected",
                        service_id=service_id,
                        tick=tick,
                        fault=fault.kind,
                        fail=fault.fail,
                        extra_latency_ms=fault.extra_latency_ms,
                    )
                return fault
        return None

    def history_for(self, service_id: str) -> List[tuple]:
        return [item for item in self.injected if item[1] == service_id]
