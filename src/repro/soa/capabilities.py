"""MUST/MAY capability policies over the Set-based semiring.

The paper's conclusion sketches security policies as constraints: "a web
service specification could require that, for example, 'you MUST use
HTTP Authentication and MAY use GZIP compression'."  This module makes
that concrete:

* a :class:`CapabilityPolicy` lists capabilities a party **must** use,
  **may** use, and (implicitly) everything else is **forbidden**;
* a policy denotes the *set of admissible capability profiles* — encoded
  as one Set-semiring value per profile bit, or, more compactly, as the
  interval ``[must, must ∪ may]`` in the powerset lattice;
* policies compose with the semiring ``×`` (= ∩): a profile admissible
  for the composition must be admissible for every party — exactly the
  paper's "composing the properties of its components together";
* compatibility, the admissible profiles, and the minimal/maximal
  profile are decidable queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from ..semirings.setbased import SetSemiring

Profile = FrozenSet[str]


class CapabilityError(Exception):
    """Raised on malformed or contradictory policies."""


@dataclass(frozen=True)
class CapabilityPolicy:
    """``MUST ⊆ profile ⊆ MUST ∪ MAY`` over a capability universe."""

    name: str
    must: FrozenSet[str] = frozenset()
    may: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "must", frozenset(self.must))
        object.__setattr__(self, "may", frozenset(self.may))
        overlap = self.must & self.may
        if overlap:
            # MUST subsumes MAY; overlapping declarations are harmless
            object.__setattr__(self, "may", self.may - self.must)

    @property
    def floor(self) -> Profile:
        """The minimal admissible profile (exactly the MUSTs)."""
        return self.must

    @property
    def ceiling(self) -> Profile:
        """The maximal admissible profile (MUSTs plus all MAYs)."""
        return self.must | self.may

    def admits(self, profile: Iterable[str]) -> bool:
        """Whether a concrete capability profile satisfies the policy."""
        chosen = frozenset(profile)
        return self.must <= chosen <= self.ceiling

    def admissible_profiles(self) -> List[Profile]:
        """Every admissible profile (2^|may| of them) — small universes."""
        profiles = [self.must]
        for capability in sorted(self.may):
            profiles.extend(
                profile | {capability} for profile in list(profiles)
            )
        return profiles

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        musts = ", ".join(sorted(self.must)) or "—"
        mays = ", ".join(sorted(self.may)) or "—"
        return f"{self.name}: MUST {{{musts}}} MAY {{{mays}}}"


def policy(
    name: str,
    must: Iterable[str] = (),
    may: Iterable[str] = (),
) -> CapabilityPolicy:
    """Sugar: ``policy("svc", must={"http-auth"}, may={"gzip"})``."""
    return CapabilityPolicy(name, frozenset(must), frozenset(may))


@dataclass
class CompositionVerdict:
    """Outcome of composing capability policies."""

    compatible: bool
    combined: Optional[CapabilityPolicy]
    conflicts: List[str] = field(default_factory=list)


def compose_policies(
    policies: Iterable[CapabilityPolicy],
) -> CompositionVerdict:
    """Intersect admissibility: the composition's MUST is the union of
    all MUSTs, its ceiling the intersection of all ceilings.

    Incompatible when some party's MUST is outside another's ceiling —
    those capabilities are reported as conflicts.
    """
    items = list(policies)
    if not items:
        raise CapabilityError("compose_policies() needs at least one policy")
    must: Set[str] = set()
    ceiling: Optional[Set[str]] = None
    for item in items:
        must |= item.must
        ceiling = (
            set(item.ceiling) if ceiling is None else ceiling & item.ceiling
        )
    assert ceiling is not None
    conflicts = sorted(must - ceiling)
    if conflicts:
        return CompositionVerdict(False, None, conflicts)
    combined = CapabilityPolicy(
        name="⊗".join(item.name for item in items),
        must=frozenset(must),
        may=frozenset(ceiling - must),
    )
    return CompositionVerdict(True, combined)


def to_semiring_value(
    policy_: CapabilityPolicy, semiring: SetSemiring
) -> Tuple[Profile, Profile]:
    """The policy's denotation in the Set semiring: the interval
    ``(floor, ceiling)`` of its admissibility lattice.

    Composition of intervals is componentwise: floors join (∪ = the
    semiring ``+``) and ceilings meet (∩ = the semiring ``×``) — the
    verdict of :func:`compose_policies` restated algebraically.  The
    function checks the policy fits the semiring's universe.
    """
    if not policy_.ceiling <= semiring.universe:
        unknown = sorted(policy_.ceiling - semiring.universe)
        raise CapabilityError(
            f"policy {policy_.name!r} mentions capabilities outside the "
            f"universe: {unknown}"
        )
    return policy_.floor, policy_.ceiling


def compose_in_semiring(
    policies: Iterable[CapabilityPolicy], semiring: SetSemiring
) -> Tuple[Profile, Profile, bool]:
    """Compose via semiring operations; returns (floor, ceiling, ok).

    Cross-checks :func:`compose_policies`: ``ok`` iff floor ⊆ ceiling.
    """
    floor = semiring.zero
    ceiling = semiring.one
    for item in policies:
        item_floor, item_ceiling = to_semiring_value(item, semiring)
        floor = semiring.plus(floor, item_floor)       # ∪ of musts
        ceiling = semiring.times(ceiling, item_ceiling)  # ∩ of ceilings
    return floor, ceiling, semiring.leq(floor, ceiling)
