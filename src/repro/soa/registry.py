"""A UDDI-like service registry (paper Sec. 4, step 2).

"Providers publish QoS-enabled web services by registering them at the
UDDI registry."  In-memory, indexed by operation name, provider and tag;
supports publish / find / unpublish — the discovery substrate the broker
queries during negotiation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .service import ServiceDescription


class RegistryError(Exception):
    """Raised on duplicate publications or unknown lookups."""


class ServiceRegistry:
    """Publication and discovery of service descriptions."""

    def __init__(self) -> None:
        self._by_id: Dict[str, ServiceDescription] = {}
        self._by_operation: Dict[str, Set[str]] = {}
        self._by_provider: Dict[str, Set[str]] = {}
        self._by_tag: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def publish(self, description: ServiceDescription) -> None:
        """Register a description; service ids are unique."""
        service_id = description.service_id
        if service_id in self._by_id:
            raise RegistryError(f"service {service_id!r} already published")
        self._by_id[service_id] = description
        self._by_operation.setdefault(
            description.interface.operation, set()
        ).add(service_id)
        self._by_provider.setdefault(description.provider, set()).add(
            service_id
        )
        for tag in description.tags:
            self._by_tag.setdefault(tag, set()).add(service_id)

    def unpublish(self, service_id: str) -> ServiceDescription:
        """Remove a description, returning it."""
        try:
            description = self._by_id.pop(service_id)
        except KeyError:
            raise RegistryError(f"service {service_id!r} not published") from None
        self._by_operation[description.interface.operation].discard(service_id)
        self._by_provider[description.provider].discard(service_id)
        for tag in description.tags:
            self._by_tag.get(tag, set()).discard(service_id)
        return description

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def get(self, service_id: str) -> ServiceDescription:
        try:
            return self._by_id[service_id]
        except KeyError:
            raise RegistryError(f"service {service_id!r} not published") from None

    def find(
        self,
        operation: Optional[str] = None,
        provider: Optional[str] = None,
        tag: Optional[str] = None,
        requires_attribute: Optional[str] = None,
    ) -> List[ServiceDescription]:
        """All descriptions matching every given criterion (AND)."""
        candidates: Optional[Set[str]] = None

        def narrow(ids: Iterable[str]) -> None:
            nonlocal candidates
            id_set = set(ids)
            candidates = id_set if candidates is None else candidates & id_set

        if operation is not None:
            narrow(self._by_operation.get(operation, set()))
        if provider is not None:
            narrow(self._by_provider.get(provider, set()))
        if tag is not None:
            narrow(self._by_tag.get(tag, set()))
        if candidates is None:
            candidates = set(self._by_id)

        results = [self._by_id[sid] for sid in candidates]
        if requires_attribute is not None:
            results = [
                d
                for d in results
                if requires_attribute in d.qos.attributes()
            ]
        return sorted(results, key=lambda d: d.service_id)

    def operations(self) -> List[str]:
        return sorted(
            op for op, ids in self._by_operation.items() if ids
        )

    def providers(self) -> List[str]:
        return sorted(p for p, ids in self._by_provider.items() if ids)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._by_id
