"""A UDDI-like service registry (paper Sec. 4, step 2).

"Providers publish QoS-enabled web services by registering them at the
UDDI registry."  In-memory, indexed by operation name, provider and tag;
supports publish / find / unpublish — the discovery substrate the broker
queries during negotiation.

Dependable-matchmaking extensions (ROADMAP item 2, the resilience
layer):

* **leases** — a publication may carry a time-to-live; providers renew
  it by heartbeating (:meth:`ServiceRegistry.renew_lease`) and silently
  crashed providers age out of discovery instead of attracting doomed
  negotiations.  Expiry is lazy (checked on every lookup) against an
  injected clock, so tests control time exactly.
* **quarantine** — a health monitor can take a provider out of
  matchmaking (:meth:`ServiceRegistry.quarantine`) and re-admit it on
  recovery (:meth:`ServiceRegistry.reinstate`) without touching the
  publications themselves.
* **availability gates** — pluggable per-description predicates
  (circuit breakers, maintenance windows) consulted by :meth:`find`;
  any gate answering ``False`` hides the description from selection.

All three act on *discovery only*: ``get`` still resolves a quarantined
or gated service by id (an existing SLA keeps working), and
``find(include_unavailable=True)`` sees everything that has not expired.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from ..dependability.metrics import ObservationWindow
from ..telemetry import get_events, get_registry
from .service import ServiceDescription

#: A pluggable availability predicate: ``False`` hides the description
#: from discovery (``find``), nothing else.  Gates may be stateful —
#: a half-open circuit breaker consumes a probe slot when it admits.
AvailabilityGate = Callable[[ServiceDescription], bool]


class RegistryError(Exception):
    """Raised on duplicate publications or unknown lookups."""


class ServiceRegistry:
    """Publication and discovery of service descriptions.

    ``clock`` (default ``time.monotonic``) timestamps leases; inject a
    manual clock for deterministic expiry tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._by_id: Dict[str, ServiceDescription] = {}
        self._by_operation: Dict[str, Set[str]] = {}
        self._by_provider: Dict[str, Set[str]] = {}
        self._by_tag: Dict[str, Set[str]] = {}
        self._clock = clock if clock is not None else time.monotonic
        #: service id → absolute expiry time (only leased publications).
        self._lease_deadline: Dict[str, float] = {}
        self._quarantined: Set[str] = set()
        self._gates: List[AvailabilityGate] = []
        #: service id → [attempts, failures]; delivered-quality evidence
        #: the SLO analytics' adaptive buffers consume.  Survives
        #: unpublication on purpose — a provider's history is about the
        #: provider, not the publication.
        self._observations: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def publish(
        self,
        description: ServiceDescription,
        lease_s: Optional[float] = None,
    ) -> None:
        """Register a description; service ids are unique.

        ``lease_s`` gives the publication a time-to-live: unless renewed
        (:meth:`renew_lease`) within that many seconds it expires and the
        id becomes free to re-register.
        """
        if lease_s is not None and lease_s <= 0:
            raise RegistryError("lease_s must be positive (or None)")
        self._expire_due()
        service_id = description.service_id
        if service_id in self._by_id:
            raise RegistryError(f"service {service_id!r} already published")
        self._by_id[service_id] = description
        self._by_operation.setdefault(
            description.interface.operation, set()
        ).add(service_id)
        self._by_provider.setdefault(description.provider, set()).add(
            service_id
        )
        for tag in description.tags:
            self._by_tag.setdefault(tag, set()).add(service_id)
        if lease_s is not None:
            self._lease_deadline[service_id] = self._clock() + lease_s

    def unpublish(self, service_id: str) -> ServiceDescription:
        """Remove a description, returning it."""
        self._expire_due()
        return self._remove(service_id)

    def _remove(self, service_id: str) -> ServiceDescription:
        try:
            description = self._by_id.pop(service_id)
        except KeyError:
            raise RegistryError(f"service {service_id!r} not published") from None
        self._by_operation[description.interface.operation].discard(service_id)
        self._by_provider[description.provider].discard(service_id)
        for tag in description.tags:
            self._by_tag.get(tag, set()).discard(service_id)
        self._lease_deadline.pop(service_id, None)
        return description

    # ------------------------------------------------------------------
    # Leases (heartbeats)
    # ------------------------------------------------------------------

    def renew_lease(self, service_id: str, lease_s: float) -> float:
        """Heartbeat one publication: push its expiry ``lease_s`` past
        *now*; returns the new absolute deadline.  Renewing an unleased
        publication attaches a lease to it."""
        self._expire_due()
        if service_id not in self._by_id:
            raise RegistryError(f"service {service_id!r} not published")
        if lease_s <= 0:
            raise RegistryError("lease_s must be positive")
        deadline = self._clock() + lease_s
        self._lease_deadline[service_id] = deadline
        return deadline

    def lease_remaining(self, service_id: str) -> Optional[float]:
        """Seconds until this publication expires; ``None`` = unleased."""
        self._expire_due()
        if service_id not in self._by_id:
            raise RegistryError(f"service {service_id!r} not published")
        deadline = self._lease_deadline.get(service_id)
        if deadline is None:
            return None
        return max(0.0, deadline - self._clock())

    def expire_leases(self) -> List[str]:
        """Sweep expired leases now; returns the removed service ids."""
        return self._expire_due()

    def _expire_due(self) -> List[str]:
        if not self._lease_deadline:
            return []
        now = self._clock()
        due = [
            service_id
            for service_id, deadline in self._lease_deadline.items()
            if deadline <= now
        ]
        for service_id in due:
            self._remove(service_id)
            get_events().emit(
                "registry.lease-expired", service_id=service_id
            )
        if due:
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "registry_leases_expired_total",
                    "Publications dropped after their lease ran out.",
                ).inc(len(due))
        return due

    # ------------------------------------------------------------------
    # Quarantine (health-checked matchmaking)
    # ------------------------------------------------------------------

    def quarantine(self, provider: str) -> None:
        """Hide every publication of ``provider`` from discovery."""
        self._quarantined.add(provider)

    def reinstate(self, provider: str) -> None:
        """Re-admit a quarantined provider to discovery."""
        self._quarantined.discard(provider)

    def quarantined(self) -> frozenset:
        return frozenset(self._quarantined)

    def is_quarantined(self, provider: str) -> bool:
        return provider in self._quarantined

    # ------------------------------------------------------------------
    # Availability gates (circuit breakers etc.)
    # ------------------------------------------------------------------

    def add_gate(self, gate: AvailabilityGate) -> None:
        if gate not in self._gates:
            self._gates.append(gate)

    def remove_gate(self, gate: AvailabilityGate) -> None:
        if gate in self._gates:
            self._gates.remove(gate)

    def _admitted(self, description: ServiceDescription) -> bool:
        if description.provider in self._quarantined:
            return False
        return all(gate(description) for gate in self._gates)

    # ------------------------------------------------------------------
    # Delivered-quality observations (SLO analytics evidence)
    # ------------------------------------------------------------------

    def record_outcome(self, service_id: str, success: bool) -> None:
        """Count one delivered invocation outcome for ``service_id``.

        Unknown ids are accepted — execution may outlive publication.
        """
        counts = self._observations.setdefault(service_id, [0, 0])
        counts[0] += 1
        if not success:
            counts[1] += 1

    def record_observations(
        self, service_id: str, attempts: int, failures: int
    ) -> None:
        """Fold a pre-counted window (e.g. imported history) into the
        ledger."""
        if attempts < 0 or failures < 0 or failures > attempts:
            raise RegistryError("need 0 ≤ failures ≤ attempts")
        counts = self._observations.setdefault(service_id, [0, 0])
        counts[0] += attempts
        counts[1] += failures

    def ingest_report(self, report: Any) -> int:
        """Fold an :class:`~repro.soa.execution.ExecutionReport`'s
        per-service outcomes into the observation ledger; returns how
        many outcomes were counted."""
        counted = 0
        for outcome in report.outcomes:
            self.record_outcome(outcome.service_id, outcome.success)
            counted += 1
        return counted

    def observation_window(self, service_id: str) -> ObservationWindow:
        """Evidence for one service (empty window when none recorded —
        see the :class:`ObservationWindow` no-data convention)."""
        attempts, failures = self._observations.get(service_id, (0, 0))
        return ObservationWindow(attempts=attempts, failures=failures)

    def observation_windows(self) -> Dict[str, ObservationWindow]:
        """All services with recorded evidence."""
        return {
            service_id: ObservationWindow(
                attempts=counts[0], failures=counts[1]
            )
            for service_id, counts in self._observations.items()
        }

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def get(self, service_id: str) -> ServiceDescription:
        self._expire_due()
        try:
            return self._by_id[service_id]
        except KeyError:
            raise RegistryError(f"service {service_id!r} not published") from None

    def find(
        self,
        operation: Optional[str] = None,
        provider: Optional[str] = None,
        tag: Optional[str] = None,
        requires_attribute: Optional[str] = None,
        include_unavailable: bool = False,
    ) -> List[ServiceDescription]:
        """All descriptions matching every given criterion (AND).

        Quarantined providers and gate-refused descriptions are hidden
        unless ``include_unavailable`` — expired leases are gone either
        way (an expired publication no longer exists).
        """
        self._expire_due()
        candidates: Optional[Set[str]] = None

        def narrow(ids: Iterable[str]) -> None:
            nonlocal candidates
            id_set = set(ids)
            candidates = id_set if candidates is None else candidates & id_set

        if operation is not None:
            narrow(self._by_operation.get(operation, set()))
        if provider is not None:
            narrow(self._by_provider.get(provider, set()))
        if tag is not None:
            narrow(self._by_tag.get(tag, set()))
        if candidates is None:
            candidates = set(self._by_id)

        results = [self._by_id[sid] for sid in candidates]
        if requires_attribute is not None:
            results = [
                d
                for d in results
                if requires_attribute in d.qos.attributes()
            ]
        # Sort before gating: stateful gates (half-open breakers hand
        # out probe slots) must see candidates in a deterministic order.
        results.sort(key=lambda d: d.service_id)
        if not include_unavailable:
            results = [d for d in results if self._admitted(d)]
        return results

    def operations(self) -> List[str]:
        self._expire_due()
        return sorted(
            op for op, ids in self._by_operation.items() if ids
        )

    def providers(self) -> List[str]:
        self._expire_due()
        return sorted(p for p, ids in self._by_provider.items() if ids)

    def __len__(self) -> int:
        self._expire_due()
        return len(self._by_id)

    def __contains__(self, service_id: str) -> bool:
        self._expire_due()
        return service_id in self._by_id
