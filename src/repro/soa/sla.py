"""Service Level Agreements (paper Sec. 4, computation step 5).

A successful negotiation binds client and provider(s) to an agreed
constraint — the final store of the nmsccp run — and its consistency
level.  The SLA also records the optimal resource assignment, so the
runtime monitor knows which operating point was promised.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..constraints.constraint import SoftConstraint
from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring

_sla_ids = itertools.count(1)


class SLAError(Exception):
    """Raised on malformed agreements."""


@dataclass
class SLA:
    """A signed agreement between a client and one or more providers."""

    client: str
    providers: Tuple[str, ...]
    attribute: str
    semiring: Semiring
    agreed_constraint: SoftConstraint
    agreed_level: Any
    resource_assignment: Dict[str, Any] = field(default_factory=dict)
    service_ids: Tuple[str, ...] = ()
    sla_id: int = field(default_factory=lambda: next(_sla_ids))
    created_at: int = 0
    active: bool = True

    def __post_init__(self) -> None:
        if not self.providers:
            raise SLAError("an SLA needs at least one provider")
        if not self.semiring.is_element(self.agreed_level):
            raise SLAError(
                f"agreed level {self.agreed_level!r} is not a "
                f"{self.semiring.name} element"
            )

    def as_store(self, backend: str | None = None) -> ConstraintStore:
        """The agreement as a constraint store — the final σ of the
        negotiation, rebuilt so later checks (monitoring, renegotiation)
        can reuse the store algebra: ``entails`` for "is this tightening
        already guaranteed?", ``tell`` for drafting amendments.
        """
        return empty_store(self.semiring, backend=backend).tell(
            self.agreed_constraint
        )

    def satisfied_by(self, observed_level: Any) -> bool:
        """Whether an observed quality honours the agreement.

        The observation satisfies the SLA when it is at least as good as
        the agreed level in the semiring order.
        """
        return self.semiring.geq(observed_level, self.agreed_level)

    def terminate(self) -> None:
        self.active = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SLA#{self.sla_id}({self.client!r} ↔ {self.providers!r}, "
            f"{self.attribute}={self.agreed_level!r})"
        )


@dataclass(frozen=True)
class SLAViolation:
    """One detected breach of an SLA."""

    sla_id: int
    attribute: str
    expected: Any
    observed: Any
    at_execution: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"violation of SLA#{self.sla_id} [{self.attribute}] at "
            f"execution {self.at_execution}: observed {self.observed!r}, "
            f"agreed {self.expected!r} {self.detail}"
        )


class SLARepository:
    """All agreements brokered so far, queryable by party."""

    def __init__(self) -> None:
        self._slas: List[SLA] = []

    def add(self, sla: SLA) -> None:
        self._slas.append(sla)

    def active(self) -> List[SLA]:
        return [sla for sla in self._slas if sla.active]

    def for_client(self, client: str) -> List[SLA]:
        return [sla for sla in self._slas if sla.client == client]

    def for_provider(self, provider: str) -> List[SLA]:
        return [sla for sla in self._slas if provider in sla.providers]

    def __len__(self) -> int:
        return len(self._slas)

    def __iter__(self):
        return iter(self._slas)
