"""Service-oriented architecture substrate (paper Sec. 3–4).

Service descriptions and QoS documents, a UDDI-like registry, a SOAP-like
message bus, the broker-orchestrator with its embedded soft-constraint
solver, SLA objects, composition patterns with per-attribute QoS
aggregation, a fault-injecting execution engine and a runtime SLA monitor.
"""

from .broker import (
    Broker,
    BrokerError,
    CandidateEvaluation,
    ClientRequest,
    MulticriteriaResult,
    NegotiationResult,
    ParetoPoint,
)
from .allocation import (
    DEFAULT_CONGESTION_GAMMA,
    AllocationError,
    AllocationInfo,
    AllocationPolicy,
    FairAllocation,
    GreedyAllocation,
    resolve_allocation_policy,
    satisfaction_score,
)
from .composition import (
    AGGREGATION_RULES,
    AggregationRule,
    Choose,
    CompositionError,
    Invoke,
    Pipeline,
    Plan,
    Split,
    aggregate,
    aggregate_many,
    pipeline,
    plan_depth,
)
from .execution import ExecutionEngine, ExecutionReport
from .faults import (
    BernoulliCrash,
    BurstOutage,
    FaultInjector,
    FaultModel,
    InjectedFault,
    RandomDelay,
)
from .manager import (
    DependabilityManager,
    ManagementEvent,
    ManagementOutcome,
    ManagerError,
)
from .messages import Envelope, MessageBus, MessageError, request_reply
from .monitor import SLAMonitor
from .negotiation import (
    NegotiationOutcome,
    Party,
    fuzzy_agreement,
    iterative_concession,
    merged_policy,
    negotiate,
)
from .qos import (
    AVAILABILITY,
    COST,
    DOWNTIME,
    FUZZY_RELIABILITY,
    LATENCY,
    RELIABILITY,
    SECURITY_RIGHTS,
    STANDARD_ATTRIBUTES,
    QoSAttribute,
    QoSDocument,
    QoSError,
    QoSPolicy,
    compile_document,
    compile_policy,
    resolve_attribute,
)
from .capabilities import (
    CapabilityError,
    CapabilityPolicy,
    CompositionVerdict,
    compose_in_semiring,
    compose_policies,
    policy,
    to_semiring_value,
)
from .query import (
    QueryAnswer,
    QueryEngine,
    QueryError,
    QueryMatch,
    ServiceQuery,
)
from .registry import RegistryError, ServiceRegistry
from .strategies import (
    NegotiationRound,
    ProtocolOutcome,
    StrategyError,
    Tactic,
    alternating_offers,
    boulware,
    conceder,
    concession_index,
)
from .service import (
    InvocationOutcome,
    Service,
    ServiceDescription,
    ServiceError,
    ServiceInterface,
    ServicePool,
)
from .sla import SLA, SLAError, SLARepository, SLAViolation

__all__ = [
    # qos
    "QoSAttribute",
    "QoSDocument",
    "QoSPolicy",
    "QoSError",
    "compile_document",
    "compile_policy",
    "resolve_attribute",
    "STANDARD_ATTRIBUTES",
    "AVAILABILITY",
    "RELIABILITY",
    "COST",
    "LATENCY",
    "DOWNTIME",
    "FUZZY_RELIABILITY",
    "SECURITY_RIGHTS",
    # service / registry
    "Service",
    "ServiceDescription",
    "ServiceInterface",
    "ServicePool",
    "ServiceError",
    "InvocationOutcome",
    "ServiceRegistry",
    "RegistryError",
    # messages
    "MessageBus",
    "Envelope",
    "MessageError",
    "request_reply",
    # negotiation / broker
    "Party",
    "negotiate",
    "NegotiationOutcome",
    "fuzzy_agreement",
    "iterative_concession",
    "merged_policy",
    "Broker",
    "BrokerError",
    "AllocationError",
    "AllocationInfo",
    "AllocationPolicy",
    "FairAllocation",
    "GreedyAllocation",
    "DEFAULT_CONGESTION_GAMMA",
    "resolve_allocation_policy",
    "satisfaction_score",
    "ClientRequest",
    "CandidateEvaluation",
    "NegotiationResult",
    "MulticriteriaResult",
    "ParetoPoint",
    # sla
    "SLA",
    "SLAError",
    "SLAViolation",
    "SLARepository",
    # composition
    "Plan",
    "Invoke",
    "Pipeline",
    "Split",
    "Choose",
    "pipeline",
    "plan_depth",
    "aggregate",
    "aggregate_many",
    "AggregationRule",
    "AGGREGATION_RULES",
    "CompositionError",
    # execution / faults / monitoring
    "ExecutionEngine",
    "ExecutionReport",
    "FaultInjector",
    "FaultModel",
    "InjectedFault",
    "BernoulliCrash",
    "BurstOutage",
    "RandomDelay",
    "SLAMonitor",
    # query engine (paper future work)
    "ServiceQuery",
    "QueryEngine",
    "QueryAnswer",
    "QueryMatch",
    "QueryError",
    # capability policies
    "CapabilityPolicy",
    "CapabilityError",
    "CompositionVerdict",
    "policy",
    "compose_policies",
    "compose_in_semiring",
    "to_semiring_value",
    # self-healing manager
    "DependabilityManager",
    "ManagementOutcome",
    "ManagementEvent",
    "ManagerError",
    # concession tactics
    "Tactic",
    "boulware",
    "conceder",
    "concession_index",
    "alternating_offers",
    "ProtocolOutcome",
    "NegotiationRound",
    "StrategyError",
]
