"""A SOAP-like in-process message bus.

The paper keeps the transport stack (SOAP/UDDI) intact and treats the
solver as "a transparent component"; we simulate the transport with an
in-process bus so the broker, clients and providers exchange explicit,
inspectable envelopes.  Deterministic and synchronous-by-default: a
request is delivered when its recipient polls, which makes negotiation
tests reproducible while keeping the distributed shape of the protocol.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

_message_ids = itertools.count(1)


class MessageError(Exception):
    """Raised on unknown endpoints or correlation failures."""


@dataclass(frozen=True)
class Envelope:
    """A message envelope (the stand-in for a SOAP envelope).

    ``correlation_id`` links a reply to its request; ``header`` carries
    protocol metadata (e.g. required QoS, negotiation round), ``body``
    the payload.
    """

    message_id: int
    sender: str
    recipient: str
    kind: str
    body: Any
    header: Dict[str, Any] = field(default_factory=dict)
    correlation_id: Optional[int] = None

    def reply(self, kind: str, body: Any, header: Optional[dict] = None) -> "Envelope":
        """Build the response envelope correlated to this request."""
        return Envelope(
            message_id=next(_message_ids),
            sender=self.recipient,
            recipient=self.sender,
            kind=kind,
            body=body,
            header=dict(header or {}),
            correlation_id=self.message_id,
        )


class MessageBus:
    """Named mailboxes plus an optional delivery journal."""

    def __init__(self, keep_journal: bool = True) -> None:
        self._mailboxes: Dict[str, Deque[Envelope]] = {}
        self._journal: List[Envelope] = []
        self.keep_journal = keep_journal

    def register(self, endpoint: str) -> None:
        """Create a mailbox; re-registering is a no-op."""
        self._mailboxes.setdefault(endpoint, deque())

    def endpoints(self) -> List[str]:
        return sorted(self._mailboxes)

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        body: Any,
        header: Optional[dict] = None,
        correlation_id: Optional[int] = None,
    ) -> Envelope:
        """Enqueue an envelope for ``recipient``; returns it."""
        if recipient not in self._mailboxes:
            raise MessageError(f"unknown endpoint {recipient!r}")
        envelope = Envelope(
            message_id=next(_message_ids),
            sender=sender,
            recipient=recipient,
            kind=kind,
            body=body,
            header=dict(header or {}),
            correlation_id=correlation_id,
        )
        self._deliver(envelope)
        return envelope

    def post(self, envelope: Envelope) -> None:
        """Enqueue a pre-built envelope (e.g. from ``Envelope.reply``)."""
        if envelope.recipient not in self._mailboxes:
            raise MessageError(f"unknown endpoint {envelope.recipient!r}")
        self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        self._mailboxes[envelope.recipient].append(envelope)
        if self.keep_journal:
            self._journal.append(envelope)

    def receive(self, endpoint: str) -> Optional[Envelope]:
        """Pop the next envelope for ``endpoint`` (None when empty)."""
        try:
            mailbox = self._mailboxes[endpoint]
        except KeyError:
            raise MessageError(f"unknown endpoint {endpoint!r}") from None
        return mailbox.popleft() if mailbox else None

    def receive_all(self, endpoint: str) -> List[Envelope]:
        """Drain the mailbox."""
        drained: List[Envelope] = []
        while True:
            envelope = self.receive(endpoint)
            if envelope is None:
                return drained
            drained.append(envelope)

    def pending(self, endpoint: str) -> int:
        return len(self._mailboxes.get(endpoint, ()))

    @property
    def journal(self) -> List[Envelope]:
        return list(self._journal)

    def journal_kinds(self) -> List[str]:
        """The sequence of message kinds exchanged — protocol shape."""
        return [envelope.kind for envelope in self._journal]


def request_reply(
    bus: MessageBus,
    sender: str,
    recipient: str,
    kind: str,
    body: Any,
    handler: Callable[[Envelope], Envelope],
    header: Optional[dict] = None,
) -> Envelope:
    """Synchronous request/reply convenience: send, let ``handler``
    process the delivered request, return the correlated reply."""
    request = bus.send(sender, recipient, kind, body, header)
    delivered = bus.receive(recipient)
    if delivered is None or delivered.message_id != request.message_id:
        raise MessageError("request was not delivered in order")
    reply = handler(delivered)
    if reply.correlation_id != request.message_id:
        raise MessageError("reply does not correlate to the request")
    bus.post(reply)
    answer = bus.receive(sender)
    if answer is None:
        raise MessageError("reply was not delivered")
    return answer
