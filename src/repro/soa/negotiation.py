"""Negotiation primitives: nmsccp agents meeting on the broker's store.

Implements the paper's Sec. 4 picture: "Two nmsccp agents P (provider)
and C (client) can be concurrently executed on the broker and the tell
operator can be used to add their requirements to the store."  A
bilateral negotiation tells both policies under their checked arrows and
then has each party re-check the merged store; the outcome is the final
store (the draft SLA body) and its consistency (the agreed level), plus
an exhaustive-exploration certificate that the outcome is
scheduler-independent.

``fuzzy_agreement`` reproduces the graphical intersection of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..constraints.constraint import ConstantConstraint, SoftConstraint
from ..constraints.operations import combine
from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring
from ..sccp.check import CheckSpec
from ..sccp.interpreter import Status, explore, run
from ..sccp.syntax import SUCCESS, Agent, parallel, sequence, tell
from ..sccp.traces import Trace


@dataclass
class Party:
    """One negotiating side: a name, its policy constraints and the
    acceptance interval it insists on (its checked arrow)."""

    name: str
    constraints: List[SoftConstraint]
    acceptance: Optional[CheckSpec] = None

    def agent(self, closing: Agent = SUCCESS) -> Agent:
        """tell every policy (checked on the resulting store), then close.

        The acceptance interval guards the *last* tell, mirroring the
        paper's agents whose final transition carries the interval.
        """
        if not self.constraints:
            return closing
        actions = [tell(c) for c in self.constraints[:-1]]
        actions.append(tell(self.constraints[-1], self.acceptance))
        return sequence(*actions, closing)


@dataclass
class NegotiationOutcome:
    """Result of a bilateral (or multi-party) negotiation."""

    success: bool
    store: ConstraintStore
    agreed_level: Any
    parties: Tuple[str, ...]
    trace: Optional[Trace] = None
    scheduler_independent: Optional[bool] = None
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "agreement" if self.success else "no agreement"
        return (
            f"NegotiationOutcome({verdict} among {self.parties!r}, "
            f"level={self.agreed_level!r})"
        )


def negotiate(
    parties: List[Party],
    semiring: Semiring,
    initial_store: Optional[ConstraintStore] = None,
    verify_scheduler_independence: bool = True,
    max_steps: int = 10_000,
    store_backend: Optional[str] = None,
) -> NegotiationOutcome:
    """Run all parties' agents in parallel on one store.

    Success requires every agent to terminate (the parallel composition
    reduces to ``success``); the agreed level is the final ``σ ⇓∅``.
    With ``verify_scheduler_independence`` the full configuration graph
    is explored and the certificate reports whether *every* interleaving
    reaches the same verdict.  ``store_backend`` picks the store
    representation when no ``initial_store`` is given.
    """
    if not parties:
        raise ValueError("negotiate() needs at least one party")
    store = initial_store or empty_store(semiring, backend=store_backend)
    agents = parallel(*(party.agent() for party in parties))
    result = run(agents, store=store, max_steps=max_steps)

    certificate: Optional[bool] = None
    if verify_scheduler_independence:
        exploration = explore(agents, store=store)
        if result.status is Status.SUCCESS:
            certificate = exploration.always_succeeds
        else:
            certificate = exploration.never_succeeds

    return NegotiationOutcome(
        success=result.status is Status.SUCCESS,
        store=result.store,
        agreed_level=result.store.consistency(),
        parties=tuple(party.name for party in parties),
        trace=result.trace,
        scheduler_independent=certificate,
        detail=f"run ended with {result.status.value}",
    )


def fuzzy_agreement(
    provider_constraint: SoftConstraint,
    client_constraint: SoftConstraint,
) -> Tuple[SoftConstraint, Any]:
    """The Fig. 5 construction: combine both fuzzy policies and find the
    best shared level.

    Returns ``(combined, blevel)`` — the thick ``min`` line of the figure
    and the ``max`` of that line (0.5 at the intersection in the paper's
    drawing).
    """
    combined = provider_constraint.combine(client_constraint)
    return combined, combined.consistency()


def iterative_concession(
    semiring: Semiring,
    offers: List[SoftConstraint],
    demand: SoftConstraint,
    acceptance: CheckSpec,
) -> Tuple[Optional[int], List[Any]]:
    """A simple concession protocol on top of the store algebra.

    The provider tries its offers in order (most favourable first); for
    each, the broker builds ``offer ⊗ demand`` and checks the client's
    acceptance interval.  Returns the index of the first accepted offer
    (or ``None``) and the consistency trail — the negotiation curve a
    dashboard would plot.
    """
    trail: List[Any] = []
    for index, offer in enumerate(offers):
        store = empty_store(semiring).tell(offer).tell(demand)
        trail.append(store.consistency())
        if acceptance.holds(store):
            return index, trail
    return None, trail


def merged_policy(
    semiring: Semiring, constraints: List[SoftConstraint]
) -> SoftConstraint:
    """The single constraint a finished negotiation signs off on."""
    if not constraints:
        return ConstantConstraint(semiring, semiring.one)
    return combine(constraints, semiring=semiring)
