"""The SOA query engine (paper Sec. 8, stated future work).

"The main results will be the development of a SOA query engine, that
will use the constraint satisfaction solver to select which available
service will satisfy a given query.  It will also look for complex
services by composing together simpler service interfaces."

A :class:`ServiceQuery` states *what* the client has and wants (data
types consumed/produced, via the interfaces' ``inputs``/``outputs``) and
*how well* it must be delivered (a QoS attribute, an optional minimum
level).  The engine:

1. matches single services whose interface fits;
2. when allowed, chains services into pipelines (type-directed search up
   to ``max_chain`` stages) whose interfaces compose;
3. scores every candidate plan with the attribute's semiring — each
   service contributes its best offer level (an SCSP solve over its QoS
   document), aggregated along the plan by the composition rules;
4. ranks matches best-first in the semiring order and applies the
   minimum-level cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

from ..semirings.base import Semiring
from ..solver import SCSP, solve
from ..caching import DEFAULT_CACHE_SIZE, LRUCache
from .capabilities import CapabilityPolicy, compose_policies
from .composition import AGGREGATION_RULES, AggregationRule, Invoke, Pipeline, Plan
from .qos import compile_document, resolve_attribute
from .registry import ServiceRegistry
from .service import ServiceDescription


class QueryError(Exception):
    """Raised on unanswerable or malformed queries."""


@dataclass
class ServiceQuery:
    """A declarative request against the registry.

    Exactly one of ``operation`` (name-directed) or ``produces``
    (type-directed) must be given.  Type-directed queries may also state
    ``consumes`` — the data the client can supply — and permit pipelines
    via ``max_chain`` ≥ 2.
    """

    attribute: str
    operation: Optional[str] = None
    produces: Optional[Sequence[str]] = None
    consumes: Sequence[str] = ()
    minimum_level: Any = None
    max_chain: int = 1
    tag: Optional[str] = None
    client_capabilities: Optional[CapabilityPolicy] = None

    def __post_init__(self) -> None:
        if (self.operation is None) == (self.produces is None):
            raise QueryError(
                "a query names either an operation or the outputs it "
                "needs (produces=…), not both"
            )
        if self.max_chain < 1:
            raise QueryError("max_chain must be at least 1")


@dataclass
class QueryMatch:
    """One candidate answer: a plan with its aggregated QoS level."""

    plan: Plan
    level: Any
    providers: Tuple[str, ...]
    stages: int

    def describe(self) -> str:
        return f"{self.plan.describe()} @ {self.level!r}"


@dataclass
class QueryAnswer:
    """Ranked matches (semiring-best first)."""

    query: ServiceQuery
    matches: List[QueryMatch]
    candidates_considered: int = 0

    @property
    def best(self) -> Optional[QueryMatch]:
        return self.matches[0] if self.matches else None

    @property
    def satisfiable(self) -> bool:
        return bool(self.matches)


class QueryEngine:
    """Answers :class:`ServiceQuery` objects against a registry.

    The per-(service, attribute) offer-level memo used to grow without
    bound as the registry churned; it is now an LRU capped at
    ``cache_size`` entries, with hit/miss counters on the telemetry
    registry (``cache_hits_total{cache="query-offer-level"}``).
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.registry = registry
        self._level_cache = LRUCache(cache_size, name="query-offer-level")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(self, query: ServiceQuery) -> QueryAnswer:
        semiring = resolve_attribute(query.attribute).semiring()
        rule = AGGREGATION_RULES.get(query.attribute)
        if rule is None:
            raise QueryError(
                f"no aggregation rule for attribute {query.attribute!r}"
            )

        if query.operation is not None:
            plans = self._match_by_operation(query)
        else:
            plans = self._match_by_types(query)
        if query.client_capabilities is not None:
            plans = [
                plan
                for plan in plans
                if self._capabilities_compatible(plan, query)
            ]

        matches: List[QueryMatch] = []
        for plan in plans:
            level = self._score(plan, query.attribute, semiring, rule)
            if level is None:
                continue
            if query.minimum_level is not None and not semiring.geq(
                level, query.minimum_level
            ):
                continue
            providers = tuple(
                self.registry.get(service_id).provider
                for service_id in plan.services()
            )
            matches.append(
                QueryMatch(plan, level, providers, len(plan.services()))
            )

        ranked = self._rank(matches, semiring)
        return QueryAnswer(
            query=query, matches=ranked, candidates_considered=len(plans)
        )

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------

    def _match_by_operation(self, query: ServiceQuery) -> List[Plan]:
        descriptions = self.registry.find(
            operation=query.operation,
            tag=query.tag,
            requires_attribute=query.attribute,
        )
        return [Invoke(d.service_id) for d in descriptions]

    def _match_by_types(self, query: ServiceQuery) -> List[Plan]:
        """Type-directed search: chain services whose interfaces compose.

        A pipeline ``s1 ▶ … ▶ sn`` is a candidate when ``s1`` consumes
        only what the client supplies, each stage consumes only what the
        previous one produced (plus the client's inputs), and the final
        stage produces everything the query asks for.
        """
        wanted: Set[str] = set(query.produces or ())
        supplied: Set[str] = set(query.consumes)
        descriptions = [
            d
            for d in self.registry.find(
                tag=query.tag, requires_attribute=query.attribute
            )
        ]

        plans: List[Plan] = []

        def extend(
            chain: List[ServiceDescription],
            available: Set[str],
            previous_outputs: Set[str],
        ) -> None:
            if chain and wanted <= available:
                if len(chain) == 1:
                    plans.append(Invoke(chain[0].service_id))
                else:
                    plans.append(
                        Pipeline([Invoke(d.service_id) for d in chain])
                    )
                return  # a satisfied chain need not be extended
            if len(chain) >= query.max_chain:
                return
            used = {d.service_id for d in chain}
            for description in descriptions:
                if description.service_id in used:
                    continue
                needs = set(description.interface.inputs)
                if not needs <= available:
                    continue
                # a genuine pipeline stage consumes something the previous
                # stage produced — otherwise the prefix is dead weight
                if chain and not needs & previous_outputs:
                    continue
                extend(
                    chain + [description],
                    available | set(description.interface.outputs),
                    set(description.interface.outputs),
                )

        extend([], supplied, supplied)
        # deduplicate structurally identical plans
        unique: List[Plan] = []
        for plan in plans:
            if plan not in unique:
                unique.append(plan)
        return unique

    def _capabilities_compatible(
        self, plan: Plan, query: ServiceQuery
    ) -> bool:
        """Every stage's MUST/MAY policy must compose with the client's
        (paper Sec. 8: a candidate insisting on capabilities the client
        forbids — or vice versa — cannot be bound).  Stages publishing no
        policy are unconstrained."""
        policies = [query.client_capabilities]
        for service_id in plan.services():
            capability = self.registry.get(service_id).capabilities
            if capability is not None:
                policies.append(capability)
        return compose_policies(policies).compatible

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _offer_level(
        self, service_id: str, attribute: str, semiring: Semiring
    ) -> Optional[Any]:
        def compute() -> Optional[Any]:
            description = self.registry.get(service_id)
            constraints = compile_document(
                description.qos, attribute, semiring, {}
            )
            if not constraints:
                return None
            problem = SCSP(constraints, name=service_id)
            return solve(problem).blevel

        return self._level_cache.get_or_compute(
            (service_id, attribute), compute
        )

    def _score(
        self,
        plan: Plan,
        attribute: str,
        semiring: Semiring,
        rule: AggregationRule,
    ) -> Optional[Any]:
        levels = []
        for service_id in plan.services():
            level = self._offer_level(service_id, attribute, semiring)
            if level is None:
                return None
            levels.append(level)
        if len(levels) == 1:
            return levels[0]
        return rule.sequence(levels)

    @staticmethod
    def _rank(matches: List[QueryMatch], semiring: Semiring) -> List[QueryMatch]:
        """Best-first by repeated maximal extraction (handles partial
        orders); ties break toward shorter plans, then provider names."""
        remaining = sorted(
            matches, key=lambda m: (m.stages, m.providers)
        )
        ranked: List[QueryMatch] = []
        while remaining:
            best = remaining[0]
            for match in remaining[1:]:
                if semiring.gt(match.level, best.level):
                    best = match
            remaining.remove(best)
            ranked.append(best)
        return ranked
