"""Runtime SLA monitoring (paper Sec. 3: "this composition needs to be
monitored").

A monitor consumes execution reports, maintains sliding-window estimates
of the delivered quality, and raises :class:`~repro.soa.sla.SLAViolation`
records whenever the estimate drops below the agreed level.  Violations
can trigger a renegotiation callback — closing the loop the paper sketches
between negotiation (Sec. 4) and monitoring.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..constraints.constraint import SoftConstraint
from ..dependability.metrics import ObservationWindow
from ..telemetry import get_events, get_registry
from .execution import ExecutionReport
from .sla import SLA, SLAViolation


class SLAMonitor:
    """Sliding-window conformance checking of one SLA.

    ``attribute`` handling: ``availability``/``reliability`` compare the
    windowed success ratio against the agreed probability; ``latency``/
    ``cost``/``downtime`` compare the windowed mean against the agreed
    bound under the (inverted) Weighted order.  The semiring stored in
    the SLA decides the direction — no per-attribute special cases leak
    out of this class.
    """

    def __init__(
        self,
        sla: SLA,
        window: int = 20,
        min_samples: int = 5,
        on_violation: Optional[Callable[[SLAViolation], None]] = None,
        threshold: Optional[float] = None,
        registry: Optional[Any] = None,
        breakers: Optional[Any] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.sla = sla
        self.window = window
        self.min_samples = min(min_samples, window)
        self.on_violation = on_violation
        #: A :class:`~repro.resilience.breaker.BreakerRegistry` (or any
        #: object with ``record_violation``): every violation counts
        #: against the SLA's providers, so sustained quality breaches
        #: trip their breakers even when no hard fault ever fires.
        self.breakers = breakers
        #: Metrics sink.  ``None`` defers to the process-wide session at
        #: observation time, so a monitor built before telemetry was
        #: enabled still reports.
        self._registry = registry
        #: The enforced level.  Defaults to the SLA's agreed level; a
        #: client may monitor against a looser contractual floor instead
        #: (e.g. the minimum it asked the broker for), so that ordinary
        #: sampling noise below the *advertised* level is not a breach.
        self.threshold = (
            sla.agreed_level if threshold is None else threshold
        )
        if not sla.semiring.is_element(self.threshold):
            raise ValueError(
                f"threshold {self.threshold!r} is not a "
                f"{sla.semiring.name} level"
            )
        self._samples: Deque[ExecutionReport] = deque(maxlen=window)
        self.violations: List[SLAViolation] = []
        self._observed = 0
        #: Reports that arrived before the window held ``min_samples``
        #: entries.  These used to vanish silently; they are now counted
        #: here and in the ``sla_reports_total`` metric (phase="warmup").
        self.early_reports = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(self, report: ExecutionReport) -> Optional[SLAViolation]:
        """Record one run; returns a violation if this run trips one."""
        self._samples.append(report)
        self._observed += 1
        warming_up = len(self._samples) < self.min_samples
        if warming_up:
            self.early_reports += 1
        registry = self._registry or get_registry()
        if registry.enabled:
            registry.counter(
                "sla_reports_total",
                "Execution reports fed to SLA monitors.",
                labelnames=("attribute", "phase"),
            ).labels(
                self.sla.attribute, "warmup" if warming_up else "active"
            ).inc()
        if warming_up:
            return None
        observed_level = self.current_level()
        if observed_level is None:
            return None
        if self.sla.semiring.geq(observed_level, self.threshold):
            return None
        violation = SLAViolation(
            sla_id=self.sla.sla_id,
            attribute=self.sla.attribute,
            expected=self.threshold,
            observed=observed_level,
            at_execution=report.tick,
            detail=f"(window={len(self._samples)})",
        )
        self.violations.append(violation)
        if registry.enabled:
            registry.counter(
                "sla_violations_total",
                "SLA violations raised by monitors.",
                labelnames=("attribute",),
            ).labels(self.sla.attribute).inc()
            get_events().emit(
                "sla.violation",
                sla_id=self.sla.sla_id,
                attribute=self.sla.attribute,
                expected=self.threshold,
                observed=observed_level,
                tick=report.tick,
            )
        if self.breakers is not None:
            for provider in self.sla.providers:
                self.breakers.record_violation(provider)
        if self.on_violation is not None:
            self.on_violation(violation)
        return violation

    def observe_many(self, reports) -> List[SLAViolation]:
        found: List[SLAViolation] = []
        for report in reports:
            violation = self.observe(report)
            if violation is not None:
                found.append(violation)
        return found

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def current_level(self) -> Optional[float]:
        """The windowed estimate in the SLA's attribute units."""
        if not self._samples:
            return None
        attribute = self.sla.attribute
        if attribute in ("availability", "reliability", "fuzzy-reliability"):
            return sum(r.success for r in self._samples) / len(self._samples)
        if attribute == "latency":
            return sum(r.latency_ms for r in self._samples) / len(
                self._samples
            )
        if attribute in ("cost", "downtime"):
            # Per-run average of the additive metric actually charged:
            # each report sums its invoked services' advertised values
            # (``ExecutionReport.charge``) — latency is NOT a proxy.
            return sum(
                r.charge(attribute) for r in self._samples
            ) / len(self._samples)
        return None

    def observation_window(self) -> ObservationWindow:
        """The current window as an :class:`ObservationWindow` — the
        shape the SLO analytics' adaptive buffers consume (see
        :func:`repro.slo.effective_level`)."""
        return ObservationWindow(
            attempts=len(self._samples),
            failures=sum(1 for r in self._samples if not r.success),
        )

    @property
    def sample_count(self) -> int:
        return self._observed

    @property
    def in_breach(self) -> bool:
        """Whether the most recent estimate violates the agreement."""
        level = self.current_level()
        if level is None or len(self._samples) < self.min_samples:
            return False
        return not self.sla.semiring.geq(level, self.threshold)

    def violation_rate(self) -> float:
        if self._observed == 0:
            return 0.0
        return len(self.violations) / self._observed

    def covered_by_agreement(
        self, constraint: SoftConstraint, store_backend: Optional[str] = None
    ) -> bool:
        """Whether a proposed tightening is already guaranteed.

        Rebuilds the agreed store (``SLA.as_store``) and asks ``σ ⊑ c``
        through the store's solver-backed entailment; a ``True`` answer
        means a renegotiation for ``constraint`` would be a no-op, so the
        monitor can suppress the escalation.
        """
        return self.sla.as_store(backend=store_backend).entails(constraint)
