"""QoS attributes and provider QoS documents.

Providers advertise QoS through structured documents (the stand-in for
the XML policies of [26] in the paper — see DESIGN.md, substitutions).
Each document entry states a policy for one attribute, either as a
constant, an explicit value table, or a polynomial over resource
variables ("reliability = 5x + 80").  ``compile_document`` performs the
translation into soft constraints that the paper assigns to the broker's
solver ("the documents describing the QoS associated with a service need
to be translated into a soft constraint and added to the store").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints.constraint import FunctionConstraint, SoftConstraint
from ..constraints.polynomial import Polynomial, polynomial_constraint
from ..constraints.table import TableConstraint
from ..constraints.variables import Variable
from ..semirings.base import Semiring
from ..semirings.registry import get_semiring


class QoSError(Exception):
    """Raised on malformed QoS documents."""


@dataclass(frozen=True)
class QoSAttribute:
    """A named quality dimension with its natural cost model.

    ``semiring_name`` selects the instantiation (paper Sec. 4): additive
    metrics → Weighted, multiplicative → Probabilistic, concave → Fuzzy,
    feature sets → Set-based, crisp checks → Classical.
    """

    name: str
    semiring_name: str
    description: str = ""
    unit: str = ""

    def semiring(self, **kwargs) -> Semiring:
        return get_semiring(self.semiring_name, **kwargs)


#: The dependability-oriented attribute catalogue (paper Sec. 3 & 4).
AVAILABILITY = QoSAttribute(
    "availability",
    "probabilistic",
    "probability that the service is present and ready for use",
)
RELIABILITY = QoSAttribute(
    "reliability",
    "probabilistic",
    "probability of maintaining service and service quality",
)
COST = QoSAttribute(
    "cost", "weighted", "monetary cost of an invocation", unit="EUR"
)
LATENCY = QoSAttribute(
    "latency", "weighted", "end-to-end response time", unit="ms"
)
DOWNTIME = QoSAttribute(
    "downtime", "weighted", "expected hours of unavailability", unit="h"
)
FUZZY_RELIABILITY = QoSAttribute(
    "fuzzy-reliability",
    "fuzzy",
    "coarse low/medium/high reliability preference",
)
SECURITY_RIGHTS = QoSAttribute(
    "security-rights",
    "set",
    "set of security rights / time slots supported",
)

STANDARD_ATTRIBUTES: Dict[str, QoSAttribute] = {
    attribute.name: attribute
    for attribute in (
        AVAILABILITY,
        RELIABILITY,
        COST,
        LATENCY,
        DOWNTIME,
        FUZZY_RELIABILITY,
        SECURITY_RIGHTS,
    )
}


@dataclass
class QoSPolicy:
    """One attribute policy inside a QoS document.

    Exactly one of ``constant``, ``polynomial``, ``table`` or ``fn`` must
    be given.  ``variables`` declares the resource variables the policy
    ranges over, as ``name → domain`` (iterable of values).
    """

    attribute: str
    variables: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    constant: Any = None
    polynomial: Optional[Polynomial] = None
    table: Optional[Mapping[Tuple[Any, ...], Any]] = None
    fn: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        given = [
            kind
            for kind, value in (
                ("constant", self.constant),
                ("polynomial", self.polynomial),
                ("table", self.table),
                ("fn", self.fn),
            )
            if value is not None
        ]
        if len(given) != 1:
            raise QoSError(
                f"policy for {self.attribute!r} must define exactly one of "
                f"constant/polynomial/table/fn, got {given or 'none'}"
            )
        if (self.table is not None or self.fn is not None) and not self.variables:
            raise QoSError(
                f"policy for {self.attribute!r} needs resource variables"
            )


@dataclass
class QoSDocument:
    """The QoS sheet a provider publishes for one service operation."""

    service_name: str
    provider: str
    policies: List[QoSPolicy] = field(default_factory=list)

    def policy_for(self, attribute: str) -> Optional[QoSPolicy]:
        for policy in self.policies:
            if policy.attribute == attribute:
                return policy
        return None

    def attributes(self) -> List[str]:
        return [policy.attribute for policy in self.policies]

    def advertised(self, attribute: str) -> Optional[Any]:
        """The flat advertised value for ``attribute``, when the policy
        states one directly.

        Constants answer immediately; a table policy answers only when
        every row agrees (a single-valued table is a constant in
        disguise).  Polynomial/``fn`` policies depend on resource
        variables chosen at negotiation time, so they have no flat
        advertisement and answer ``None`` — as does a missing policy.
        """
        policy = self.policy_for(attribute)
        if policy is None:
            return None
        if policy.constant is not None:
            return policy.constant
        if policy.table is not None:
            values = set(policy.table.values())
            if len(values) == 1:
                return next(iter(values))
        return None


def resolve_attribute(name: str) -> QoSAttribute:
    """Look up a standard attribute (custom ones may be passed directly)."""
    try:
        return STANDARD_ATTRIBUTES[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_ATTRIBUTES))
        raise QoSError(f"unknown QoS attribute {name!r}; known: {known}") from None


def compile_policy(
    policy: QoSPolicy,
    semiring: Semiring,
    variable_pool: Optional[Dict[str, Variable]] = None,
    name_prefix: str = "",
) -> SoftConstraint:
    """Translate one policy into a soft constraint.

    ``variable_pool`` shares :class:`Variable` objects across policies so
    that two policies over the same resource variable constrain the same
    thing; it is updated in place.
    """
    pool = variable_pool if variable_pool is not None else {}
    scope: List[Variable] = []
    for var_name, domain in policy.variables.items():
        existing = pool.get(var_name)
        candidate = Variable(var_name, tuple(domain))
        if existing is None:
            pool[var_name] = candidate
            scope.append(candidate)
        else:
            if existing.domain != candidate.domain:
                raise QoSError(
                    f"variable {var_name!r} declared with two domains"
                )
            scope.append(existing)

    label = f"{name_prefix}{policy.attribute}"
    if policy.constant is not None:
        return FunctionConstraint(
            semiring, (), lambda value=policy.constant: value, name=label
        )
    if policy.polynomial is not None:
        return polynomial_constraint(
            semiring, scope, policy.polynomial, name=label
        )
    if policy.table is not None:
        return TableConstraint(
            semiring, scope, dict(policy.table), name=label
        )
    return FunctionConstraint(semiring, scope, policy.fn, name=label)


def compile_document(
    document: QoSDocument,
    attribute: str,
    semiring: Optional[Semiring] = None,
    variable_pool: Optional[Dict[str, Variable]] = None,
) -> List[SoftConstraint]:
    """All constraints a document states about ``attribute``.

    The semiring defaults to the attribute's natural one; pass an explicit
    instance to negotiate the attribute under a different cost model.
    """
    semiring = semiring or resolve_attribute(attribute).semiring()
    prefix = f"{document.provider}/{document.service_name}:"
    return [
        compile_policy(policy, semiring, variable_pool, prefix)
        for policy in document.policies
        if policy.attribute == attribute
    ]
