"""Simulated execution of composite service plans.

Runs a :mod:`composition` plan against live :class:`~repro.soa.service.Service`
objects, consulting the fault injector at every step.  Produces per-run
reports the SLA monitor consumes, so negotiated dependability can be
compared with delivered dependability over many logical ticks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .composition import Choose, CompositionError, Invoke, Pipeline, Plan, Split
from .faults import FaultInjector
from .service import InvocationOutcome, ServicePool


@dataclass
class ExecutionReport:
    """Outcome of executing a plan once."""

    tick: int
    success: bool
    latency_ms: float
    outcomes: List[InvocationOutcome] = field(default_factory=list)
    output: Any = None
    aborted_at: Optional[str] = None

    @property
    def services_touched(self) -> List[str]:
        return [outcome.service_id for outcome in self.outcomes]

    def charge(self, attribute: str) -> float:
        """Total additive metric this run incurred, summed over the
        invoked services' recorded charges (0.0 for services invoked
        before charge recording existed, or never reached)."""
        return sum(
            outcome.charges.get(attribute, 0.0)
            for outcome in self.outcomes
        )


class ExecutionEngine:
    """Drives plans over the service pool under fault injection.

    One engine ``seed`` determines *every* random draw of a run — the
    ``Choose`` branch picks and, unless the injector was built with its
    own seed/rng, the fault decisions too: an injector constructed with
    neither shares the engine's stream, so
    ``ExecutionEngine(pool, FaultInjector(), seed=7)`` is reproducible
    end to end (the satellite fix for ``execute_many`` runs whose fault
    pattern drifted from the engine seed).
    """

    def __init__(
        self,
        pool: ServicePool,
        injector: Optional[FaultInjector] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.pool = pool
        self.injector = injector
        self._rng = rng if rng is not None else random.Random(seed)
        if injector is not None:
            injector.adopt_rng_if_unseeded(self._rng)
        self._tick = 0
        self.reports: List[ExecutionReport] = []
        self._charge_cache: Dict[str, Dict[str, float]] = {}

    def execute(self, plan: Plan, payload: Any = None) -> ExecutionReport:
        """One run of ``plan``; the logical clock advances per run."""
        tick = self._tick
        self._tick += 1
        outcomes: List[InvocationOutcome] = []
        success, latency, output, aborted = self._run(
            plan, payload, tick, outcomes
        )
        report = ExecutionReport(
            tick=tick,
            success=success,
            latency_ms=latency,
            outcomes=outcomes,
            output=output if success else None,
            aborted_at=aborted,
        )
        self.reports.append(report)
        return report

    def execute_many(
        self, plan: Plan, runs: int, payload: Any = None
    ) -> List[ExecutionReport]:
        return [self.execute(plan, payload) for _ in range(runs)]

    # ------------------------------------------------------------------
    # Plan walkers
    # ------------------------------------------------------------------

    def _run(self, node, payload, tick, outcomes):
        """Returns (success, latency_ms, output, aborted_service_id)."""
        if isinstance(node, Invoke):
            outcome = self._invoke(node.service_id, payload, tick)
            outcomes.append(outcome)
            aborted = None if outcome.success else node.service_id
            return outcome.success, outcome.latency_ms, outcome.output, aborted

        if isinstance(node, Pipeline):
            total_latency = 0.0
            current = payload
            for child in node.children:
                success, latency, current, aborted = self._run(
                    child, current, tick, outcomes
                )
                total_latency += latency
                if not success:
                    return False, total_latency, None, aborted
            return True, total_latency, current, None

        if isinstance(node, Split):
            # Fork-join: every branch runs on the same payload; the join
            # waits for the slowest branch and fails if any branch fails.
            worst_latency = 0.0
            results = []
            first_abort = None
            all_ok = True
            for child in node.children:
                success, latency, output, aborted = self._run(
                    child, payload, tick, outcomes
                )
                worst_latency = max(worst_latency, latency)
                results.append(output)
                if not success:
                    all_ok = False
                    if first_abort is None:
                        first_abort = aborted
            return all_ok, worst_latency, results if all_ok else None, first_abort

        if isinstance(node, Choose):
            # Exclusive choice: one branch, picked uniformly (seeded).
            child = self._rng.choice(node.children)
            return self._run(child, payload, tick, outcomes)

        raise CompositionError(f"unknown plan node {type(node).__name__}")

    def _invoke(self, service_id: str, payload, tick) -> InvocationOutcome:
        fault = (
            self.injector.decide(service_id, tick)
            if self.injector is not None
            else None
        )
        if fault is not None and fault.fail:
            return InvocationOutcome(
                service_id,
                success=False,
                latency_ms=0.0,
                fault=fault.kind,
            )
        service = self.pool.get(service_id)
        outcome = service.invoke(payload)
        charges = self._charges_for(service)
        if charges:
            outcome.charges = dict(charges)
        if fault is not None and fault.extra_latency_ms:
            outcome = InvocationOutcome(
                outcome.service_id,
                outcome.success,
                outcome.latency_ms + fault.extra_latency_ms,
                outcome.output,
                fault=fault.kind,
                charges=outcome.charges,
            )
        return outcome

    #: Additive metrics billed per invocation from the advertised QoS.
    CHARGED_ATTRIBUTES = ("cost", "downtime")

    def _charges_for(self, service) -> Dict[str, float]:
        """Advertised per-invocation charges, memoized per service."""
        cached = self._charge_cache.get(service.service_id)
        if cached is not None:
            return cached
        charges: Dict[str, float] = {}
        for attribute in self.CHARGED_ATTRIBUTES:
            value = service.description.qos.advertised(attribute)
            if isinstance(value, (int, float)):
                charges[attribute] = float(value)
        self._charge_cache[service.service_id] = charges
        return charges

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------

    def observed_availability(self) -> float:
        """Successful fraction over every run so far (1.0 when no runs)."""
        if not self.reports:
            return 1.0
        return sum(r.success for r in self.reports) / len(self.reports)

    def mean_latency(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.latency_ms for r in self.reports) / len(self.reports)
