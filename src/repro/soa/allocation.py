"""Allocation policies: the multi-client seam of the negotiation pipeline.

The broker's classic :meth:`~repro.soa.broker.Broker.negotiate` serves
each session in isolation — every client independently gets the
semiring-best provider, so under contention they all pile onto the same
"best" service and the queueing discount makes everyone worse off, the
last arrivals most of all.  This module factors the *who-gets-whom*
decision out of the per-session steps into an :class:`AllocationPolicy`
that sees one coalesced **round** of concurrent sessions at a time:

* :class:`GreedyAllocation` replays the legacy behaviour — each request
  runs the unchanged five-step negotiation in submission order.  Its
  agreements are bit-identical to ``Broker.negotiate``; the only
  addition is the :class:`AllocationInfo` annotation on each result.

* :class:`FairAllocation` runs steps 1–3 per session as usual (registry
  search, per-candidate SCSP evaluation, acceptance filtering) but
  replaces the per-session argmax of step 4 with **one joint SCSP per
  round**: a selection variable per client (domain: its accepted
  candidates) under a single :class:`FunctionConstraint` valued in the
  lexicographic composite ``Lex[Fuzzy, Probabilistic]`` —
  ⟨min per-client satisfaction, total welfare⟩.  Maximizing that order
  first lifts the worst-off client (the egalitarian objective), then
  breaks ties by the utilitarian product.  This is the paper's
  "cartesian product of c-semirings is still a c-semiring" machinery
  applied to fairness: the composite lowers through the same solver
  kernels as any scalar semiring (see ``repro.solver.kernels``), and
  the default ``joint_solver="dense"`` evaluates the joint objective
  the same way — stacked ndarray planes over the candidate
  cross-product with a vectorized lex argmax (``"scsp"`` keeps the
  FunctionConstraint-through-``solve()`` reference formulation).

Contention is modelled by a rank discount: the ``k``-th session a
provider accepts within a round realizes ``satisfaction · γ^k``
(``γ = 0.9`` by default) — a queue-position penalty, so spreading load
across providers is visible to the objective rather than assumed.

Satisfaction is the semiring level mapped onto ``[0, 1]`` by
:func:`satisfaction_score`; for fuzzy/probabilistic levels it *is* the
level, so the fair objective optimizes the same quantity the SLAs
record.  Signing (step 5) is unchanged — :class:`FairAllocation` reuses
the broker's ``_confirm``/``_sign`` so SLAs, bus journal entries,
events and outcome counters look exactly like the per-session path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..constraints.constraint import FunctionConstraint
from ..constraints.variables import Variable
from ..semirings import (
    BooleanSemiring,
    BoundedWeightedSemiring,
    FuzzySemiring,
    LexicographicSemiring,
    ProbabilisticSemiring,
    ProductSemiring,
    WeightedSemiring,
)
from ..semirings.base import Semiring
from ..solver import SCSP, solve
from ..telemetry import get_events, get_registry
from .broker import Broker, CandidateEvaluation, ClientRequest, NegotiationResult

#: Queue-position discount: the k-th session a provider accepts in one
#: round realizes ``satisfaction * GAMMA**k``.
DEFAULT_CONGESTION_GAMMA = 0.9

#: Fair rounds larger than this are allocated cohort-by-cohort (the
#: joint table is exponential in cohort size: ``candidates**cohort``
#: rows); provider loads carry across cohorts so later cohorts still
#: steer around providers earlier ones filled.
DEFAULT_JOINT_LIMIT = 8

#: Hard ceiling on the joint table a single cohort may enumerate
#: (``∏ candidates`` rows); cohorts are packed adaptively so the product
#: never exceeds it even before ``joint_limit`` members are reached.
#: Because provider loads carry across cohorts, fairness is insensitive
#: to the cap (measured identical from ``2**10`` through ``2**18`` on
#: the contention market) while solve time is linear in it, so it is
#: kept small enough that a round's dense solve stays in the
#: low-millisecond range.
MAX_JOINT_ROWS = 1 << 12

#: Round-size histogram buckets (mirrors the batching layer's).
ROUND_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class AllocationError(Exception):
    """Raised on unusable policy configuration."""


@dataclass
class AllocationInfo:
    """Round metadata attached to every result served through a policy.

    Diagnostics only — never consulted when signing.  ``rank`` is the
    session's queue position on its provider within the round (0 =
    first), ``provider_load`` the provider's total sessions this round,
    ``satisfaction`` the undiscounted score of the agreed level and
    ``realized_satisfaction`` the same after the ``γ^rank`` congestion
    discount — the quantity Jain's index is computed over.
    """

    policy: str
    round_id: int
    round_size: int
    provider: str = ""
    provider_load: int = 0
    rank: int = 0
    satisfaction: float = 0.0
    realized_satisfaction: float = 0.0


def satisfaction_score(semiring: Semiring, level: Any) -> float:
    """Map a semiring level onto a ``[0, 1]`` satisfaction score.

    Fuzzy/probabilistic levels already live there; boolean maps to the
    endpoints; weighted costs go through ``1 / (1 + cost)`` (``+∞`` →
    0); bounded-weighted normalizes by the cap; composites take the
    worst component.  Monotone in the semiring order for every built-in
    total order, so a greedier level never scores lower.
    """
    if isinstance(semiring, BooleanSemiring):
        return 1.0 if level else 0.0
    if isinstance(semiring, BoundedWeightedSemiring):
        cost = min(float(level), semiring.cap)
        return 1.0 - cost / semiring.cap if semiring.cap > 0 else 0.0
    if isinstance(semiring, WeightedSemiring):
        cost = float(level)
        if math.isinf(cost):
            return 0.0
        return 1.0 / (1.0 + max(0.0, cost))
    if isinstance(semiring, (FuzzySemiring, ProbabilisticSemiring)):
        return min(1.0, max(0.0, float(level)))
    if isinstance(semiring, (ProductSemiring, LexicographicSemiring)):
        scores = [
            satisfaction_score(component, value)
            for component, value in zip(semiring.components, level)
        ]
        return min(scores) if scores else 0.0
    # Unknown semirings: only the lattice endpoints are interpretable.
    if semiring.equiv(level, semiring.zero):
        return 0.0
    if semiring.equiv(level, semiring.one):
        return 1.0
    return 0.5


class AllocationPolicy:
    """How one round of coalesced sessions is matched to providers."""

    name = "policy"

    def allocate(
        self,
        broker: Broker,
        requests: Sequence[ClientRequest],
        verify: bool = False,
        round_id: int = 0,
    ) -> List[NegotiationResult]:
        """Serve ``requests`` and return results in submission order."""
        raise NotImplementedError


class GreedyAllocation(AllocationPolicy):
    """Legacy semantics behind the policy seam.

    Each session runs the broker's unchanged five-step negotiation in
    submission order — agreements are bit-identical to calling
    :meth:`Broker.negotiate` directly; results additionally carry the
    round's :class:`AllocationInfo` so greedy and fair markets report
    the same fairness telemetry.
    """

    name = "greedy"

    def __init__(self, gamma: float = DEFAULT_CONGESTION_GAMMA) -> None:
        self.gamma = gamma

    def allocate(
        self,
        broker: Broker,
        requests: Sequence[ClientRequest],
        verify: bool = False,
        round_id: int = 0,
    ) -> List[NegotiationResult]:
        results = [
            broker.negotiate(request, verify) for request in requests
        ]
        _annotate_round(results, self.name, round_id, self.gamma)
        _observe_round(self.name, len(results))
        return results


@dataclass
class _Member:
    """One surviving session of a fair round, steps 1–3 done."""

    index: int
    request: ClientRequest
    semiring: Semiring
    evaluations: List[CandidateEvaluation]
    accepted: List[CandidateEvaluation]
    chosen: Optional[CandidateEvaluation] = None


class FairAllocation(AllocationPolicy):
    """Joint max-min allocation via one lexicographic SCSP per round.

    Per cohort (at most ``joint_limit`` surviving sessions, joint table
    capped at :data:`MAX_JOINT_ROWS` rows), one selection per client
    over its accepted candidates; each joint choice is valued in
    ``Lex[Fuzzy, Probabilistic]`` as ⟨min realized satisfaction,
    product of realized satisfactions⟩, with the ``γ^rank`` queue
    discount applied per provider in submission order.  The problem has
    a single joint objective, so the optimum is exact despite
    lexicographic composition not distributing over ``+`` in general
    (see the pinned counterexample in the law tests).  Provider loads
    persist across cohorts and rounds start them at zero.

    ``joint_solver`` picks the evaluation engine: ``"dense"`` (default)
    lowers the objective onto stacked ndarray planes and takes a
    vectorized lex argmax; ``"scsp"`` is the reference formulation —
    one :class:`FunctionConstraint` per cohort handed to
    :func:`repro.solver.solve`.  Identical optima, ~20× apart in cost.
    """

    name = "fair"

    def __init__(
        self,
        gamma: float = DEFAULT_CONGESTION_GAMMA,
        joint_limit: int = DEFAULT_JOINT_LIMIT,
        joint_solver: str = "dense",
    ) -> None:
        if not 0.0 < gamma <= 1.0:
            raise AllocationError(
                f"congestion gamma must be in (0, 1], got {gamma}"
            )
        if joint_limit < 1:
            raise AllocationError(
                f"joint_limit must be at least 1, got {joint_limit}"
            )
        if joint_solver not in ("dense", "scsp"):
            raise AllocationError(
                f"unknown joint_solver {joint_solver!r}; "
                "known: dense, scsp"
            )
        self.gamma = gamma
        self.joint_limit = joint_limit
        self.joint_solver = joint_solver
        self.objective_semiring = LexicographicSemiring(
            [FuzzySemiring(), ProbabilisticSemiring()]
        )

    def allocate(
        self,
        broker: Broker,
        requests: Sequence[ClientRequest],
        verify: bool = False,
        round_id: int = 0,
    ) -> List[NegotiationResult]:
        results: List[Optional[NegotiationResult]] = [None] * len(requests)

        # Steps 1–3 per session, exactly as the legacy path runs them.
        members: List[_Member] = []
        for index, request in enumerate(requests):
            semiring = request.resolved_semiring()
            broker._post(
                request.client, "negotiate-request", request.operation
            )
            candidates = broker.registry.find(
                operation=request.operation,
                requires_attribute=request.attribute,
            )
            broker._post(broker.name, "registry-query", len(candidates))
            if not candidates:
                results[index] = NegotiationResult(
                    request,
                    success=False,
                    sla=None,
                    evaluations=[],
                    detail=f"no provider offers {request.operation!r} "
                    f"with {request.attribute!r}",
                )
                continue
            evaluations = [
                broker._evaluate(description, request, semiring)
                for description in candidates
            ]
            accepted = [e for e in evaluations if e.accepted]
            if not accepted:
                broker._post(broker.name, "negotiate-reject", request.client)
                results[index] = NegotiationResult(
                    request,
                    success=False,
                    sla=None,
                    evaluations=evaluations,
                    detail="no candidate satisfies the client's "
                    "acceptance interval",
                )
                continue
            members.append(
                _Member(index, request, semiring, evaluations, accepted)
            )

        # Step 4, jointly: cohort-by-cohort max-min assignment with
        # provider loads carried forward.
        loads: Dict[str, int] = {}
        for cohort in self._pack_cohorts(members):
            for member, evaluation in zip(
                cohort, self._solve_cohort(broker, cohort, loads, round_id)
            ):
                member.chosen = evaluation
                provider = evaluation.description.provider
                loads[provider] = loads.get(provider, 0) + 1

        # Step 5 per session, in submission order — same confirmation,
        # clock, bus and event traffic as the legacy path.
        for member in members:
            evaluation = member.chosen
            assert evaluation is not None
            outcome = (
                broker._confirm(evaluation, member.request, member.semiring)
                if verify
                else None
            )
            if outcome is not None and not outcome.success:
                results[member.index] = NegotiationResult(
                    member.request,
                    success=False,
                    sla=None,
                    evaluations=member.evaluations,
                    outcome=outcome,
                    detail="nmsccp confirmation run failed",
                )
                continue
            broker._clock += 1
            sla = broker._sign(evaluation, member.request, member.semiring)
            broker._post(broker.name, "sla-created", sla.sla_id)
            get_events().emit(
                "broker.sla-created",
                sla_id=sla.sla_id,
                client=member.request.client,
                provider=evaluation.description.provider,
                service_id=evaluation.description.service_id,
                attribute=member.request.attribute,
            )
            results[member.index] = NegotiationResult(
                member.request,
                success=True,
                sla=sla,
                evaluations=member.evaluations,
                outcome=outcome,
                detail=f"bound to {evaluation.description.service_id!r}",
            )

        final = [result for result in results if result is not None]
        for result in final:
            broker._count_request(result)
        _annotate_round(final, self.name, round_id, self.gamma)
        _observe_round(self.name, len(final))
        return final

    def _pack_cohorts(
        self, members: List[_Member]
    ) -> List[List[_Member]]:
        """Split a round into cohorts of at most ``joint_limit`` members
        whose joint table (``∏ candidates`` rows) stays under
        :data:`MAX_JOINT_ROWS` — the enumeration is exponential in
        cohort size, so the packer trades cohort width for bounded
        work.  Submission order is preserved."""
        cohorts: List[List[_Member]] = []
        current: List[_Member] = []
        rows = 1
        for member in members:
            width = max(1, len(member.accepted))
            if current and (
                len(current) >= self.joint_limit
                or rows * width > MAX_JOINT_ROWS
            ):
                cohorts.append(current)
                current, rows = [], 1
            current.append(member)
            rows *= width
        if current:
            cohorts.append(current)
        return cohorts

    def _solve_cohort(
        self,
        broker: Broker,
        cohort: List[_Member],
        loads: Dict[str, int],
        round_id: int,
    ) -> List[CandidateEvaluation]:
        """Who gets which provider in this cohort.

        ``joint_solver="dense"`` (the default) evaluates the joint
        objective as stacked ndarray planes — one score/provider plane
        per member broadcast over the full candidate cross-product,
        ranks by a prefix equality fold, lex argmax at the end — the
        same lowering philosophy :mod:`repro.solver.kernels` applies to
        composite constraints, and ~20× faster than enumerating the
        objective in Python.  ``joint_solver="scsp"`` keeps the
        reference formulation: one :class:`FunctionConstraint` valued
        in ``Lex[Fuzzy, Probabilistic]`` handed to
        :func:`repro.solver.solve`.  Both optimize the identical
        ⟨worst, welfare⟩ objective; the policy tests pin the agreement.
        """
        if self.joint_solver == "dense":
            return self._solve_cohort_dense(cohort, loads)
        return self._solve_cohort_scsp(broker, cohort, loads, round_id)

    def _solve_cohort_dense(
        self, cohort: List[_Member], loads: Dict[str, int]
    ) -> List[CandidateEvaluation]:
        """Vectorized exhaustive lex argmax over the joint table."""
        codes: Dict[str, int] = {}
        member_scores: List[np.ndarray] = []
        member_providers: List[np.ndarray] = []
        for member in cohort:
            member_scores.append(
                np.array(
                    [
                        satisfaction_score(member.semiring, e.blevel)
                        for e in member.accepted
                    ],
                    dtype=np.float64,
                )
            )
            member_providers.append(
                np.array(
                    [
                        codes.setdefault(
                            e.description.provider, len(codes)
                        )
                        for e in member.accepted
                    ],
                    dtype=np.int64,
                )
            )
        base = np.zeros(len(codes), dtype=np.float64)
        for provider, count in loads.items():
            if provider in codes:
                base[codes[provider]] = float(count)

        grids = np.meshgrid(
            *[np.arange(len(s)) for s in member_scores], indexing="ij"
        )
        choices = np.stack([g.reshape(-1) for g in grids], axis=1)
        width = len(cohort)
        scores = np.stack(
            [
                member_scores[j][choices[:, j]]
                for j in range(width)
            ],
            axis=1,
        )
        providers = np.stack(
            [
                member_providers[j][choices[:, j]]
                for j in range(width)
            ],
            axis=1,
        )
        # rank[:, j] = carried load + how many earlier members in the
        # same row picked the same provider (the queue position the
        # scsp objective computes by walking the row).
        ranks = np.empty_like(scores)
        for j in range(width):
            prior = (
                (providers[:, :j] == providers[:, j : j + 1]).sum(axis=1)
                if j
                else 0
            )
            ranks[:, j] = base[providers[:, j]] + prior
        realized = scores * np.power(self.gamma, ranks)
        worst = realized.min(axis=1)
        welfare = realized.prod(axis=1)
        # Lex argmax, ties by exact float equality (the Lex tie rule).
        tied = np.flatnonzero(worst == worst.max())
        best = tied[np.argmax(welfare[tied])]
        return [
            cohort[j].accepted[int(choices[best, j])]
            for j in range(width)
        ]

    def _solve_cohort_scsp(
        self,
        broker: Broker,
        cohort: List[_Member],
        loads: Dict[str, int],
        round_id: int,
    ) -> List[CandidateEvaluation]:
        """One joint SCSP: the reference formulation through the solver."""
        variables: List[Variable] = []
        scores: List[Dict[str, float]] = []
        by_id: List[Dict[str, CandidateEvaluation]] = []
        providers: Dict[str, str] = {}
        for position, member in enumerate(cohort):
            ids = tuple(
                e.description.service_id for e in member.accepted
            )
            variables.append(Variable(f"alloc{position}", ids))
            scores.append(
                {
                    e.description.service_id: satisfaction_score(
                        member.semiring, e.blevel
                    )
                    for e in member.accepted
                }
            )
            by_id.append(
                {e.description.service_id: e for e in member.accepted}
            )
            for e in member.accepted:
                providers[e.description.service_id] = e.description.provider

        gamma = self.gamma
        base_loads = dict(loads)

        def objective(*chosen: str) -> tuple:
            counts = dict(base_loads)
            worst = 1.0
            welfare = 1.0
            for position, service_id in enumerate(chosen):
                provider = providers[service_id]
                rank = counts.get(provider, 0)
                counts[provider] = rank + 1
                realized = scores[position][service_id] * gamma**rank
                if realized < worst:
                    worst = realized
                welfare *= realized
            return (worst, welfare)

        constraint = FunctionConstraint(
            self.objective_semiring,
            variables,
            objective,
            name=f"fair-round-{round_id}",
        )
        problem = SCSP([constraint], name=f"fair-round-{round_id}")
        result = solve(problem, backend=broker.solver_backend)
        assignment = result.best_assignment
        assert assignment is not None
        return [
            by_id[position][assignment[f"alloc{position}"]]
            for position in range(len(cohort))
        ]


def resolve_allocation_policy(policy: Any) -> AllocationPolicy:
    """Coerce a policy name or instance into an :class:`AllocationPolicy`."""
    if isinstance(policy, AllocationPolicy):
        return policy
    if isinstance(policy, str):
        key = policy.strip().lower()
        if key == "greedy":
            return GreedyAllocation()
        if key == "fair":
            return FairAllocation()
        raise AllocationError(
            f"unknown allocation policy {policy!r}; known policies: "
            "greedy, fair"
        )
    raise AllocationError(
        "allocation policy must be a name or an AllocationPolicy, got "
        f"{type(policy).__name__}"
    )


def _annotate_round(
    results: Sequence[NegotiationResult],
    policy: str,
    round_id: int,
    gamma: float,
) -> None:
    """Attach per-result :class:`AllocationInfo` (rank, discount, load)."""
    loads: Dict[str, int] = {}
    for result in results:
        info = AllocationInfo(
            policy=policy, round_id=round_id, round_size=len(results)
        )
        result.allocation = info
        if not result.success or result.sla is None:
            continue
        provider = result.sla.providers[0]
        rank = loads.get(provider, 0)
        loads[provider] = rank + 1
        info.provider = provider
        info.rank = rank
        info.satisfaction = satisfaction_score(
            result.sla.semiring, result.sla.agreed_level
        )
        info.realized_satisfaction = info.satisfaction * gamma**rank
    for result in results:
        info = result.allocation
        if info is not None and info.provider:
            info.provider_load = loads[info.provider]


def _observe_round(policy: str, size: int) -> None:
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "soa_allocation_rounds_total",
        "Allocation rounds dispatched, by policy.",
        labelnames=("policy",),
    ).labels(policy).inc()
    registry.histogram(
        "soa_allocation_round_size",
        "Sessions allocated per round.",
        buckets=ROUND_SIZE_BUCKETS,
    ).observe(float(size))
