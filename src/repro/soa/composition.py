"""Service composition plans and per-attribute QoS aggregation.

The broker "consolidates multiple services into a new, single service
offering" (paper Sec. 3).  A plan is a tree of three patterns —
sequential pipeline, parallel split (fork-join), exclusive choice — and
each QoS attribute aggregates along the tree with its own operators
(availability multiplies along a pipeline, latency adds, a choice is as
bad as its worst branch, …).  These are the standard web-service QoS
aggregation rules; the semiring ``×`` recovers the pipeline column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple


class CompositionError(Exception):
    """Raised on malformed plans or missing QoS values."""


class Plan:
    """Base class of composition plan nodes."""

    def services(self) -> List[str]:
        """Every service id in the plan, left-to-right."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class Invoke(Plan):
    """Leaf: invoke one concrete service."""

    service_id: str

    def services(self) -> List[str]:
        return [self.service_id]

    def describe(self) -> str:
        return self.service_id


class _Composite(Plan):
    symbol = "?"

    def __init__(self, children: Sequence[Plan]) -> None:
        if len(children) < 1:
            raise CompositionError(
                f"{type(self).__name__} needs at least one child"
            )
        self.children: Tuple[Plan, ...] = tuple(children)

    def services(self) -> List[str]:
        found: List[str] = []
        for child in self.children:
            found.extend(child.services())
        return found

    def describe(self) -> str:
        inner = f" {self.symbol} ".join(c.describe() for c in self.children)
        return f"({inner})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self), self.children))


class Pipeline(_Composite):
    """Sequential composition — the paper's photo-editing pipeline."""

    symbol = "▶"


class Split(_Composite):
    """Parallel split with join: all branches must succeed."""

    symbol = "∥"


class Choose(_Composite):
    """Exclusive choice: exactly one branch runs."""

    symbol = "⊕"


@dataclass(frozen=True)
class AggregationRule:
    """How one attribute folds across each pattern.

    Each operator folds a non-empty list of child values; ``choose``
    defaults to worst-case (the guarantee that holds whichever branch
    runs).
    """

    sequence: Callable[[Sequence[float]], float]
    split: Callable[[Sequence[float]], float]
    choose: Callable[[Sequence[float]], float]


def _product(values: Sequence[float]) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result


#: Standard rules per attribute (extensible via ``aggregate(..., rule=)``).
AGGREGATION_RULES: Dict[str, AggregationRule] = {
    # multiplicative metrics: every stage must work
    "availability": AggregationRule(_product, _product, min),
    "reliability": AggregationRule(_product, _product, min),
    # additive metrics: costs accumulate; a split pays every branch
    "cost": AggregationRule(sum, sum, max),
    "downtime": AggregationRule(sum, sum, max),
    # latency: a split waits for its slowest branch
    "latency": AggregationRule(sum, max, max),
    # concave metrics: the pipeline is as good as its weakest stage
    "fuzzy-reliability": AggregationRule(min, min, min),
}


def aggregate(
    plan: Plan,
    values: Mapping[str, float],
    attribute: str,
    rule: AggregationRule | None = None,
) -> float:
    """Fold per-service QoS ``values`` over ``plan`` for ``attribute``."""
    if rule is None:
        try:
            rule = AGGREGATION_RULES[attribute]
        except KeyError:
            known = ", ".join(sorted(AGGREGATION_RULES))
            raise CompositionError(
                f"no aggregation rule for {attribute!r}; known: {known} "
                "(pass rule= explicitly)"
            ) from None

    def fold(node: Plan) -> float:
        if isinstance(node, Invoke):
            try:
                return values[node.service_id]
            except KeyError:
                raise CompositionError(
                    f"no {attribute!r} value for service "
                    f"{node.service_id!r}"
                ) from None
        child_values = [fold(child) for child in node.children]  # type: ignore[attr-defined]
        if isinstance(node, Pipeline):
            return rule.sequence(child_values)
        if isinstance(node, Split):
            return rule.split(child_values)
        if isinstance(node, Choose):
            return rule.choose(child_values)
        raise CompositionError(f"unknown plan node {type(node).__name__}")

    return fold(plan)


def aggregate_many(
    plan: Plan, per_attribute_values: Mapping[str, Mapping[str, float]]
) -> Dict[str, float]:
    """Aggregate several attributes at once:
    ``{attribute: {service_id: value}} → {attribute: aggregated}``."""
    return {
        attribute: aggregate(plan, values, attribute)
        for attribute, values in per_attribute_values.items()
    }


def pipeline(*service_ids: str) -> Plan:
    """Sugar: a pipeline of leaf invocations."""
    return Pipeline([Invoke(sid) for sid in service_ids])


def plan_depth(plan: Plan) -> int:
    """Height of the plan tree (a leaf has depth 1)."""
    if isinstance(plan, Invoke):
        return 1
    return 1 + max(plan_depth(child) for child in plan.children)  # type: ignore[attr-defined]
