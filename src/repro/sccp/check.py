"""The checked-transition function (paper Fig. 3, cases C1–C4).

Every nmsccp action carries a *checked arrow* ``→^{upper}_{lower}``
constraining the store it is about to act on (or produce):

* the **lower** threshold is the *worst acceptable quality* — "we need at
  least a solution as good as this";
* the **upper** threshold is the *best allowed quality* — "no solution
  may be too good" (e.g. a provider that insists on spending at least one
  hour on failure management).

Each threshold is either a semiring level ``a`` (compared against the
store consistency ``σ ⇓∅``) or a whole constraint ``φ`` (compared against
σ in the ``⊑`` order), giving the four cases:

====  =============  =============
case  lower          upper
====  =============  =============
C1    level ``a1``   level ``a2``
C2    level ``a1``   constraint ``φ2``
C3    constraint ``φ1``  level ``a2``
C4    constraint ``φ1``  constraint ``φ2``
====  =============  =============

Conditions (b = better):  a level lower bound requires ``¬(σ⇓∅ <S a1)``;
a level upper bound requires ``¬(σ⇓∅ >S a2)``; a constraint lower bound
requires ``σ ⊒ φ1``; a constraint upper bound requires ``σ ⊑ φ2``.  The
negated forms matter for partially ordered semirings: an *incomparable*
consistency passes a level check, exactly as in Fig. 3.

NOTE on the Weighted semiring: the semiring order is inverted w.r.t.
numbers, so "lower = worst acceptable" is the numerically *largest*
tolerated cost.  Example 1's interval "between 1 and 4 hours" is
``CheckSpec(lower=4, upper=1)``.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..constraints.constraint import SoftConstraint
from ..constraints.operations import constraint_leq
from ..constraints.store import ConstraintStore
from ..semirings.base import Semiring

Threshold = Union[None, Any, SoftConstraint]


class CheckError(Exception):
    """Raised on intrinsically wrong intervals (lower better than upper)."""


class CheckSpec:
    """A checked arrow ``→^{upper}_{lower}``; ``None`` leaves a side open.

    An omitted lower bound behaves as the semiring ``0`` (anything is
    acceptable) and an omitted upper bound as ``1`` (nothing is too good)
    — the paper's ``→^0_∞`` arrows on the Weighted semiring.
    """

    __slots__ = ("semiring", "lower", "upper", "case")

    def __init__(
        self,
        semiring: Semiring,
        lower: Threshold = None,
        upper: Threshold = None,
    ) -> None:
        self.semiring = semiring
        self.lower = self._validate_threshold(lower, "lower")
        self.upper = self._validate_threshold(upper, "upper")
        self.case = self._classify()
        self._validate_interval()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _validate_threshold(self, threshold: Threshold, side: str) -> Threshold:
        if threshold is None:
            return None
        if isinstance(threshold, SoftConstraint):
            if threshold.semiring != self.semiring:
                raise CheckError(
                    f"{side} threshold constraint lives in "
                    f"{threshold.semiring.name}, arrow in {self.semiring.name}"
                )
            return threshold
        return self.semiring.check_element(threshold)

    def _classify(self) -> str:
        lower_is_constraint = isinstance(self.lower, SoftConstraint)
        upper_is_constraint = isinstance(self.upper, SoftConstraint)
        if not lower_is_constraint and not upper_is_constraint:
            return "C1"
        if not lower_is_constraint and upper_is_constraint:
            return "C2"
        if lower_is_constraint and not upper_is_constraint:
            return "C3"
        return "C4"

    def _validate_interval(self) -> None:
        """Reject intervals whose lower side is strictly better than the
        upper — the parenthesized conditions of Fig. 3."""
        semiring = self.semiring
        lower, upper = self.lower, self.upper
        if lower is None or upper is None:
            return
        if self.case == "C1":
            wrong = semiring.gt(lower, upper)
        elif self.case == "C2":
            wrong = semiring.gt(lower, upper.consistency())
        elif self.case == "C3":
            wrong = semiring.gt(lower.consistency(), upper)
        else:  # C4
            wrong = not constraint_leq(lower, upper)
        if wrong:
            raise CheckError(
                f"intrinsically wrong interval ({self.case}): lower "
                f"threshold is better than the upper one"
            )

    # ------------------------------------------------------------------
    # The check function of Fig. 3
    # ------------------------------------------------------------------

    def holds(self, store: ConstraintStore) -> bool:
        """``check(σ)_⇒`` — whether ``store`` satisfies both thresholds."""
        semiring = self.semiring
        consistency: Optional[Any] = None

        if self.lower is not None:
            if isinstance(self.lower, SoftConstraint):
                # σ ⊒ φ1 — the store is at least as good as φ1.
                if not store.refines(self.lower):
                    return False
            else:
                consistency = store.consistency()
                # ¬(σ⇓∅ <S a1) — not worse than the worst acceptable.
                if semiring.lt(consistency, self.lower):
                    return False

        if self.upper is not None:
            if isinstance(self.upper, SoftConstraint):
                # σ ⊑ φ2 — the store is no better than φ2 (routed through
                # the store's memoized, solver-backed entailment).
                if not store.entails(self.upper):
                    return False
            else:
                if consistency is None:
                    consistency = store.consistency()
                # ¬(σ⇓∅ >S a2) — not better than the best allowed.
                if semiring.gt(consistency, self.upper):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def show(threshold: Threshold) -> str:
            if threshold is None:
                return "·"
            if isinstance(threshold, SoftConstraint):
                return "φ"
            return repr(threshold)

        return f"→[{show(self.upper)}/{show(self.lower)}]({self.case})"


def unchecked(semiring: Semiring) -> CheckSpec:
    """The fully open arrow (paper's ``→^0_∞`` on Weighted): always true."""
    return CheckSpec(semiring, lower=None, upper=None)


def interval(semiring: Semiring, lower: Threshold, upper: Threshold) -> CheckSpec:
    """Sugar for ``CheckSpec(semiring, lower, upper)``."""
    return CheckSpec(semiring, lower=lower, upper=upper)
