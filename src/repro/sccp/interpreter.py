"""Running nmsccp programs: single scheduled runs and exhaustive search.

``run`` drives one execution under a scheduler until success, deadlock or
step budget; ``explore`` walks the whole reachable configuration graph,
classifying terminal states — the tool used to prove that a negotiation
outcome (like Example 1's failure) does not depend on the interleaving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring
from ..telemetry import get_registry, get_tracer
from .procedures import EMPTY_PROCEDURES, ProcedureTable
from .scheduler import DeterministicScheduler, Scheduler
from .syntax import Agent
from .traces import Trace
from .transitions import (
    RULES,
    Configuration,
    config_key,
    successors,
)


def _transition_counter(registry):
    """The per-rule transition counter family, preseeded with R1–R10."""
    return registry.counter(
        "sccp_transitions_total",
        "nmsccp transitions taken, by Fig. 4 rule.",
        labelnames=("rule",),
    ).preseed(RULES)


class Status(Enum):
    """How a run ended."""

    SUCCESS = "success"
    DEADLOCK = "deadlock"
    EXHAUSTED = "exhausted"  # step budget hit — possible livelock


@dataclass
class RunResult:
    """Outcome of a single scheduled execution."""

    status: Status
    configuration: Configuration
    trace: Trace
    steps: int

    @property
    def store(self) -> ConstraintStore:
        return self.configuration.store

    @property
    def succeeded(self) -> bool:
        return self.status is Status.SUCCESS

    def consistency(self):
        """Final ``σ ⇓∅`` — the agreed level of a negotiation."""
        return self.store.consistency()


def run(
    agent: Agent,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000,
    store_backend: Optional[str] = None,
) -> RunResult:
    """Execute ``agent`` until success, deadlock, or ``max_steps``.

    Provide either an initial ``store`` or a ``semiring`` (for the empty
    store ``1̄``; ``store_backend`` picks its representation).  The
    default scheduler is deterministic-leftmost.
    """
    if store is None:
        if semiring is None:
            raise ValueError("run() needs either a store or a semiring")
        store = empty_store(semiring, backend=store_backend)
    scheduler = scheduler or DeterministicScheduler()

    registry = get_registry()
    # Hoisted so the step loop pays one bool check when telemetry is off.
    counting = registry.enabled
    transitions = _transition_counter(registry) if counting else None

    configuration = Configuration(agent, store)
    trace = Trace()
    steps_taken = 0
    with get_tracer().span("sccp.run"):
        while steps_taken < max_steps:
            if configuration.is_terminal:
                return _finish(
                    Status.SUCCESS, configuration, trace, steps_taken, registry
                )
            enabled = successors(configuration, procedures)
            if not enabled:
                return _finish(
                    Status.DEADLOCK,
                    configuration,
                    trace,
                    steps_taken,
                    registry,
                )
            step = scheduler.choose(enabled)
            trace.record(step)
            if counting:
                transitions.labels(step.rule).inc()
            configuration = step.configuration
            steps_taken += 1
        status = (
            Status.SUCCESS if configuration.is_terminal else Status.EXHAUSTED
        )
        return _finish(status, configuration, trace, steps_taken, registry)


def _finish(
    status: Status,
    configuration: Configuration,
    trace: Trace,
    steps: int,
    registry,
) -> RunResult:
    if registry.enabled:
        registry.counter(
            "sccp_runs_total",
            "Scheduled nmsccp executions, by final status.",
            labelnames=("status",),
        ).labels(status.value).inc()
        registry.histogram(
            "sccp_run_steps",
            "Transitions per scheduled run.",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 1000, 10_000),
        ).observe(steps)
    return RunResult(status, configuration, trace, steps)


@dataclass
class ExplorationResult:
    """Every terminal configuration of the reachable state space."""

    successes: List[Configuration] = field(default_factory=list)
    deadlocks: List[Configuration] = field(default_factory=list)
    configurations_visited: int = 0
    truncated: bool = False

    @property
    def always_succeeds(self) -> bool:
        """True when every maximal run terminates in success."""
        return bool(self.successes) and not self.deadlocks and not self.truncated

    @property
    def never_succeeds(self) -> bool:
        """True when no interleaving reaches success."""
        return not self.successes and not self.truncated

    def success_consistencies(self) -> list:
        """``σ ⇓∅`` of each distinct successful terminal store."""
        return [c.store.consistency() for c in self.successes]


def explore(
    agent: Agent,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    max_configurations: int = 50_000,
    store_backend: Optional[str] = None,
) -> ExplorationResult:
    """Breadth-first search of the full configuration graph.

    Visited-state pruning uses per-backend store fingerprints (the
    monolith's extensional table, the factored store's multiset digest),
    so the search terminates whenever the reachable store lattice is
    finite.  ``truncated`` reports a hit of the configuration budget
    (results are then lower bounds).
    """
    if store is None:
        if semiring is None:
            raise ValueError("explore() needs either a store or a semiring")
        store = empty_store(semiring, backend=store_backend)

    initial = Configuration(agent, store)
    result = ExplorationResult()
    seen = {config_key(initial)}
    queue = deque([initial])
    terminal_keys = set()

    with get_tracer().span("sccp.explore"):
        _explore_loop(result, seen, queue, terminal_keys, procedures,
                      max_configurations)
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "sccp_configurations_visited_total",
            "Configurations expanded by exhaustive exploration.",
        ).inc(result.configurations_visited)
        registry.counter(
            "sccp_explorations_total",
            "Exhaustive explorations, by verdict.",
            labelnames=("verdict",),
        ).labels(
            "truncated"
            if result.truncated
            else ("always-succeeds" if result.always_succeeds else "mixed")
        ).inc()
    return result


def _explore_loop(
    result: ExplorationResult,
    seen: set,
    queue: deque,
    terminal_keys: set,
    procedures: ProcedureTable,
    max_configurations: int,
) -> None:
    while queue:
        if result.configurations_visited >= max_configurations:
            result.truncated = True
            break
        configuration = queue.popleft()
        result.configurations_visited += 1
        if configuration.is_terminal:
            key = config_key(configuration)
            if key not in terminal_keys:
                terminal_keys.add(key)
                result.successes.append(configuration)
            continue
        enabled = successors(configuration, procedures)
        if not enabled:
            key = config_key(configuration)
            if key not in terminal_keys:
                terminal_keys.add(key)
                result.deadlocks.append(configuration)
            continue
        for step in enabled:
            key = config_key(step.configuration)
            if key not in seen:
                seen.add(key)
                queue.append(step.configuration)
