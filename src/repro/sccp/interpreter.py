"""Running nmsccp programs: single scheduled runs and exhaustive search.

``run`` drives one execution under a scheduler until success, deadlock or
step budget; ``explore`` walks the whole reachable configuration graph,
classifying terminal states — the tool used to prove that a negotiation
outcome (like Example 1's failure) does not depend on the interleaving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring
from .procedures import EMPTY_PROCEDURES, ProcedureTable
from .scheduler import DeterministicScheduler, Scheduler
from .syntax import Agent
from .traces import Trace
from .transitions import (
    Configuration,
    config_key,
    successors,
)


class Status(Enum):
    """How a run ended."""

    SUCCESS = "success"
    DEADLOCK = "deadlock"
    EXHAUSTED = "exhausted"  # step budget hit — possible livelock


@dataclass
class RunResult:
    """Outcome of a single scheduled execution."""

    status: Status
    configuration: Configuration
    trace: Trace
    steps: int

    @property
    def store(self) -> ConstraintStore:
        return self.configuration.store

    @property
    def succeeded(self) -> bool:
        return self.status is Status.SUCCESS

    def consistency(self):
        """Final ``σ ⇓∅`` — the agreed level of a negotiation."""
        return self.store.consistency()


def run(
    agent: Agent,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000,
) -> RunResult:
    """Execute ``agent`` until success, deadlock, or ``max_steps``.

    Provide either an initial ``store`` or a ``semiring`` (for the empty
    store ``1̄``).  The default scheduler is deterministic-leftmost.
    """
    if store is None:
        if semiring is None:
            raise ValueError("run() needs either a store or a semiring")
        store = empty_store(semiring)
    scheduler = scheduler or DeterministicScheduler()

    configuration = Configuration(agent, store)
    trace = Trace()
    steps_taken = 0
    while steps_taken < max_steps:
        if configuration.is_terminal:
            return RunResult(Status.SUCCESS, configuration, trace, steps_taken)
        enabled = successors(configuration, procedures)
        if not enabled:
            return RunResult(
                Status.DEADLOCK, configuration, trace, steps_taken
            )
        step = scheduler.choose(enabled)
        trace.record(step)
        configuration = step.configuration
        steps_taken += 1
    if configuration.is_terminal:
        return RunResult(Status.SUCCESS, configuration, trace, steps_taken)
    return RunResult(Status.EXHAUSTED, configuration, trace, steps_taken)


@dataclass
class ExplorationResult:
    """Every terminal configuration of the reachable state space."""

    successes: List[Configuration] = field(default_factory=list)
    deadlocks: List[Configuration] = field(default_factory=list)
    configurations_visited: int = 0
    truncated: bool = False

    @property
    def always_succeeds(self) -> bool:
        """True when every maximal run terminates in success."""
        return bool(self.successes) and not self.deadlocks and not self.truncated

    @property
    def never_succeeds(self) -> bool:
        """True when no interleaving reaches success."""
        return not self.successes and not self.truncated

    def success_consistencies(self) -> list:
        """``σ ⇓∅`` of each distinct successful terminal store."""
        return [c.store.consistency() for c in self.successes]


def explore(
    agent: Agent,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    max_configurations: int = 50_000,
) -> ExplorationResult:
    """Breadth-first search of the full configuration graph.

    Visited-state pruning uses extensional store fingerprints, so the
    search terminates whenever the reachable store lattice is finite.
    ``truncated`` reports a hit of the configuration budget (results are
    then lower bounds).
    """
    if store is None:
        if semiring is None:
            raise ValueError("explore() needs either a store or a semiring")
        store = empty_store(semiring)

    initial = Configuration(agent, store)
    result = ExplorationResult()
    seen = {config_key(initial)}
    queue = deque([initial])
    terminal_keys = set()

    while queue:
        if result.configurations_visited >= max_configurations:
            result.truncated = True
            break
        configuration = queue.popleft()
        result.configurations_visited += 1
        if configuration.is_terminal:
            key = config_key(configuration)
            if key not in terminal_keys:
                terminal_keys.add(key)
                result.successes.append(configuration)
            continue
        enabled = successors(configuration, procedures)
        if not enabled:
            key = config_key(configuration)
            if key not in terminal_keys:
                terminal_keys.add(key)
                result.deadlocks.append(configuration)
            continue
        for step in enabled:
            key = config_key(step.configuration)
            if key not in seen:
                seen.add(key)
                queue.append(step.configuration)
    return result
