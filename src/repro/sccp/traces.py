"""Execution traces: what happened, rule by rule.

A trace records every applied transition together with the consistency of
the store after it — the quantity the paper's broker monitors during a
negotiation (e.g. the number of hours in Examples 1–3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List

from .transitions import Step


@dataclass(frozen=True)
class TraceEvent:
    """One applied transition."""

    index: int
    rule: str
    action: str
    consistency: Any
    agent_after: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.index:>3}] {self.rule:<12} {self.action:<24} "
            f"σ⇓∅ = {self.consistency!r}"
        )


class Trace:
    """An append-only sequence of :class:`TraceEvent`."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, step: Step) -> None:
        configuration = step.configuration
        self._events.append(
            TraceEvent(
                index=len(self._events),
                rule=step.rule,
                action=step.action,
                consistency=configuration.store.consistency(),
                agent_after=configuration.agent.describe(),
            )
        )

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def consistencies(self) -> List[Any]:
        """The σ⇓∅ profile along the run — negotiation progress."""
        return [event.consistency for event in self._events]

    def rules_applied(self) -> List[str]:
        return [event.rule for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def render(self) -> str:
        """Multi-line pretty form for logs and examples."""
        if not self._events:
            return "(empty trace)"
        return "\n".join(str(event) for event in self._events)
