"""The nmsccp transition system (paper Fig. 4, rules R1–R10).

``successors(config, procedures)`` returns every configuration reachable
in one step, labelled by the rule that produced it.  Schedulers and the
exhaustive explorer are built on top of this single function, so the
operational semantics lives in exactly one place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..constraints.store import ConstraintStore
from .procedures import EMPTY_PROCEDURES, ProcedureTable
from .syntax import (
    Agent,
    Ask,
    Call,
    Exists,
    Nask,
    Parallel,
    Retract,
    Success,
    Sum,
    Tell,
    Update,
)

#: Generator of globally fresh variable names for the hiding rule (R9).
_fresh_counter = itertools.count(1)

#: Every rule label the transition system can emit (Fig. 4, R1–R10) —
#: the telemetry layer preseeds its per-rule counters with these so a
#: metrics snapshot always shows the complete family.
RULES: Tuple[str, ...] = (
    "R1-Tell",
    "R2-Ask",
    "R3-Parall1",
    "R4-Parall2",
    "R5-Nondet",
    "R6-Nask",
    "R7-Retract",
    "R8-Update",
    "R9-Hide",
    "R10-PCall",
)


def _count_check_failure(rule: str) -> None:
    """Record a transition blocked by its check (C1–C4) — failure path
    only, so the enabled-transition fast path stays untouched."""
    from ..telemetry import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "sccp_check_failures_total",
            "Transitions blocked by their check interval.",
            labelnames=("rule",),
        ).labels(rule).inc()


def fresh_name(base: str) -> str:
    """A fresh variable name derived from ``base`` (never reused)."""
    return f"{base}'{next(_fresh_counter)}"


@dataclass(frozen=True)
class Configuration:
    """``⟨A, σ⟩`` — an agent paired with a store."""

    agent: Agent
    store: ConstraintStore

    @property
    def is_terminal(self) -> bool:
        return isinstance(self.agent, Success)

    def describe(self) -> str:
        return f"⟨{self.agent.describe()}, σ⟩"


@dataclass(frozen=True)
class Step:
    """One labelled transition ``⟨A, σ⟩ →(rule) ⟨A', σ'⟩``."""

    rule: str
    action: str
    configuration: Configuration


def successors(
    config: Configuration,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
) -> List[Step]:
    """All single-step successors of ``config`` (empty when stuck)."""
    return list(_step(config.agent, config.store, procedures))


def _step(
    agent: Agent, store: ConstraintStore, procedures: ProcedureTable
) -> Iterator[Step]:
    if isinstance(agent, Success):
        return

    if isinstance(agent, Tell):
        # R1: conditions checked on the *next-step* store σ ⊗ c.
        next_store = store.tell(agent.constraint)
        if agent.check is None or agent.check.holds(next_store):
            yield Step(
                "R1-Tell",
                "tell",
                Configuration(agent.continuation, next_store),
            )
        else:
            _count_check_failure("R1-Tell")
        return

    if isinstance(agent, Ask):
        # R2: σ ⊢ c and check(σ).
        if store.entails(agent.constraint):
            if agent.check is None or agent.check.holds(store):
                yield Step(
                    "R2-Ask", "ask", Configuration(agent.continuation, store)
                )
            else:
                _count_check_failure("R2-Ask")
        return

    if isinstance(agent, Nask):
        # R6: σ ⊬ c and check(σ).
        if not store.entails(agent.constraint):
            if agent.check is None or agent.check.holds(store):
                yield Step(
                    "R6-Nask",
                    "nask",
                    Configuration(agent.continuation, store),
                )
            else:
                _count_check_failure("R6-Nask")
        return

    if isinstance(agent, Retract):
        # R7: σ ⊑ c, σ' = σ ÷ c, check(σ').
        if store.entails(agent.constraint):
            next_store = store.retract(agent.constraint)
            if agent.check is None or agent.check.holds(next_store):
                yield Step(
                    "R7-Retract",
                    "retract",
                    Configuration(agent.continuation, next_store),
                )
            else:
                _count_check_failure("R7-Retract")
        return

    if isinstance(agent, Update):
        # R8: σ' = (σ ⇓_{V∖X}) ⊗ c, check(σ').
        next_store = store.update(agent.variables, agent.constraint)
        if agent.check is None or agent.check.holds(next_store):
            yield Step(
                "R8-Update",
                "update",
                Configuration(agent.continuation, next_store),
            )
        else:
            _count_check_failure("R8-Update")
        return

    if isinstance(agent, Sum):
        # R5: any branch whose guard is enabled may be chosen.
        for index, branch in enumerate(agent.branches):
            for inner in _step(branch, store, procedures):
                yield Step(
                    "R5-Nondet",
                    f"choose#{index}:{inner.action}",
                    inner.configuration,
                )
        return

    if isinstance(agent, Parallel):
        # R3/R4: interleave; a side that terminates disappears.
        for inner in _step(agent.left, store, procedures):
            reduced = inner.configuration
            next_agent: Agent = (
                agent.right
                if isinstance(reduced.agent, Success)
                else Parallel(reduced.agent, agent.right)
            )
            rule = "R4-Parall2" if isinstance(reduced.agent, Success) else "R3-Parall1"
            yield Step(
                rule,
                f"L:{inner.action}",
                Configuration(next_agent, reduced.store),
            )
        for inner in _step(agent.right, store, procedures):
            reduced = inner.configuration
            next_agent = (
                agent.left
                if isinstance(reduced.agent, Success)
                else Parallel(agent.left, reduced.agent)
            )
            rule = "R4-Parall2" if isinstance(reduced.agent, Success) else "R3-Parall1"
            yield Step(
                rule,
                f"R:{inner.action}",
                Configuration(next_agent, reduced.store),
            )
        return

    if isinstance(agent, Exists):
        # R9: rename the bound variable to a fresh one and step the body.
        fresh = fresh_name(agent.variable)
        body = agent.body.substitute({agent.variable: fresh})
        for inner in _step(body, store, procedures):
            yield Step("R9-Hide", inner.action, inner.configuration)
        return

    if isinstance(agent, Call):
        # R10: expand the body; the expansion itself must then step.
        body = procedures.expand(agent)
        for inner in _step(body, store, procedures):
            yield Step(
                "R10-PCall", f"{agent.name}:{inner.action}", inner.configuration
            )
        return

    raise TypeError(f"unknown agent node {type(agent).__name__}")


# ----------------------------------------------------------------------
# Configuration fingerprints (for exhaustive exploration)
# ----------------------------------------------------------------------


def store_fingerprint(store: ConstraintStore) -> Tuple:
    """A hashable summary of σ, delegated to the store backend.

    The monolith summarizes extensionally (scope names + value table);
    the factored backend answers with its incremental multiset digest,
    which never materializes the union scope.  A digest distinguishes
    differently-factored-but-equal stores — that only costs the explorer
    extra states, never wrong answers.
    """
    return store.fingerprint()


def config_key(config: Configuration) -> Tuple:
    """Hashable identity of a configuration for visited-set pruning.

    Agent identity is structural-by-construction (constraint objects by
    id), which may distinguish states a semantic check would merge; that
    only costs extra exploration, never wrong answers.
    """
    return (config.agent, store_fingerprint(config.store))
