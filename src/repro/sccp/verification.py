"""Invariant checking over the nmsccp configuration graph.

`explore` classifies terminal states; this module checks *path*
properties — the dependability questions one asks about a negotiation:

* ``check_invariant`` — does a store predicate hold in **every** reachable
  configuration?  (safety: "the consistency never drops below α while
  negotiating");
* ``check_eventually`` — does every maximal run **reach** a configuration
  satisfying a predicate?  (liveness-on-finite-graphs: "every schedule
  ends in an agreement at level 2");
* counterexamples come back as the actual transition path, replayable
  against the operational semantics.

All checks are exact on finite reachable graphs (the usual case: finite
domains and bounded policies) and report truncation otherwise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring
from .procedures import EMPTY_PROCEDURES, ProcedureTable
from .syntax import Agent
from .transitions import Configuration, Step, config_key, successors

StorePredicate = Callable[[ConstraintStore], bool]


@dataclass
class Counterexample:
    """A concrete path refuting a property."""

    path: List[Step]
    configuration: Configuration
    reason: str

    @property
    def length(self) -> int:
        return len(self.path)

    def describe(self) -> str:
        lines = [f"counterexample ({self.reason}), {self.length} step(s):"]
        lines.extend(
            f"  {i}: {step.rule} {step.action}"
            for i, step in enumerate(self.path)
        )
        lines.append(f"  reaches: {self.configuration.describe()}")
        return "\n".join(lines)


@dataclass
class VerificationResult:
    """Outcome of a graph check."""

    holds: bool
    counterexample: Optional[Counterexample] = None
    configurations_checked: int = 0
    truncated: bool = False

    def __bool__(self) -> bool:
        return self.holds


def _initial(
    agent: Agent,
    store: Optional[ConstraintStore],
    semiring: Optional[Semiring],
    store_backend: Optional[str] = None,
) -> Configuration:
    if store is None:
        if semiring is None:
            raise ValueError("need either a store or a semiring")
        store = empty_store(semiring, backend=store_backend)
    return Configuration(agent, store)


def check_invariant(
    agent: Agent,
    predicate: StorePredicate,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    max_configurations: int = 50_000,
    store_backend: Optional[str] = None,
) -> VerificationResult:
    """Safety: ``predicate(σ)`` in every reachable configuration.

    BFS with parent pointers, so a violation returns the shortest
    refuting path.
    """
    initial = _initial(agent, store, semiring, store_backend)
    result = VerificationResult(holds=True)

    if not predicate(initial.store):
        result.holds = False
        result.counterexample = Counterexample(
            [], initial, "initial store violates the invariant"
        )
        return result

    seen = {config_key(initial)}
    queue: deque[Tuple[Configuration, List[Step]]] = deque(
        [(initial, [])]
    )
    while queue:
        if result.configurations_checked >= max_configurations:
            result.truncated = True
            break
        configuration, path = queue.popleft()
        result.configurations_checked += 1
        for step in successors(configuration, procedures):
            key = config_key(step.configuration)
            if key in seen:
                continue
            seen.add(key)
            new_path = path + [step]
            if not predicate(step.configuration.store):
                result.holds = False
                result.counterexample = Counterexample(
                    new_path,
                    step.configuration,
                    "store violates the invariant",
                )
                return result
            queue.append((step.configuration, new_path))
    return result


def check_eventually(
    agent: Agent,
    predicate: StorePredicate,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    max_configurations: int = 50_000,
    require_success: bool = False,
    store_backend: Optional[str] = None,
) -> VerificationResult:
    """Every *maximal* run reaches a configuration satisfying the
    predicate (and, with ``require_success``, terminates in success).

    A maximal run ends in a terminal/stuck configuration or a cycle; the
    check fails when some stuck state (or cycle re-entry) is reached with
    the predicate never having held along the way.
    """
    initial = _initial(agent, store, semiring, store_backend)
    result = VerificationResult(holds=True)

    # State = (configuration, predicate already satisfied on this path?).
    start_satisfied = predicate(initial.store) and not require_success
    seen = {(config_key(initial), start_satisfied)}
    queue: deque[Tuple[Configuration, bool, List[Step]]] = deque(
        [(initial, start_satisfied, [])]
    )
    while queue:
        if result.configurations_checked >= max_configurations:
            result.truncated = True
            break
        configuration, satisfied, path = queue.popleft()
        result.configurations_checked += 1
        steps = successors(configuration, procedures)
        if not steps:
            terminal_ok = satisfied or (
                predicate(configuration.store)
                and (configuration.is_terminal or not require_success)
            )
            if require_success and not configuration.is_terminal:
                terminal_ok = False
            if not terminal_ok:
                result.holds = False
                result.counterexample = Counterexample(
                    path,
                    configuration,
                    "maximal run ends without satisfying the property",
                )
                return result
            continue
        for step in steps:
            next_satisfied = satisfied or (
                predicate(step.configuration.store)
                and (
                    not require_success
                    or step.configuration.is_terminal
                )
            )
            key = (config_key(step.configuration), next_satisfied)
            if key in seen:
                continue
            seen.add(key)
            queue.append(
                (step.configuration, next_satisfied, path + [step])
            )
    return result


def consistency_invariant(
    semiring: Semiring, worst_acceptable
) -> StorePredicate:
    """Sugar: 'σ⇓∅ never drops below ``worst_acceptable``' (¬< — see the
    Fig. 3 convention for partial orders)."""

    def predicate(store: ConstraintStore) -> bool:
        return not semiring.lt(store.consistency(), worst_acceptable)

    return predicate
