"""Abstract syntax of the nmsccp language (paper Fig. 2).

::

    P ::= F . A
    F ::= p(Y) :: A  |  F . F
    A ::= success | tell(c)→A | retract(c)→A | update_X(c)→A
        | E | A ‖ A | ∃x.A | p(Y)
    E ::= ask(c)→A | nask(c)→A | E + E

Agents are immutable; ``substitute`` renames variables inside constraints
(used by the hiding rule's fresh variables and by procedure-call parameter
passing).  Every checked action carries a :class:`~repro.sccp.check.CheckSpec`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence, Tuple

from ..constraints.constraint import SoftConstraint
from ..constraints.variables import Variable
from .check import CheckSpec


class SyntaxError_(Exception):
    """Raised on malformed nmsccp agents (shadowing the builtin on purpose
    would be rude; hence the trailing underscore)."""


def _rename_spec(
    spec: Optional[CheckSpec], mapping: Mapping[str, str]
) -> Optional[CheckSpec]:
    """Rename constraint thresholds inside a check spec."""
    if spec is None:
        return None

    def rename(threshold):
        if isinstance(threshold, SoftConstraint):
            return threshold.renamed(mapping)
        return threshold

    return CheckSpec(
        spec.semiring, lower=rename(spec.lower), upper=rename(spec.upper)
    )


class Agent(ABC):
    """Base class of every nmsccp agent."""

    @abstractmethod
    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        """Rename free variables according to ``mapping`` (``A[x/y]``)."""

    @abstractmethod
    def describe(self) -> str:
        """Short, human-readable syntax rendering (for traces)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class Success(Agent):
    """The terminated agent."""

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return self

    def describe(self) -> str:
        return "success"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Success)

    def __hash__(self) -> int:
        return hash(Success)


#: Shared terminal agent.
SUCCESS = Success()


class _CheckedAction(Agent):
    """Common shape of tell/ask/nask/retract/update: a constraint, a
    checked arrow and a continuation."""

    action_name = "?"

    def __init__(
        self,
        constraint: SoftConstraint,
        check: Optional[CheckSpec] = None,
        continuation: Agent = SUCCESS,
    ) -> None:
        self.constraint = constraint
        self.check = check
        self.continuation = continuation
        if check is not None and check.semiring != constraint.semiring:
            raise SyntaxError_(
                f"{self.action_name}: check over {check.semiring.name} but "
                f"constraint over {constraint.semiring.name}"
            )

    def then(self, continuation: Agent) -> "Agent":
        """A copy of this action with its continuation replaced."""
        clone = type(self)(self.constraint, self.check, continuation)
        return clone

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return type(self)(
            self.constraint.renamed(mapping),
            _rename_spec(self.check, mapping),
            self.continuation.substitute(mapping),
        )

    def describe(self) -> str:
        arrow = repr(self.check) if self.check is not None else "→"
        cont = self.continuation.describe()
        return f"{self.action_name}(c){arrow} {cont}"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.constraint is other.constraint
            and self.check is other.check
            and self.continuation == other.continuation
        )

    def __hash__(self) -> int:
        return hash(
            (type(self), id(self.constraint), id(self.check), self.continuation)
        )


class Tell(_CheckedAction):
    """``tell(c)→A`` — add ``c`` to the store when the *resulting* store
    passes the check (rule R1)."""

    action_name = "tell"


class Ask(_CheckedAction):
    """``ask(c)→A`` — proceed when σ entails ``c`` and σ passes the check
    (rule R2).  A guard: usable inside ``+``."""

    action_name = "ask"


class Nask(_CheckedAction):
    """``nask(c)→A`` — proceed when σ does *not* entail ``c`` and σ passes
    the check (rule R6).  A guard: usable inside ``+``."""

    action_name = "nask"


class Retract(_CheckedAction):
    """``retract(c)→A`` — divide ``c`` out of the store when σ entails it
    and the resulting store passes the check (rule R7)."""

    action_name = "retract"


class Update(Agent):
    """``update_X(c)→A`` — transactionally refresh the variables ``X`` and
    add ``c`` (rule R8)."""

    def __init__(
        self,
        variables: Sequence[str | Variable],
        constraint: SoftConstraint,
        check: Optional[CheckSpec] = None,
        continuation: Agent = SUCCESS,
    ) -> None:
        self.variables: Tuple[str, ...] = tuple(
            item.name if isinstance(item, Variable) else item
            for item in variables
        )
        if not self.variables:
            raise SyntaxError_("update needs at least one variable")
        self.constraint = constraint
        self.check = check
        self.continuation = continuation

    def then(self, continuation: Agent) -> "Update":
        return Update(self.variables, self.constraint, self.check, continuation)

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Update(
            tuple(mapping.get(name, name) for name in self.variables),
            self.constraint.renamed(mapping),
            _rename_spec(self.check, mapping),
            self.continuation.substitute(mapping),
        )

    def describe(self) -> str:
        arrow = repr(self.check) if self.check is not None else "→"
        names = ",".join(self.variables)
        return f"update_{{{names}}}(c){arrow} {self.continuation.describe()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Update)
            and self.variables == other.variables
            and self.constraint is other.constraint
            and self.check is other.check
            and self.continuation == other.continuation
        )

    def __hash__(self) -> int:
        return hash(
            (
                Update,
                self.variables,
                id(self.constraint),
                id(self.check),
                self.continuation,
            )
        )


class Parallel(Agent):
    """``A ‖ B`` — interleaved parallel composition (rules R3/R4)."""

    def __init__(self, left: Agent, right: Agent) -> None:
        self.left = left
        self.right = right

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Parallel(
            self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def describe(self) -> str:
        return f"({self.left.describe()} ‖ {self.right.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Parallel)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((Parallel, self.left, self.right))


class Sum(Agent):
    """``E + E`` — global nondeterministic choice among guards (rule R5).

    Per the grammar, every branch must be a guard (``ask``/``nask``) or a
    nested sum; flattening happens at construction.
    """

    def __init__(self, branches: Sequence[Agent]) -> None:
        flat: list[Agent] = []
        for branch in branches:
            if isinstance(branch, Sum):
                flat.extend(branch.branches)
            elif isinstance(branch, (Ask, Nask)):
                flat.append(branch)
            else:
                raise SyntaxError_(
                    "sum branches must be ask/nask guards (grammar E), got "
                    f"{branch.describe()}"
                )
        if not flat:
            raise SyntaxError_("sum needs at least one branch")
        self.branches: Tuple[Agent, ...] = tuple(flat)

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Sum([b.substitute(mapping) for b in self.branches])

    def describe(self) -> str:
        return " + ".join(b.describe() for b in self.branches)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sum) and self.branches == other.branches

    def __hash__(self) -> int:
        return hash((Sum, self.branches))


class Exists(Agent):
    """``∃x.A`` — ``x`` is local to ``A``; stepping renames it to a fresh
    variable (rule R9)."""

    def __init__(self, variable: str | Variable, body: Agent) -> None:
        self.variable = (
            variable.name if isinstance(variable, Variable) else variable
        )
        self.body = body

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        # The bound variable is not free: shield it from the renaming.
        shielded = {k: v for k, v in mapping.items() if k != self.variable}
        return Exists(self.variable, self.body.substitute(shielded))

    def describe(self) -> str:
        return f"∃{self.variable}.({self.body.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Exists)
            and self.variable == other.variable
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((Exists, self.variable, self.body))


class Call(Agent):
    """``p(Y)`` — invoke procedure ``p`` with actual parameters ``Y``
    (rule R10; parameter passing by renaming the formals)."""

    def __init__(self, name: str, actuals: Sequence[str | Variable] = ()) -> None:
        self.name = name
        self.actuals: Tuple[str, ...] = tuple(
            item.name if isinstance(item, Variable) else item
            for item in actuals
        )

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Call(
            self.name,
            tuple(mapping.get(name, name) for name in self.actuals),
        )

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.actuals)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Call)
            and self.name == other.name
            and self.actuals == other.actuals
        )

    def __hash__(self) -> int:
        return hash((Call, self.name, self.actuals))


# ----------------------------------------------------------------------
# Builder sugar
# ----------------------------------------------------------------------


def tell(
    constraint: SoftConstraint,
    check: Optional[CheckSpec] = None,
    then: Agent = SUCCESS,
) -> Tell:
    return Tell(constraint, check, then)


def ask(
    constraint: SoftConstraint,
    check: Optional[CheckSpec] = None,
    then: Agent = SUCCESS,
) -> Ask:
    return Ask(constraint, check, then)


def nask(
    constraint: SoftConstraint,
    check: Optional[CheckSpec] = None,
    then: Agent = SUCCESS,
) -> Nask:
    return Nask(constraint, check, then)


def retract(
    constraint: SoftConstraint,
    check: Optional[CheckSpec] = None,
    then: Agent = SUCCESS,
) -> Retract:
    return Retract(constraint, check, then)


def update(
    variables: Sequence[str | Variable],
    constraint: SoftConstraint,
    check: Optional[CheckSpec] = None,
    then: Agent = SUCCESS,
) -> Update:
    return Update(variables, constraint, check, then)


def parallel(*agents: Agent) -> Agent:
    """Right-fold agents into nested ``‖`` (at least one required)."""
    if not agents:
        raise SyntaxError_("parallel needs at least one agent")
    result = agents[-1]
    for agent in reversed(agents[:-1]):
        result = Parallel(agent, result)
    return result


def choice(*branches: Agent) -> Agent:
    """Nondeterministic sum of guards; a single branch is returned as-is."""
    if len(branches) == 1:
        only = branches[0]
        if not isinstance(only, (Ask, Nask, Sum)):
            raise SyntaxError_("choice branches must be guards")
        return only
    return Sum(branches)


def exists(variable: str | Variable, body: Agent) -> Exists:
    return Exists(variable, body)


def call(name: str, *actuals: str | Variable) -> Call:
    return Call(name, actuals)


def sequence(*actions) -> Agent:
    """Chain prefix actions: ``sequence(a1, a2, …)`` nests continuations.

    Every element but the last must be a checked action (something with a
    ``then`` method); the last may be any agent.
    """
    if not actions:
        return SUCCESS
    result = actions[-1]
    if not isinstance(result, Agent):
        raise SyntaxError_("last element of a sequence must be an agent")
    for action in reversed(actions[:-1]):
        if not hasattr(action, "then"):
            raise SyntaxError_(
                f"{action!r} cannot prefix a sequence (no continuation slot)"
            )
        result = action.then(result)
    return result
