"""Timed extension of nmsccp (paper Sec. 4.1: "by embedding timing
mechanisms in the language as explained in [4]" — Bistarelli, Gabbrielli,
Meo & Santini, *Timed soft concurrent constraint programs*,
COORDINATION 2008).

Time is discrete and advances when the computation cannot: a
:class:`TimedRun` performs as many instantaneous transitions per time
slot as the scheduler allows, and when every remaining agent is blocked
it emits a *tick* which wakes timing constructs:

* ``delay(n, agent)`` — inert for ``n`` ticks, then behaves as ``agent``;
* ``timeout(guard, n, fallback)`` — behaves as the guard (an
  ask/nask-prefixed agent) if it fires within ``n`` ticks, otherwise as
  ``fallback``.  This is the classic timed-ccp "ask with timeout" that
  lets a provider retract or relax a policy when the negotiation stalls.

The untimed rules are untouched — timed nodes are ordinary agents whose
transitions are driven by the tick hook, so everything composes with
``‖``, ``+`` and procedures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..constraints.store import ConstraintStore, empty_store
from ..semirings.base import Semiring
from .interpreter import Status
from .procedures import EMPTY_PROCEDURES, ProcedureTable
from .scheduler import DeterministicScheduler, Scheduler
from .syntax import Agent, Ask, Nask, Success, SyntaxError_
from .traces import Trace
from .transitions import Configuration, Step, successors


class Delay(Agent):
    """``delay(n).A`` — becomes ``A`` after ``n`` clock ticks."""

    def __init__(self, ticks: int, body: Agent) -> None:
        if ticks < 0:
            raise SyntaxError_("delay needs a non-negative tick count")
        self.ticks = ticks
        self.body = body

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Delay(self.ticks, self.body.substitute(mapping))

    def describe(self) -> str:
        return f"delay({self.ticks}).{self.body.describe()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Delay)
            and self.ticks == other.ticks
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((Delay, self.ticks, self.body))


class Timeout(Agent):
    """``timeout(guard, n, fallback)`` — guard must fire within ``n``
    ticks, else the agent becomes ``fallback``.

    ``guard`` must be an ask/nask action (grammar class E), matching the
    timed-ccp treatment where only blocking guards can time out.
    """

    def __init__(self, guard: Agent, ticks: int, fallback: Agent) -> None:
        if not isinstance(guard, (Ask, Nask)):
            raise SyntaxError_("timeout guard must be ask or nask")
        if ticks < 0:
            raise SyntaxError_("timeout needs a non-negative tick count")
        self.guard = guard
        self.ticks = ticks
        self.fallback = fallback

    def substitute(self, mapping: Mapping[str, str]) -> "Agent":
        return Timeout(
            self.guard.substitute(mapping),
            self.ticks,
            self.fallback.substitute(mapping),
        )

    def describe(self) -> str:
        return (
            f"timeout({self.guard.describe()}, {self.ticks}, "
            f"{self.fallback.describe()})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Timeout)
            and self.guard == other.guard
            and self.ticks == other.ticks
            and self.fallback == other.fallback
        )

    def __hash__(self) -> int:
        return hash((Timeout, self.guard, self.ticks, self.fallback))


def delay(ticks: int, body: Agent) -> Delay:
    return Delay(ticks, body)


def timeout(guard: Agent, ticks: int, fallback: Agent) -> Timeout:
    return Timeout(guard, ticks, fallback)


def timed_successors(
    config: Configuration, procedures: ProcedureTable = EMPTY_PROCEDURES
) -> List[Step]:
    """Instantaneous transitions, timed-node aware.

    A ``Delay(0)``/expired ``Timeout`` is transparent; a pending timed
    node offers no instantaneous step (it waits for ticks).
    """
    agent = config.agent
    if isinstance(agent, Delay):
        if agent.ticks == 0:
            return timed_successors(
                Configuration(agent.body, config.store), procedures
            )
        return []
    if isinstance(agent, Timeout):
        # the guard may fire instantaneously at any residual tick count
        return [
            Step(step.rule, f"timeout-guard:{step.action}", step.configuration)
            for step in successors(
                Configuration(agent.guard, config.store), procedures
            )
        ]
    from .syntax import Exists, Parallel

    if isinstance(agent, Exists):
        from .transitions import fresh_name

        fresh = fresh_name(agent.variable)
        body = agent.body.substitute({agent.variable: fresh})
        return [
            Step("R9-Hide", step.action, step.configuration)
            for step in timed_successors(
                Configuration(body, config.store), procedures
            )
        ]
    if isinstance(agent, Parallel):
        steps: List[Step] = []
        for side, other, tag in (
            (agent.left, agent.right, "L"),
            (agent.right, agent.left, "R"),
        ):
            for inner in timed_successors(
                Configuration(side, config.store), procedures
            ):
                reduced = inner.configuration.agent
                if isinstance(reduced, Success):
                    next_agent: Agent = other
                else:
                    next_agent = (
                        Parallel(reduced, other)
                        if tag == "L"
                        else Parallel(other, reduced)
                    )
                steps.append(
                    Step(
                        inner.rule,
                        f"{tag}:{inner.action}",
                        Configuration(next_agent, inner.configuration.store),
                    )
                )
        return steps
    return successors(config, procedures)


def tick(agent: Agent) -> Agent:
    """Advance one time unit inside a blocked agent tree.

    Decrements pending delays and timeouts; an expiring timeout becomes
    its fallback.  Untimed leaves are unchanged (they stay blocked until
    the store changes).
    """
    if isinstance(agent, Delay):
        if agent.ticks <= 1:
            return agent.body
        return Delay(agent.ticks - 1, agent.body)
    if isinstance(agent, Timeout):
        if agent.ticks == 0:
            return agent.fallback
        return Timeout(agent.guard, agent.ticks - 1, agent.fallback)
    from .syntax import Exists, Parallel

    if isinstance(agent, Parallel):
        return Parallel(tick(agent.left), tick(agent.right))
    if isinstance(agent, Exists):
        return Exists(agent.variable, tick(agent.body))
    return agent


@dataclass
class TimedRunResult:
    """Outcome of a timed execution."""

    status: Status
    configuration: Configuration
    trace: Trace
    steps: int
    ticks: int

    @property
    def store(self) -> ConstraintStore:
        return self.configuration.store

    def consistency(self):
        return self.store.consistency()


def timed_run(
    agent: Agent,
    store: Optional[ConstraintStore] = None,
    semiring: Optional[Semiring] = None,
    procedures: ProcedureTable = EMPTY_PROCEDURES,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 10_000,
    max_ticks: int = 1_000,
) -> TimedRunResult:
    """Run under the maximal-progress timed semantics.

    Within a time slot, instantaneous transitions fire until none is
    enabled; then the clock ticks.  Deadlock is declared only when a
    blocked agent tree contains no pending timer (no tick can ever help).
    """
    if store is None:
        if semiring is None:
            raise ValueError("timed_run() needs either a store or a semiring")
        store = empty_store(semiring)
    scheduler = scheduler or DeterministicScheduler()

    configuration = Configuration(agent, store)
    trace = Trace()
    steps_taken = 0
    ticks_elapsed = 0
    while steps_taken < max_steps and ticks_elapsed <= max_ticks:
        if isinstance(configuration.agent, Success):
            return TimedRunResult(
                Status.SUCCESS, configuration, trace, steps_taken, ticks_elapsed
            )
        enabled = timed_successors(configuration, procedures)
        if enabled:
            step = scheduler.choose(enabled)
            trace.record(step)
            configuration = step.configuration
            steps_taken += 1
            continue
        ticked = tick(configuration.agent)
        if ticked == configuration.agent:
            return TimedRunResult(
                Status.DEADLOCK,
                configuration,
                trace,
                steps_taken,
                ticks_elapsed,
            )
        configuration = Configuration(ticked, configuration.store)
        ticks_elapsed += 1
    return TimedRunResult(
        Status.EXHAUSTED, configuration, trace, steps_taken, ticks_elapsed
    )
