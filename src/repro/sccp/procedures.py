"""Procedure declarations ``p(Y) :: A`` (paper Fig. 2, rule R10).

A :class:`ProcedureTable` maps names to (formal parameters, body).
Parameter passing follows the cylindric-algebra account of the paper
([BMR 2006]): operationally we rename the formals to the actuals, which
for distinct actual variables coincides with linking them through
diagonal constraints ``d_xy`` and hiding the formals (the equivalence is
exercised in the test suite via
:func:`repro.constraints.cylindric.parameter_passing`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..constraints.variables import Variable
from .syntax import Agent, Call, SyntaxError_


class ProcedureError(Exception):
    """Raised on unknown procedures, arity mismatch, or redefinitions."""


class ProcedureTable:
    """The sequence of clauses ``F`` of an nmsccp program."""

    def __init__(self) -> None:
        self._table: Dict[str, Tuple[Tuple[str, ...], Agent]] = {}

    def declare(
        self, name: str, formals: Sequence[str | Variable], body: Agent
    ) -> None:
        """Add ``p(formals) :: body``; duplicate names are rejected."""
        if name in self._table:
            raise ProcedureError(f"procedure {name!r} already declared")
        formal_names = tuple(
            item.name if isinstance(item, Variable) else item
            for item in formals
        )
        if len(set(formal_names)) != len(formal_names):
            raise ProcedureError(
                f"procedure {name!r} has duplicate formal parameters"
            )
        self._table[name] = (formal_names, body)

    def names(self) -> Iterable[str]:
        return sorted(self._table)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __len__(self) -> int:
        return len(self._table)

    def expand(self, invocation: Call) -> Agent:
        """The body of ``p`` with formals renamed to the actuals."""
        try:
            formals, body = self._table[invocation.name]
        except KeyError:
            raise ProcedureError(
                f"unknown procedure {invocation.name!r}"
            ) from None
        if len(formals) != len(invocation.actuals):
            raise ProcedureError(
                f"procedure {invocation.name!r} expects {len(formals)} "
                f"argument(s), got {len(invocation.actuals)}"
            )
        mapping = {
            formal: actual
            for formal, actual in zip(formals, invocation.actuals)
            if formal != actual
        }
        if not mapping:
            return body
        if len(set(mapping.values())) != len(mapping):
            raise SyntaxError_(
                f"call {invocation.describe()} passes one variable to two "
                "formals; alias parameters are not supported"
            )
        return body.substitute(mapping)


EMPTY_PROCEDURES = ProcedureTable()
