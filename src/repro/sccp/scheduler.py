"""Schedulers: which enabled transition fires next.

The paper's semantics is nondeterministic (interleaving ‖, global choice
+).  A scheduler resolves that nondeterminism for a concrete run; the
exhaustive explorer in :mod:`repro.sccp.interpreter` instead follows every
branch, which is how we check that negotiation outcomes are
scheduler-independent.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from .transitions import Step


class Scheduler(ABC):
    """Strategy object choosing one step among the enabled ones."""

    @abstractmethod
    def choose(self, steps: Sequence[Step]) -> Step:
        """Pick one of ``steps`` (guaranteed non-empty)."""


class DeterministicScheduler(Scheduler):
    """Always the first enabled step (leftmost agent, first branch).

    Deterministic and reproducible; the default for examples whose paper
    narrative fixes an order.
    """

    def choose(self, steps: Sequence[Step]) -> Step:
        return steps[0]


class RandomScheduler(Scheduler):
    """Uniformly random among enabled steps, from a seeded RNG."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def choose(self, steps: Sequence[Step]) -> Step:
        return self._rng.choice(list(steps))


class RoundRobinScheduler(Scheduler):
    """Rotates which enabled step is taken — a fair interleaving that
    prevents one agent from starving the others."""

    def __init__(self) -> None:
        self._turn = 0

    def choose(self, steps: Sequence[Step]) -> Step:
        step = steps[self._turn % len(steps)]
        self._turn += 1
        return step


class ScriptedScheduler(Scheduler):
    """Follows a fixed list of indices (for tests that pin a schedule).

    Falls back to index 0 when the script is exhausted or out of range.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script: List[int] = list(script)
        self._position = 0

    def choose(self, steps: Sequence[Step]) -> Step:
        index = 0
        if self._position < len(self._script):
            index = self._script[self._position]
            self._position += 1
        if not 0 <= index < len(steps):
            index = 0
        return steps[index]
