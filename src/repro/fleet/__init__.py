"""repro.fleet — the sharded multi-broker serving fleet.

Scales the serving path horizontally (ROADMAP item 1): a seeded
consistent-hash ring partitions the session space (and optionally the
registry, by operation) across N :class:`~repro.runtime.RuntimeServer`
broker shards; a front-end load balancer does queue-based load leveling
with typed ``Overloaded`` backpressure and shard-aware redirect when a
reshard moves a key mid-flight; and every shard's solve cache becomes
the L1 of a two-tier stack over one fleet-wide L2 keyed by the SHA-256
problem fingerprint.  Determinism: per-session RNG streams derive from
``(master seed, session key)``, so a fleet run's agreements are
independent of shard count.
"""

from .cache import (
    DEFAULT_L2_CACHE_SIZE,
    CacheBackend,
    InProcessCacheBackend,
    TieredSolveCache,
)
from .frontend import (
    FleetConfig,
    FleetError,
    FleetFrontend,
    ROUTE_MODES,
    drive_fleet,
    partition_registry,
)
from .loadgen import FleetLoadGenerator, FleetLoadReport
from .ring import DEFAULT_VNODES, HashRing, RingError, hash_key

__all__ = [
    "HashRing",
    "RingError",
    "hash_key",
    "DEFAULT_VNODES",
    "CacheBackend",
    "InProcessCacheBackend",
    "TieredSolveCache",
    "DEFAULT_L2_CACHE_SIZE",
    "FleetFrontend",
    "FleetConfig",
    "FleetError",
    "ROUTE_MODES",
    "partition_registry",
    "drive_fleet",
    "FleetLoadGenerator",
    "FleetLoadReport",
]
