"""The fleet's two-tier solve cache: per-shard L1 over a fleet-wide L2.

Cache-aside over the existing SHA-256 problem fingerprint
(:func:`repro.solver.cache.problem_fingerprint`): every shard broker
keeps its own :class:`~repro.solver.cache.SolveCache` as L1, and on an
L1 miss consults a single fleet-wide L2 shared by all shards.  An L2
hit is *promoted* into the shard's L1 (the next repeat on that shard is
a pure-local hit); a full miss solves and writes through both tiers, so
the first shard to see a problem warms every other shard at once — the
distributed-cache / cache-aside pattern pair from the scalability
catalogue.

The L2 hides behind the tiny :class:`CacheBackend` protocol (``get`` /
``put`` / ``stats``).  :class:`InProcessCacheBackend` is the shipped
implementation — a thread-safe, TTL-capable
:class:`~repro.caching.LRUCache` shared by reference across shards of
one process — and a networked backend (memcached/Redis speaking the
same fingerprint keys) can slot in without touching the tiering logic.
Entries are :class:`~repro.solver.cache._CacheEntry` payloads: already
problem-independent and immutable, exactly what a serializing backend
would marshal.

Observability: both tiers' LRUs carry a ``tier`` label on the shared
``cache_hits_total``/``cache_misses_total`` counters, and the tier
stack itself reports ``fleet_solve_cache_requests_total{tier,outcome}``
plus ``fleet_l2_promotions_total`` — enough to read the L1/L2 hit split
of a whole fleet off one metrics snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

from ..caching import LRUCache
from ..solver.cache import (
    DEFAULT_SOLVE_CACHE_SIZE,
    SolveCache,
    _CacheEntry,
)
from ..solver.problem import SCSP, SolverResult
from ..telemetry import get_registry

#: Default fleet-wide L2 capacity: one L2 entry costs the same as an L1
#: entry and serves every shard, so it is sized a few shards deep.
DEFAULT_L2_CACHE_SIZE = 4 * DEFAULT_SOLVE_CACHE_SIZE

#: Preseeded so a snapshot always shows the full tier/outcome family.
TIER_OUTCOMES = (
    ("l1", "hit"),
    ("l2", "hit"),
    ("l2", "miss"),
)


@runtime_checkable
class CacheBackend(Protocol):
    """What the tier stack needs from a fleet-wide cache store."""

    def get(self, key: str) -> Optional[Any]:
        """The stored entry, or ``None``."""

    def put(self, key: str, entry: Any) -> None:
        """Store ``entry`` under ``key`` (last write wins)."""

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for reporting."""


class InProcessCacheBackend:
    """Process-local L2: one thread-safe LRU shared across shards.

    Optional ``ttl`` ages entries out (stale agreements expire instead
    of being served forever); ``clock`` is injectable for tests and is
    never consulted when no TTL is set.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_L2_CACHE_SIZE,
        ttl: Optional[float] = None,
        clock: Optional[Any] = None,
    ) -> None:
        self._lru = LRUCache(
            maxsize,
            name="solve",
            threadsafe=True,
            tier="l2",
            ttl=ttl,
            clock=clock,
        )

    def get(self, key: str) -> Optional[Any]:
        return self._lru.get(key)

    def put(self, key: str, entry: Any) -> None:
        self._lru.put(key, entry)

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InProcessCacheBackend({self._lru!r})"


class TieredSolveCache:
    """Drop-in :class:`~repro.solver.cache.SolveCache` replacement that
    stacks a private L1 on a shared L2.

    Same ``fetch``/``store`` surface, so :func:`repro.solver.solve` and
    the broker use it unchanged.  ``fetch`` tries L1, then L2 (promoting
    hits into L1); ``store`` writes through both tiers.
    """

    def __init__(
        self,
        l2: CacheBackend,
        l1_maxsize: int = DEFAULT_SOLVE_CACHE_SIZE,
    ) -> None:
        self._l1 = SolveCache(l1_maxsize, tier="l1")
        self._l2 = l2
        self.promotions = 0

    @property
    def l1(self) -> SolveCache:
        return self._l1

    @property
    def l2(self) -> CacheBackend:
        return self._l2

    def fetch(self, key: str, problem: SCSP) -> Optional[SolverResult]:
        entry = self._l1.fetch_entry(key)
        if entry is not None:
            self._count("l1", "hit")
            return entry.result_for(problem)
        entry = self._l2.get(key)
        if entry is None:
            # The L1 miss was already counted by the L1 LRU itself;
            # the stack's verdict is the L2 outcome.
            self._count("l2", "miss")
            return None
        self._l1.store_entry(key, entry)
        self.promotions += 1
        self._count("l2", "hit")
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "fleet_l2_promotions_total",
                "L2 hits promoted into a shard's L1 solve cache.",
            ).inc()
        return entry.result_for(problem)

    def store(self, key: str, result: SolverResult) -> None:
        entry = _CacheEntry.from_result(result)
        self._l1.store_entry(key, entry)
        self._l2.put(key, entry)

    def clear(self) -> None:
        """Clear the private L1 only — the L2 is shared fleet state."""
        self._l1.clear()

    def stats(self) -> Dict[str, Any]:
        """Per-tier counters plus the promotion count."""
        return {
            "l1": self._l1.stats(),
            "l2": self._l2.stats(),
            "promotions": self.promotions,
        }

    def _count(self, tier: str, outcome: str) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "fleet_solve_cache_requests_total",
            "Tiered solve-cache lookups, by answering tier and outcome.",
            labelnames=("tier", "outcome"),
        ).preseed(TIER_OUTCOMES).labels(tier, outcome).inc()

    def __len__(self) -> int:
        return len(self._l1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TieredSolveCache(l1={self._l1!r}, l2={self._l2!r}, "
            f"{self.promotions} promotion(s))"
        )
