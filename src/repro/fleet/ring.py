"""Consistent-hash ring: stable key→shard assignment with vnodes.

The fleet partitions its session space (and, optionally, the service
registry by operation) across broker shards.  A naive ``hash(key) % N``
reassigns almost every key when ``N`` changes; the classic
consistent-hashing construction (the *sharding pattern* of the
scalability-patterns catalogue) bounds that movement: each shard owns
``vnodes`` pseudo-random arcs of a 64-bit ring, a key belongs to the
shard whose point follows it clockwise, and adding one shard to an
``N``-shard ring moves only the keys falling into the new shard's arcs
— about ``K/(N+1)`` of ``K`` keys, never the rest.

Determinism: every point position is a SHA-256 of
``(seed, shard, replica)`` and key placement is a SHA-256 of the key —
no :mod:`random` state anywhere, so two rings built with the same seed
and shard set agree on every assignment, across processes and Python
versions (``PYTHONHASHSEED`` does not matter).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Virtual nodes per shard; more vnodes → better balance, slower builds.
DEFAULT_VNODES = 64


class RingError(Exception):
    """Raised on malformed rings (no shards, duplicate ids, …)."""


def _point(seed: int, shard: str, replica: int) -> int:
    """The 64-bit ring position of one virtual node."""
    digest = hashlib.sha256(
        f"vnode:{seed}:{shard}:{replica}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def hash_key(key: str) -> int:
    """The 64-bit ring position of a routing key."""
    digest = hashlib.sha256(f"key:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Seeded consistent-hash ring over named shards.

    ``assign`` is pure: the same ``(seed, shard set, key)`` triple gives
    the same shard forever.  ``add_shard``/``remove_shard`` mutate the
    ring in place and bump :attr:`version`, which the fleet front-end
    uses to detect a reshard racing an in-flight dispatch.
    """

    def __init__(
        self,
        shards: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise RingError("vnodes must be at least 1")
        self.vnodes = vnodes
        self.seed = seed
        self.version = 0
        #: Sorted ``(position, shard)`` points; ties (astronomically
        #: unlikely 64-bit collisions) break lexicographically on the
        #: shard id, keeping assignment total and deterministic.
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        self._shards: Dict[str, None] = {}  # insertion-ordered set
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def shards(self) -> List[str]:
        """Shard ids in insertion order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def add_shard(self, shard: str) -> None:
        """Join a shard: it takes over the keys its vnodes cover."""
        if shard in self._shards:
            raise RingError(f"shard {shard!r} already on the ring")
        self._shards[shard] = None
        for replica in range(self.vnodes):
            entry = (_point(self.seed, shard, replica), shard)
            bisect.insort(self._points, entry)
        self._positions = [position for position, _ in self._points]
        self.version += 1

    def remove_shard(self, shard: str) -> None:
        """Leave a shard: its keys fall to their next-clockwise owner."""
        if shard not in self._shards:
            raise RingError(f"shard {shard!r} not on the ring")
        del self._shards[shard]
        self._points = [
            point for point in self._points if point[1] != shard
        ]
        self._positions = [position for position, _ in self._points]
        self.version += 1

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def assign(self, key: str) -> str:
        """The shard owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise RingError("cannot assign on an empty ring")
        index = bisect.bisect_right(self._positions, hash_key(key))
        if index == len(self._points):  # wrap past 2^64 − 1
            index = 0
        return self._points[index][1]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` land on each shard (balance probes and
        capacity planning; every shard reports, even at zero)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.assign(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing({len(self._shards)} shard(s) × {self.vnodes} "
            f"vnode(s), seed={self.seed}, v{self.version})"
        )
