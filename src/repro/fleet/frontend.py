"""The fleet front-end: queue-based load leveling over broker shards.

One :class:`FleetFrontend` stands in front of N
:class:`~repro.runtime.server.RuntimeServer` shards and scales the
serving path horizontally (the load-balancer + queue-based-load-leveling
patterns of the scalability catalogue):

* **one bounded ingress queue** — admission control happens at the
  fleet edge: a full ingress resolves the session immediately with a
  typed :class:`~repro.runtime.server.Overloaded` result, exactly like
  a single server's admission queue, so callers see one backpressure
  surface whatever the fleet size;
* **per-shard dispatch queues** — a dispatcher routes each session by
  its key through the :class:`~repro.fleet.ring.HashRing` and levels
  bursts into the owning shard's bounded queue (a saturated shard
  throttles intake instead of growing an unbounded backlog);
* **bounded in-flight slots per shard** — each shard pump forwards
  work only while the shard has capacity, so a shard's own admission
  queue can never overflow from fleet traffic;
* **shard-aware retry-on-redirect** — a reshard
  (:meth:`FleetFrontend.add_shard` / :meth:`remove_shard`) can move a
  key while its session sits in a dispatch queue; the pump re-checks
  ownership at the last moment and forwards moved sessions to their new
  owner (``fleet_redirects_total``) instead of serving them on the
  wrong shard.

Determinism: the front-end stamps every session with a *session key*
(its global ingress sequence number plus client/operation) and a global
fault tick, and each shard derives the session RNG from ``(master
seed, session key)`` (:func:`~repro.runtime.server.derive_session_seed`)
— so fault draws, backoff jitter and therefore agreements are identical
whatever the shard count, the same way PR 5's coalition engine is
worker-count independent.

Caching: with ``l2_cache`` on (the default), every shard broker gets a
:class:`~repro.fleet.cache.TieredSolveCache` — private L1, one shared
:class:`~repro.fleet.cache.InProcessCacheBackend` L2 — so the first
shard to solve a fingerprint warms the whole fleet.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..resilience.breaker import BreakerRegistry
from ..resilience.dlq import DeadLetterQueue
from ..resilience.health import HealthMonitor
from ..resilience.policy import ResilienceConfig, build_resilience
from ..runtime.batching import BatchConfig
from ..runtime.retry import RetryPolicy
from ..runtime.server import (
    Overloaded,
    RuntimeConfig,
    RuntimeServer,
    SessionResult,
    SessionStatus,
    derive_session_seed,
)
from ..soa.broker import Broker, ClientRequest
from ..soa.faults import FaultInjector
from ..soa.registry import ServiceRegistry
from ..telemetry import get_events, get_registry, get_tracer
from .cache import DEFAULT_L2_CACHE_SIZE, InProcessCacheBackend, TieredSolveCache
from .ring import DEFAULT_VNODES, HashRing

#: Routing modes: ``session`` spreads the session space uniformly over
#: the ring (every shard sees the whole registry); ``operation`` routes
#: by operation name, giving each shard ownership of the operations —
#: and with ``partition_registry`` the service descriptions — that hash
#: to it.
ROUTE_MODES = ("session", "operation")


class FleetError(Exception):
    """Raised on fleet misuse (submit before start, bad config)."""


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the sharded serving fleet."""

    shards: int = 2
    vnodes: int = DEFAULT_VNODES
    workers_per_shard: int = 2
    #: Fleet-edge admission bound (full ⇒ typed ``Overloaded``).
    ingress_depth: int = 1024
    #: Per-shard dispatch queue bound (full ⇒ dispatcher backpressure).
    dispatch_depth: int = 64
    deadline_s: Optional[float] = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: Optional[int] = None
    l2_cache: bool = True
    l2_maxsize: int = DEFAULT_L2_CACHE_SIZE
    #: L2 entry lifetime in seconds (stale agreements age out); ``None``
    #: keeps entries until LRU eviction.
    l2_ttl: Optional[float] = None
    route_by: str = "session"
    #: With ``route_by="operation"``: give each shard broker only the
    #: registry partition it owns instead of the full shared registry.
    partition_registry: bool = False
    solver_backend: str = "auto"
    store_backend: Optional[str] = None
    #: Resilience layer (breakers/bulkheads/health/hedge/DLQ); ``None``
    #: serves exactly like the pre-resilience fleet.  Breakers, health
    #: state and the DLQ are fleet-global (a down provider is down for
    #: every shard); bulkheads and hedge latency tracking are per-shard.
    resilience: Optional[ResilienceConfig] = None
    #: Solver batching (``--solver-batching``): each shard gets its own
    #: :class:`~repro.runtime.batching.BatchScheduler` coalescing that
    #: shard's concurrent same-topology candidate solves into stacked
    #: sweeps, over the shared L2 solve cache (batched results are
    #: written through the shard's ``TieredSolveCache``, so one shard's
    #: sweep warms every shard).  ``None`` solves per session.
    batching: Optional[BatchConfig] = None
    #: Multi-client allocation (``--allocation-policy``): each shard
    #: broker routes sessions through coalesced allocation rounds under
    #: this policy (``"greedy"`` reproduces per-session agreements
    #: exactly; ``"fair"`` solves one joint lexicographic SCSP per
    #: round — see :mod:`repro.soa.allocation`).  Rounds ride the same
    #: window/batch knobs as ``batching``.  ``None`` keeps the legacy
    #: per-session path.
    allocation_policy: Optional[str] = None
    #: Round-coalescing window override for ``allocation_policy``;
    #: ``None`` inherits ``batching`` (or the default window).
    rounds: Optional[BatchConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise FleetError("shards must be at least 1")
        if self.workers_per_shard < 1:
            raise FleetError("workers_per_shard must be at least 1")
        if self.ingress_depth < 1 or self.dispatch_depth < 1:
            raise FleetError("queue depths must be at least 1")
        if self.route_by not in ROUTE_MODES:
            raise FleetError(
                f"route_by must be one of {ROUTE_MODES}, "
                f"not {self.route_by!r}"
            )
        if self.partition_registry and self.route_by != "operation":
            raise FleetError(
                "partition_registry requires route_by='operation' "
                "(session-routed fleets need the full registry on "
                "every shard)"
            )
        if (
            self.partition_registry
            and self.resilience is not None
            and self.resilience.health is not None
        ):
            raise FleetError(
                "health-checked matchmaking requires a shared registry "
                "(quarantine state cannot span registry partitions)"
            )


def partition_registry(
    registry: ServiceRegistry, ring: HashRing
) -> Dict[str, ServiceRegistry]:
    """Split a registry by operation ownership on the ring.

    Every service lands on exactly one shard — the one owning its
    operation's routing key — so a shard can answer any session routed
    to it by operation without consulting its peers.
    """
    parts = {shard: ServiceRegistry() for shard in ring.shards}
    for description in registry.find():
        owner = ring.assign(description.interface.operation)
        parts[owner].publish(description)
    return parts


@dataclass
class _FleetItem:
    """One admitted session travelling ingress → dispatch → shard."""

    seq: int
    key: str
    route_key: str
    request: ClientRequest
    future: "asyncio.Future[SessionResult]"
    deadline_s: Optional[float]
    redirects: int = 0


@dataclass
class _Shard:
    """One broker shard plus its fleet-side plumbing."""

    shard_id: str
    broker: Broker
    server: RuntimeServer
    queue: Optional["asyncio.Queue[_FleetItem]"] = None
    pump: Optional["asyncio.Task[None]"] = None
    #: Bounds sessions admitted-but-unfinished on this shard so the
    #: shard's own admission queue can never overflow from the fleet.
    slots: Optional[asyncio.Semaphore] = None
    capacity: int = 0


class FleetFrontend:
    """Routes sessions across broker shards; duck-types the server
    surface (``started``/``start``/``stop``/``submit``/``serve``/
    ``run``) so :class:`~repro.runtime.loadgen.LoadGenerator` drives a
    fleet exactly like a single :class:`RuntimeServer`."""

    def __init__(
        self,
        registry: ServiceRegistry,
        config: Optional[FleetConfig] = None,
        injector_factory: Optional[
            Callable[[str], Optional[FaultInjector]]
        ] = None,
    ) -> None:
        self.registry = registry
        self.config = config or FleetConfig()
        self._injector_factory = injector_factory
        self.ring = HashRing(
            [f"shard-{i}" for i in range(self.config.shards)],
            vnodes=self.config.vnodes,
            seed=self.config.seed or 0,
        )
        self.l2: Optional[InProcessCacheBackend] = (
            InProcessCacheBackend(
                maxsize=self.config.l2_maxsize, ttl=self.config.l2_ttl
            )
            if self.config.l2_cache
            else None
        )
        self._partitions: Optional[Dict[str, ServiceRegistry]] = (
            partition_registry(registry, self.ring)
            if self.config.partition_registry
            else None
        )
        # Fleet-global resilience state, shared by every shard policy
        # (a provider that is down is down for the whole fleet).
        res = self.config.resilience
        self.breakers: Optional[BreakerRegistry] = (
            BreakerRegistry(res.breaker, seed=self.config.seed)
            if res is not None and res.breaker is not None
            else None
        )
        self.dlq: Optional[DeadLetterQueue] = (
            DeadLetterQueue(res.dlq)
            if res is not None and res.dlq is not None
            else None
        )
        self.health: Optional[HealthMonitor] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        self.shards: Dict[str, _Shard] = {}
        for shard_id in self.ring.shards:
            self.shards[shard_id] = self._build_shard(shard_id)
        if res is not None and res.health is not None:
            # One probe loop for the whole fleet, ticking in the global
            # ingress sequence so probes and sessions share the fault
            # coordinate system.  Injected faults are identical across
            # shards, so any shard's injector stands in for the market.
            probe_injector = next(
                (
                    shard.server.injector
                    for shard in self.shards.values()
                    if shard.server.injector is not None
                ),
                None,
            )
            self.health = HealthMonitor(
                registry,
                injector=probe_injector,
                config=res.health,
                seed=self.config.seed,
                tick_source=lambda: self._submitted,
            )
        self.results: List[SessionResult] = []
        self.results_by_shard: Dict[str, List[SessionResult]] = {
            shard_id: [] for shard_id in self.shards
        }
        self.assignments: Dict[str, str] = {}  # session key → shard id
        self.redirects = 0
        self._ingress: Optional["asyncio.Queue[_FleetItem]"] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._pending: "set[asyncio.Future[SessionResult]]" = set()
        self._submitted = 0

    # ------------------------------------------------------------------
    # Shard construction
    # ------------------------------------------------------------------

    def _build_shard(self, shard_id: str) -> _Shard:
        shard_registry = (
            self._partitions[shard_id]
            if self._partitions is not None
            else self.registry
        )
        broker = Broker(
            shard_registry,
            name=shard_id,
            solve_cache=self.l2 is None,
            solver_backend=self.config.solver_backend,
            store_backend=self.config.store_backend,
            batching=self.config.batching,
            allocation_policy=self.config.allocation_policy,
            rounds=self.config.rounds,
        )
        if self.l2 is not None:
            broker.solve_cache = TieredSolveCache(self.l2)
        # Every shard carries the *fleet* master seed: keyed sessions
        # derive their RNG from (config.seed, session key), so the seed
        # must be identical on whichever shard serves the session —
        # that is what makes a run shard-count independent.
        capacity = self.config.dispatch_depth + self.config.workers_per_shard
        injector = (
            self._injector_factory(shard_id)
            if self._injector_factory is not None
            else None
        )
        resilience = None
        if self.config.resilience is not None:
            # Per-shard policy over fleet-global breakers and DLQ; the
            # bulkhead and hedge tracker guard per-shard resources and
            # stay private.  Health is stripped here: the fleet itself
            # owns the single monitor and probe loop (``self.health``).
            resilience = build_resilience(
                replace(self.config.resilience, health=None),
                shard_registry,
                injector=injector,
                seed=self.config.seed,
                shared_breakers=self.breakers,
                shared_dlq=self.dlq,
                owns_health_loop=False,
            )
        server = RuntimeServer(
            broker,
            RuntimeConfig(
                workers=self.config.workers_per_shard,
                # Sized to the slot bound: fleet dispatch can never see
                # a shard-level Overloaded.
                max_queue_depth=capacity,
                deadline_s=self.config.deadline_s,
                retry=self.config.retry,
                seed=self.config.seed,
                probe_interval_s=0.0,  # one probe per fleet is plenty
            ),
            injector=injector,
            resilience=resilience,
        )
        return _Shard(
            shard_id=shard_id,
            broker=broker,
            server=server,
            capacity=capacity,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._dispatcher is not None

    async def start(self) -> None:
        if self.started:
            return
        self._ingress = asyncio.Queue(maxsize=self.config.ingress_depth)
        for shard in self.shards.values():
            await self._start_shard(shard)
        self._dispatcher = asyncio.create_task(
            self._dispatch(), name="fleet-dispatcher"
        )
        if self.health is not None:
            self._health_task = asyncio.create_task(
                self.health.run(), name="fleet-health"
            )
        get_events().emit(
            "fleet.started",
            shards=len(self.shards),
            vnodes=self.config.vnodes,
            l2_cache=self.l2 is not None,
        )

    async def _start_shard(self, shard: _Shard) -> None:
        with get_tracer().span(
            "fleet.shard-start", shard=shard.shard_id
        ):
            shard.queue = asyncio.Queue(
                maxsize=self.config.dispatch_depth
            )
            shard.slots = asyncio.Semaphore(shard.capacity)
            await shard.server.start()
            shard.pump = asyncio.create_task(
                self._pump(shard), name=f"fleet-pump-{shard.shard_id}"
            )
        get_registry().gauge(
            "fleet_shards",
            "Broker shards currently serving the fleet.",
        ).set(len(self.shards))

    async def stop(self, drain: bool = True) -> None:
        """Stop the fleet; by default *drain* first — every admitted
        session finishes before the shards shut down."""
        if not self.started:
            return
        if drain:
            await self._drain()
        assert self._dispatcher is not None
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for shard in self.shards.values():
            await self._stop_shard(shard, drain=drain)
        self._ingress = None
        get_events().emit("fleet.stopped", shards=len(self.shards))

    async def _drain(self) -> None:
        assert self._ingress is not None
        await self._ingress.join()
        for shard in self.shards.values():
            if shard.queue is not None:
                await shard.queue.join()
        pending = [f for f in self._pending if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def _stop_shard(self, shard: _Shard, drain: bool) -> None:
        with get_tracer().span(
            "fleet.shard-stop", shard=shard.shard_id
        ):
            if shard.pump is not None:
                shard.pump.cancel()
                try:
                    await shard.pump
                except asyncio.CancelledError:
                    pass
                shard.pump = None
            await shard.server.stop(drain=drain)
            shard.queue = None
            shard.slots = None

    async def __aenter__(self) -> "FleetFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Resharding
    # ------------------------------------------------------------------

    async def add_shard(self, shard_id: Optional[str] = None) -> str:
        """Join a new shard; keys it now owns redirect on dispatch.

        Only session-routed fleets reshard (an operation-partitioned
        registry would need provider migration, out of scope here).
        """
        if self._partitions is not None:
            raise FleetError(
                "cannot reshard a fleet with a partitioned registry"
            )
        if shard_id is None:
            index = len(self.ring.shards)
            while f"shard-{index}" in self.ring:
                index += 1
            shard_id = f"shard-{index}"
        shard = self._build_shard(shard_id)
        self.shards[shard_id] = shard
        self.results_by_shard.setdefault(shard_id, [])
        if self.started:
            await self._start_shard(shard)
        # Ring change last: pumps only redirect to shards that exist.
        self.ring.add_shard(shard_id)
        get_events().emit("fleet.reshard", joined=shard_id)
        return shard_id

    async def remove_shard(self, shard_id: str) -> None:
        """Decommission a shard gracefully: re-route its keys, drain
        its queue (queued sessions redirect to their new owners), and
        stop its server once in-flight sessions finished."""
        if shard_id not in self.shards:
            raise FleetError(f"unknown shard {shard_id!r}")
        if len(self.shards) == 1:
            raise FleetError("cannot remove the last shard")
        shard = self.shards[shard_id]
        self.ring.remove_shard(shard_id)
        get_events().emit("fleet.reshard", left=shard_id)
        if self.started and shard.queue is not None:
            # The shard's own pump notices every queued key now hashes
            # elsewhere and forwards it (counted as redirects).
            await shard.queue.join()
            assert shard.slots is not None
            for _ in range(shard.capacity):  # wait out in-flight work
                await shard.slots.acquire()
            await self._stop_shard(shard, drain=True)
        del self.shards[shard_id]

    # ------------------------------------------------------------------
    # Admission and routing
    # ------------------------------------------------------------------

    def session_key(self, request: ClientRequest, seq: int) -> str:
        """The default session key: globally sequenced at the fleet
        edge, so it is independent of shard count by construction."""
        return f"s{seq}/{request.client}/{request.operation}"

    def route_key(self, request: ClientRequest, session_key: str) -> str:
        return (
            request.operation
            if self.config.route_by == "operation"
            else session_key
        )

    def submit(
        self,
        request: ClientRequest,
        deadline_s: Optional[float] = None,
        session_key: Optional[str] = None,
    ) -> "asyncio.Future[SessionResult]":
        """Admit one session at the fleet edge.

        Synchronous admission control like the single server: a full
        ingress queue resolves the future immediately with a typed
        :class:`Overloaded` result.
        """
        if not self.started or self._ingress is None:
            raise FleetError("submit() before start()")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SessionResult]" = loop.create_future()
        seq = self._submitted
        self._submitted += 1
        key = (
            session_key
            if session_key is not None
            else self.session_key(request, seq)
        )
        item = _FleetItem(
            seq=seq,
            key=key,
            route_key=self.route_key(request, key),
            request=request,
            future=future,
            deadline_s=(
                deadline_s
                if deadline_s is not None
                else self.config.deadline_s
            ),
        )
        try:
            self._ingress.put_nowait(item)
        except asyncio.QueueFull:
            result = Overloaded(
                request=request,
                status=SessionStatus.OVERLOADED,
                detail=(
                    f"fleet ingress queue full "
                    f"({self.config.ingress_depth} waiting)"
                ),
                session_key=key,
            )
            self._account(None, result)
            future.set_result(result)
            return future
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)
        get_registry().gauge(
            "fleet_ingress_depth",
            "Sessions waiting at the fleet edge for dispatch.",
        ).set(self._ingress.qsize())
        return future

    async def serve(
        self, requests: Iterable[ClientRequest]
    ) -> List[SessionResult]:
        """Submit every request and await all results (starting and
        stopping the fleet when not already running)."""
        owns_lifecycle = not self.started
        if owns_lifecycle:
            await self.start()
        try:
            futures = [self.submit(request) for request in requests]
            return list(await asyncio.gather(*futures))
        finally:
            if owns_lifecycle:
                await self.stop()

    def run(self, requests: Iterable[ClientRequest]) -> List[SessionResult]:
        """Synchronous convenience wrapper around :meth:`serve`."""
        return asyncio.run(self.serve(requests))

    async def _dispatch(self) -> None:
        """Route ingress sessions to their owning shard's queue.

        ``await put`` on a full shard queue is the load-leveling point:
        a saturated shard throttles global intake (bounded by the
        ingress queue) instead of accumulating unbounded backlog.
        """
        assert self._ingress is not None
        registry = get_registry()
        ingress_depth = registry.gauge(
            "fleet_ingress_depth",
            "Sessions waiting at the fleet edge for dispatch.",
        )
        while True:
            item = await self._ingress.get()
            ingress_depth.set(self._ingress.qsize())
            try:
                shard = self.shards[self.ring.assign(item.route_key)]
                assert shard.queue is not None
                await shard.queue.put(item)
                registry.gauge(
                    "fleet_dispatch_depth",
                    "Sessions levelled into shard dispatch queues.",
                    labelnames=("shard",),
                ).labels(shard.shard_id).set(shard.queue.qsize())
            finally:
                self._ingress.task_done()

    async def _pump(self, shard: _Shard) -> None:
        """Forward one shard's dispatch queue into its server, with
        last-moment ownership re-checks (retry-on-redirect)."""
        registry = get_registry()
        while True:
            assert shard.queue is not None
            item = await shard.queue.get()
            try:
                owner = self.ring.assign(item.route_key)
                if owner != shard.shard_id:
                    # A reshard moved the key mid-flight: forward it.
                    self.redirects += 1
                    registry.counter(
                        "fleet_redirects_total",
                        "Sessions re-routed after a reshard moved "
                        "their key mid-flight.",
                    ).inc()
                    item.redirects += 1
                    target = self.shards[owner]
                    assert target.queue is not None
                    await target.queue.put(item)
                    continue
                assert shard.slots is not None
                await shard.slots.acquire()
                future = shard.server.submit(
                    item.request,
                    deadline_s=item.deadline_s,
                    session_key=item.key,
                    tick=item.seq,
                )
                future.add_done_callback(
                    lambda f, item=item, shard=shard: self._complete(
                        shard, item, f
                    )
                )
            finally:
                shard.queue.task_done()

    def _complete(
        self,
        shard: _Shard,
        item: _FleetItem,
        future: "asyncio.Future[SessionResult]",
    ) -> None:
        if shard.slots is not None:
            shard.slots.release()
        try:
            result = future.result()
        except Exception as exc:  # defensive: surface, don't hang
            result = SessionResult(
                request=item.request,
                status=SessionStatus.FAILED,
                detail=f"shard {shard.shard_id} error: {exc}",
                session_key=item.key,
            )
        self._account(shard.shard_id, result)
        if not item.future.done():
            item.future.set_result(result)

    def _account(
        self, shard_id: Optional[str], result: SessionResult
    ) -> None:
        self.results.append(result)
        if shard_id is not None:
            self.results_by_shard[shard_id].append(result)
            if result.session_key is not None:
                self.assignments[result.session_key] = shard_id
        get_registry().counter(
            "fleet_sessions_total",
            "Fleet sessions served, by shard and outcome.",
            labelnames=("shard", "outcome"),
        ).labels(shard_id or "ingress", result.status.value).inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def results_by_key(self) -> Dict[str, SessionResult]:
        """Completed sessions keyed by session key — the shard-count-
        independent view (list order is completion order and therefore
        racy; this mapping is not)."""
        return {
            result.session_key: result
            for result in self.results
            if result.session_key is not None
        }

    def resilience_snapshot(self) -> Dict[str, Any]:
        """Fleet-wide resilience state: the shared breaker/health/DLQ
        view plus each shard's private bulkhead and hedge counters."""
        out: Dict[str, Any] = {
            "enabled": self.config.resilience is not None
        }
        if self.breakers is not None:
            out["breakers"] = self.breakers.states()
        if self.health is not None:
            out["health_sweeps"] = self.health.sweeps
            out["health_transitions"] = [
                {"sweep": sweep, "provider": provider, "to": to}
                for sweep, provider, to in self.health.transitions
            ]
            out["quarantined"] = sorted(self.registry.quarantined())
        if self.dlq is not None:
            out["dlq"] = self.dlq.stats()
        per_shard: Dict[str, Any] = {}
        for shard_id, shard in sorted(self.shards.items()):
            policy = shard.server.resilience
            private = {
                key: value
                for key, value in policy.snapshot().items()
                # Shared state is reported once, fleet-level.
                if key.startswith(("bulkhead", "hedge"))
            }
            if private:
                per_shard[shard_id] = private
        if per_shard:
            out["per_shard"] = per_shard
        return out

    def cache_stats(self) -> Dict[str, Any]:
        """Tiered-cache counters: per-shard L1s plus the shared L2 (and
        per-shard batch-scheduler dispatch counters when batching is
        on)."""
        per_shard: Dict[str, Any] = {}
        batching: Dict[str, Any] = {}
        rounds: Dict[str, Any] = {}
        for shard_id, shard in self.shards.items():
            cache = shard.broker.solve_cache
            if cache is not None:
                per_shard[shard_id] = cache.stats()
            if shard.broker.batcher is not None:
                batching[shard_id] = shard.broker.batcher.stats()
            if shard.broker.rounds is not None:
                rounds[shard_id] = shard.broker.rounds.stats()
        stats: Dict[str, Any] = {
            "per_shard": per_shard,
            "l2": self.l2.stats() if self.l2 is not None else None,
        }
        if batching:
            stats["batching"] = batching
        if rounds:
            stats["allocation_rounds"] = rounds
        return stats


def drive_fleet(
    registry: ServiceRegistry,
    requests: Iterable[ClientRequest],
    config: Optional[FleetConfig] = None,
    injector_factory: Optional[
        Callable[[str], Optional[FaultInjector]]
    ] = None,
) -> List[SessionResult]:
    """One-shot convenience: build a fleet, serve, drain, stop."""
    frontend = FleetFrontend(
        registry, config=config, injector_factory=injector_factory
    )
    started = time.perf_counter()
    results = frontend.run(list(requests))
    get_registry().histogram(
        "fleet_run_seconds",
        "Wall time of one-shot fleet runs.",
    ).observe(time.perf_counter() - started)
    return results
