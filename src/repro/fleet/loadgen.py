"""Fleet load generation: synthetic populations against many shards.

Reuses :mod:`repro.runtime.loadgen` wholesale — the
:class:`~repro.fleet.frontend.FleetFrontend` duck-types the server
surface the :class:`~repro.runtime.loadgen.LoadGenerator` drives, so
open/closed-loop arrival processes, request factories and the synthetic
market all work unchanged.  What this module adds is fleet-shaped
reporting: per-shard :class:`~repro.runtime.loadgen.LoadReport` digests
built from each shard's raw session samples and merged with
:func:`~repro.runtime.loadgen.merge_reports` (percentiles recomputed
from the concatenated samples, never averaged), plus the tiered-cache
and redirect counters that tell the scaling story.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..runtime.loadgen import (
    LoadGenerator,
    LoadProfile,
    LoadReport,
    RequestFactory,
    build_report,
    merge_reports,
)
from .frontend import FleetFrontend


@dataclass
class FleetLoadReport:
    """What the fleet delivered under one load profile."""

    #: The merged fleet-wide digest (offered/throughput/percentiles).
    fleet: LoadReport
    #: Per-shard digests over the same wall-clock window.
    per_shard: Dict[str, LoadReport]
    shards: int
    redirects: int
    #: Tiered solve-cache counters (per-shard L1s + shared L2).
    cache: Dict[str, Any]

    @property
    def fairness(self) -> Optional[Dict[str, float]]:
        """Fleet-wide allocation fairness digest (``None`` when no
        session was served through an allocation policy)."""
        return self.fleet.fairness

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able summary (individual sessions omitted)."""
        return {
            "fleet": self.fleet.to_dict(),
            "per_shard": {
                shard: report.to_dict()
                for shard, report in sorted(self.per_shard.items())
            },
            "shards": self.shards,
            "redirects": self.redirects,
            "cache": self.cache,
        }


class FleetLoadGenerator:
    """Drives one fleet with a synthetic population and measures it."""

    def __init__(
        self,
        frontend: FleetFrontend,
        profile: Optional[LoadProfile] = None,
        request_factory: Optional[RequestFactory] = None,
    ) -> None:
        self.frontend = frontend
        self._inner = LoadGenerator(frontend, profile, request_factory)

    @property
    def profile(self) -> LoadProfile:
        return self._inner.profile

    async def run(self) -> FleetLoadReport:
        """One full load run (starts/stops the fleet if needed)."""
        report = await self._inner.run()
        per_shard = {
            shard_id: build_report(list(results), report.duration_s)
            for shard_id, results in sorted(
                self.frontend.results_by_shard.items()
            )
            if results
        }
        # Merging the per-shard reports keeps the fleet row exactly
        # consistent with the shard rows it summarizes.  Sessions
        # bounced at the fleet edge belong to no shard; when any exist
        # the generator's own digest (which includes them) is the
        # honest fleet row instead.
        covered = sum(digest.offered for digest in per_shard.values())
        fleet = (
            merge_reports(list(per_shard.values()))
            if per_shard and covered == report.offered
            else report
        )
        return FleetLoadReport(
            fleet=fleet,
            per_shard=per_shard,
            shards=len(self.frontend.shards),
            redirects=self.frontend.redirects,
            cache=self.frontend.cache_stats(),
        )

    def run_sync(self) -> FleetLoadReport:
        return asyncio.run(self.run())
