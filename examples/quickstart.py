#!/usr/bin/env python3
"""Quickstart: the weighted SCSP of the paper's Fig. 1, end to end.

Builds the two-variable problem (X of interest, Y auxiliary), combines
the three constraints, projects onto X and reports the solution and the
best level of consistency — the numbers printed are exactly those worked
out in Sec. 2 of the paper: ⟨a,a⟩→11, ⟨a,b⟩→7, ⟨b,a⟩→16, ⟨b,b⟩→16,
projection ⟨a⟩→7 / ⟨b⟩→16, blevel 7 at (X=a, Y=b).

Run:  python examples/quickstart.py
"""

from repro.constraints import TableConstraint, combine, variable
from repro.semirings import WeightedSemiring
from repro.solver import SCSP, solve


def main() -> None:
    weighted = WeightedSemiring()

    # Fig. 1: X is the variable of interest (double circle), Y auxiliary.
    x = variable("X", ["a", "b"])
    y = variable("Y", ["a", "b"])

    c1 = TableConstraint(
        weighted, [x], {("a",): 1, ("b",): 9}, name="c1"
    )
    c2 = TableConstraint(
        weighted,
        [x, y],
        {("a", "a"): 5, ("a", "b"): 1, ("b", "a"): 2, ("b", "b"): 2},
        name="c2",
    )
    c3 = TableConstraint(
        weighted, [y], {("a",): 5, ("b",): 5}, name="c3"
    )

    # Combined tuples — "we have to compute the sum" (⊗ is + on Weighted).
    combined = combine([c1, c2, c3])
    print("Combined constraint (c1 ⊗ c2 ⊗ c3):")
    for assignment, value in combined.enumerate_values():
        print(f"  ⟨{assignment['X']},{assignment['Y']}⟩ → {value:g}")

    # Projection onto the variable of interest.
    projected = combined.project(["X"]).materialize()
    print("Solution Sol(P) = (⊗C) ⇓ {X}:")
    for key, value in projected.items():
        print(f"  ⟨{key[0]}⟩ → {value:g}")

    # blevel via the solver (branch & bound on the total weighted order).
    problem = SCSP([c1, c2, c3], con=["X"], name="fig1")
    result = solve(problem)
    print(f"blevel(P) = {result.blevel:g}  (paper: 7)")
    print(f"optimal assignment of con: {result.best_assignment}")

    assert result.blevel == 7.0
    assert result.best_assignment == {"X": "a"}
    print("✓ matches the paper")


if __name__ == "__main__":
    main()
