#!/usr/bin/env python3
"""Integrity analysis of the federated photo-editing system (paper Sec. 5).

A photo shop compresses images client-side (COMPF) and sends them through
a provider-side pipeline (REDF red filter, then BWF black-and-white
filter).  The client's high-level requirement: processed images must not
occupy more memory than the originals.

Part 1 — crisp analysis (Classical semiring):
  * Imp1 = RedFilter ⊗ BWFilter ⊗ Compression refines Memory at the
    interface {incomp, outcomp}: integrity holds.
  * Assume REDF unreliable (its policy becomes ``true``): Imp2 no longer
    refines Memory — the design is not robust to that internal failure.

Part 2 — quantitative analysis (Probabilistic semiring):
  * module reliabilities combine by ⊗ into the system reliability Imp3;
  * the client's MemoryProb bound is checked via ⊑;
  * blevel ranks alternative implementations, most reliable first.

Run:  python examples/photo_editing_integrity.py
"""

from repro.constraints import FunctionConstraint, variable
from repro.dependability import (
    assume_unreliable,
    best_implementation,
    compression_reliability,
    integrate,
    locally_refines,
    meets_requirement,
    system_reliability,
)
from repro.semirings import BooleanSemiring, ProbabilisticSemiring

#: Image sizes (Kb) used as finite domains — coarse, but the refinement
#: checks quantify over every combination, so the verdicts are exact for
#: the modelled sizes.
SIZES = (256, 512, 666, 1024, 2048, 4096, 8192)


def crisp_analysis() -> None:
    print("— Part 1: crisp integrity (Classical semiring) —")
    boolean = BooleanSemiring()
    outcomp = variable("outcomp", SIZES)
    incomp = variable("incomp", SIZES)
    redbyte = variable("redbyte", SIZES)
    bwbyte = variable("bwbyte", SIZES)

    # The client's high-level requirement.
    memory = FunctionConstraint(
        boolean, (incomp, outcomp), lambda i, o: i <= o, name="Memory"
    )
    # The three staff policies.
    red_filter = FunctionConstraint(
        boolean, (redbyte, bwbyte), lambda r, b: r <= b, name="RedFilter"
    )
    bw_filter = FunctionConstraint(
        boolean, (bwbyte, outcomp), lambda b, o: b <= o, name="BWFilter"
    )
    compression = FunctionConstraint(
        boolean, (incomp, redbyte), lambda i, r: i <= r, name="Compression"
    )

    imp1 = integrate([red_filter, bw_filter, compression])
    report1 = locally_refines(imp1, memory, ["incomp", "outcomp"])
    print(f"  Imp1 ⇓ {{incomp,outcomp}} ⊑ Memory: {report1.holds}")
    assert report1.holds

    # REDF has a bug (paper: when the photo is 666 Kb) — assume it can
    # take on any behaviour at all.
    imp2 = integrate(
        [assume_unreliable(red_filter), bw_filter, compression],
        semiring=boolean,
    )
    report2 = locally_refines(imp2, memory, ["incomp", "outcomp"])
    print(f"  Imp2 ⇓ {{incomp,outcomp}} ⊑ Memory: {report2.holds}")
    if report2.witnesses:
        witness = report2.witnesses[0]
        print(
            f"  counterexample: incomp={witness['incomp']}Kb ends up larger "
            f"than outcomp={witness['outcomp']}Kb"
        )
    assert not report2.holds
    print("  ✓ matches the paper: Imp1 upholds Memory, Imp2 does not")


def quantitative_analysis() -> None:
    print("— Part 2: quantitative reliability (Probabilistic semiring) —")
    probabilistic = ProbabilisticSemiring()
    outcomp = variable("outcomp", SIZES)
    bwbyte = variable("bwbyte", SIZES)
    redbyte = variable("redbyte", SIZES)

    # The paper's c1: compression reliability of the BWF stage.
    c1 = compression_reliability(outcomp, bwbyte)
    spot = c1.value({"outcomp": 4096, "bwbyte": 1024})
    print(f"  c1(outcomp=4096Kb, bwbyte=1024Kb) = {spot} (paper: 0.96)")
    assert abs(spot - 0.96) < 1e-12

    # c2, c3: reliabilities of the red filter and the client compressor.
    c2 = FunctionConstraint(
        probabilistic,
        (redbyte, bwbyte),
        lambda r, b: 0.99 if r <= b else 0.90,
        name="red-filter-reliability",
    )
    c3 = FunctionConstraint(
        probabilistic,
        (outcomp,),
        lambda o: 1.0 if o <= 2048 else 0.95,
        name="compf-reliability",
    )
    imp3 = system_reliability([c1, c2, c3])

    # The client's minimum acceptable reliability.
    memory_prob = FunctionConstraint(
        probabilistic,
        (outcomp,),
        lambda o: 0.15 if o <= 4096 else 0.0,
        name="MemoryProb",
    )
    ok = meets_requirement(memory_prob, imp3)
    print(f"  MemoryProb ⊑ Imp3 (reliability requirement entailed): {ok}")

    # Rank alternative red-filter implementations by blevel.
    premium = FunctionConstraint(
        probabilistic, (redbyte, bwbyte), lambda r, b: 0.999, name="premium"
    )
    budget = FunctionConstraint(
        probabilistic,
        (redbyte, bwbyte),
        lambda r, b: 0.93 if r <= b else 0.70,
        name="budget",
    )
    ranking = best_implementation(
        {
            "premium-red-filter": system_reliability([c1, premium, c3]),
            "standard-red-filter": imp3,
            "budget-red-filter": system_reliability([c1, budget, c3]),
        }
    )
    print("  implementations ranked by best level of consistency:")
    for name, level in ranking.ranked:
        print(f"    {name:<22} blevel = {level:.4f}")
    assert ranking.best[0] == "premium-red-filter"
    print("  ✓ blevel finds the most reliable implementation")


def main() -> None:
    crisp_analysis()
    quantitative_analysis()


if __name__ == "__main__":
    main()
