#!/usr/bin/env python3
"""A QoS broker marketplace, end to end (paper Sec. 4, Fig. 6).

Providers publish QoS-enabled services to a UDDI-like registry; a client
asks the broker for a binding with required QoS; the broker runs the
five-step negotiation, signs an SLA with the best provider, composes a
two-stage pipeline, executes it under fault injection, and the SLA
monitor detects the violation when a provider suffers an outage —
closing the negotiate → bind → execute → monitor loop the paper sketches.

Also demonstrates the Fig. 5 graphical fuzzy agreement (provider and
client preference curves intersecting at 0.5) and a two-criteria
negotiation over the product semiring Weighted × Probabilistic.

Run:  python examples/broker_marketplace.py
"""

from repro.constraints import (
    FunctionConstraint,
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.sccp import interval
from repro.semirings import FuzzySemiring, WeightedSemiring, product_of
from repro.soa import (
    Broker,
    BurstOutage,
    ClientRequest,
    ExecutionEngine,
    FaultInjector,
    MessageBus,
    QoSDocument,
    QoSPolicy,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
    SLAMonitor,
    fuzzy_agreement,
)


def publish_market(registry: ServiceRegistry) -> ServicePool:
    """Three compression providers and two archival providers."""
    pool = ServicePool()
    offers = [
        # (operation, provider, fixed cost, per-job cost, reliability)
        ("compress", "ACME", 4.0, 1.0, 0.97),
        ("compress", "Globex", 2.0, 2.0, 0.99),
        ("compress", "Initech", 6.0, 0.5, 0.90),
        ("archive", "ACME", 3.0, 1.0, 0.995),
        ("archive", "Hooli", 1.0, 3.0, 0.95),
    ]
    for operation, provider, fixed, variable_cost, reliability in offers:
        document = QoSDocument(
            service_name=operation,
            provider=provider,
            policies=[
                QoSPolicy(
                    attribute="cost",
                    variables={"jobs": range(0, 11)},
                    polynomial=Polynomial.linear(
                        {"jobs": variable_cost}, fixed
                    ),
                ),
                QoSPolicy(attribute="reliability", constant=reliability),
            ],
        )
        service_id = f"{operation}-{provider}"
        registry.publish(
            ServiceDescription(
                service_id=service_id,
                name=operation,
                provider=provider,
                interface=ServiceInterface(operation=operation),
                qos=document,
            )
        )
        pool.add(
            Service(
                registry.get(service_id),
                reliability=reliability,
                base_latency_ms=20.0,
                seed=hash(service_id) % 2**32,
            )
        )
    return pool


def negotiate_binding(broker: Broker) -> None:
    print("— Step 1–5: single-service negotiation (Weighted cost) —")
    weighted = WeightedSemiring()
    jobs = integer_variable("jobs", 10)
    # Client policy: overhead grows with batch size; accept 0–25 EUR total.
    client_policy = polynomial_constraint(
        weighted, [jobs], Polynomial.linear({"jobs": 1.0})
    )
    request = ClientRequest(
        client="photo-shop",
        operation="compress",
        attribute="cost",
        requirements=[client_policy],
        acceptance=interval(weighted, lower=25.0, upper=0.0),
    )
    result = broker.negotiate(request, verify_scheduler_independence=True)
    print(f"  candidates: {[(e.provider, e.blevel) for e in result.evaluations]}")
    assert result.success and result.sla is not None
    print(
        f"  SLA#{result.sla.sla_id}: provider={result.sla.providers[0]}, "
        f"agreed cost level = {result.sla.agreed_level:g} at "
        f"{result.sla.resource_assignment}"
    )
    assert result.outcome is not None and result.outcome.scheduler_independent
    print("  ✓ nmsccp confirmation run is scheduler-independent")


def compose_and_monitor(broker: Broker, pool: ServicePool) -> None:
    print("— Composition + execution + SLA monitoring —")
    sla, plan, diagnostics = broker.negotiate_composition(
        client="photo-shop",
        slots=["compress", "archive"],
        attribute="reliability",
        minimum_level=0.90,
    )
    assert sla is not None and plan is not None
    print(
        f"  plan: {plan.describe()} — composite reliability "
        f"{sla.agreed_level:.4f} (per-candidate: "
        f"{ {k: round(v, 3) for k, v in diagnostics['offer_levels'].items()} })"
    )

    injector = FaultInjector(seed=11)
    # The chosen archive provider suffers a 12-tick outage mid-run.
    injector.attach(plan.services()[-1], BurstOutage(start=30, length=12))
    engine = ExecutionEngine(pool, injector=injector, seed=5)
    monitor = SLAMonitor(sla, window=20, min_samples=10)

    for report in engine.execute_many(plan, runs=80, payload="album.zip"):
        monitor.observe(report)

    print(
        f"  80 runs: observed availability {engine.observed_availability():.3f}, "
        f"mean latency {engine.mean_latency():.1f} ms"
    )
    print(
        f"  monitor: {len(monitor.violations)} violation(s); first: "
        f"{monitor.violations[0] if monitor.violations else '—'}"
    )
    assert monitor.violations, "the outage must trip the SLA monitor"
    print("  ✓ the injected outage is detected as an SLA violation")


def figure5_agreement() -> None:
    print("— Fig. 5: graphical fuzzy agreement —")
    fuzzy = FuzzySemiring()
    resource = integer_variable("resource", 9, lower=1)

    def provider_curve(amount: int) -> float:
        # Rising preference: providers like selling more resource.
        return {1: 0.0, 2: 0.1, 3: 0.2, 4: 0.3, 5: 0.5,
                6: 0.7, 7: 0.8, 8: 0.9, 9: 1.0}[amount]

    def client_curve(amount: int) -> float:
        # Falling preference: clients like paying for less.
        return {1: 1.0, 2: 0.9, 3: 0.8, 4: 0.7, 5: 0.5,
                6: 0.3, 7: 0.2, 8: 0.1, 9: 0.0}[amount]

    provider = FunctionConstraint(fuzzy, (resource,), provider_curve, name="Cp")
    client = FunctionConstraint(fuzzy, (resource,), client_curve, name="Cc")
    combined, blevel = fuzzy_agreement(provider, client)
    print(f"  blevel of Cp ⊗ Cc = {blevel} (paper: 0.5 at the intersection)")
    assert blevel == 0.5
    best = [
        assignment["resource"]
        for assignment, value in combined.enumerate_values()
        if value == blevel
    ]
    print(f"  agreement reached at resource = {best}")
    print("  ✓ the best shared level is the curves' crossing point")


def multicriteria_negotiation(broker: Broker) -> None:
    print("— Multi-criteria: cost × reliability (product semiring) —")
    pair = product_of("weighted", "probabilistic")
    jobs = integer_variable("jobs", 10)

    def client_pref(j: int):
        return (float(j), 1.0)  # cost grows with jobs; no reliability penalty

    client_policy = FunctionConstraint(pair, (jobs,), client_pref, name="client")
    request = ClientRequest(
        client="photo-shop",
        operation="compress",
        attribute="cost",  # document lookup key; semiring overridden below
        requirements=[client_policy],
        semiring=pair,
    )
    # Providers publish cost and reliability separately; fold them into
    # product-semiring offers by hand for this demo.
    evaluations = []
    for description in broker.registry.find(operation="compress"):
        cost_policy = description.qos.policy_for("cost")
        rel_policy = description.qos.policy_for("reliability")
        poly = cost_policy.polynomial

        def offer(j, poly=poly, rel=rel_policy.constant):
            return (poly.evaluate({"jobs": j}), rel)

        offer_constraint = FunctionConstraint(
            pair, (jobs,), offer, name=description.provider
        )
        combined = client_policy.combine(offer_constraint)
        frontier = pair.max_elements(
            value for _, value in combined.enumerate_values()
        )
        evaluations.append((description.provider, frontier))
    for provider, frontier in evaluations:
        print(f"  {provider:<8} Pareto frontier: {frontier}")
    print("  ✓ incomparable cost/reliability trade-offs surface as a frontier")


def main() -> None:
    registry = ServiceRegistry()
    pool = publish_market(registry)
    broker = Broker(registry, bus=MessageBus())
    negotiate_binding(broker)
    compose_and_monitor(broker, pool)
    figure5_agreement()
    multicriteria_negotiation(broker)


if __name__ == "__main__":
    main()
