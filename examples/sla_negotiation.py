#!/usr/bin/env python3
"""SLA negotiation between two providers merging a pipelined service.

Reproduces the paper's Sec. 4.1 scenario: providers P1 and P2 run as
nmsccp agents on the broker's store over the Weighted semiring.  The
variable ``x`` is the number of failures tolerated during provision; the
preference level is the hours needed to manage them.  Both providers
carry checked arrows ("spend some time on failures, but not too much").

Walks through the paper's three worked examples:

* Example 1 — policies c4 (x+5) and c3 (2x) merge to 3x+5; consistency 5
  falls outside P2's interval [1, 4], so no SLA is signed — verified for
  *every* interleaving with the exhaustive explorer.
* Example 2 — P1 relaxes its policy by retracting c1 (x+3): the store
  becomes 2x+2 with consistency 2 and both parties succeed.
* Example 3 — ``update`` refreshes x wholesale: the store becomes y+4.

Run:  python examples/sla_negotiation.py
"""

from repro.constraints import (
    Polynomial,
    TableConstraint,
    constraints_equal,
    integer_variable,
    polynomial_constraint,
    variable,
)
from repro.sccp import (
    SUCCESS,
    Status,
    ask,
    explore,
    interval,
    parallel,
    retract,
    run,
    sequence,
    tell,
    update,
)
from repro.semirings import WeightedSemiring

# Resource domain: 0–20 tolerated failures (documented in EXPERIMENTS.md).
MAX_FAILURES = 20


def build_constraints(weighted):
    """The four Weighted soft constraints of the paper's Fig. 7."""
    x = integer_variable("x", MAX_FAILURES)
    y = integer_variable("y", MAX_FAILURES)
    c1 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 3))
    c2 = polynomial_constraint(weighted, [y], Polynomial.linear({"y": 1}, 1))
    c3 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2}))
    c4 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 5))
    return x, y, c1, c2, c3, c4


def sync_constraints(weighted):
    """Synchronization flags sp1/sp2 (crisp in the Weighted semiring)."""
    sp1_var = variable("sp1", [0, 1])
    sp2_var = variable("sp2", [0, 1])
    inf = weighted.zero
    sp1 = TableConstraint(weighted, [sp1_var], {(1,): 0.0, (0,): inf})
    sp2 = TableConstraint(weighted, [sp2_var], {(1,): 0.0, (0,): inf})
    return sp1, sp2


def example1(weighted, c3, c4):
    print("— Example 1 (tell + negotiation) —")
    sp1, sp2 = sync_constraints(weighted)
    # →^2_10 : at least 2 and at most 10 hours; →^1_4 : in [1, 4] hours.
    p1 = sequence(
        tell(c4), tell(sp2), ask(sp1, interval(weighted, lower=10, upper=2)), SUCCESS
    )
    p2 = sequence(
        tell(c3), tell(sp1), ask(sp2, interval(weighted, lower=4, upper=1)), SUCCESS
    )
    result = run(parallel(p1, p2), semiring=weighted)
    print(f"  status: {result.status.value}, σ⇓∅ = {result.consistency():g}")
    exploration = explore(parallel(p1, p2), semiring=weighted)
    print(
        f"  exhaustive exploration: {len(exploration.successes)} successful "
        f"interleavings, {len(exploration.deadlocks)} deadlocks "
        f"→ agreement impossible under every schedule: "
        f"{exploration.never_succeeds}"
    )
    assert result.status is Status.DEADLOCK
    assert result.consistency() == 5.0
    assert exploration.never_succeeds
    print("  ✓ matches the paper: σ⇓∅ = 5 ∉ [1, 4], P2 cannot succeed")


def example2(weighted, x, c1, c3, c4):
    print("— Example 2 (retract as relaxation) —")
    sp1, sp2 = sync_constraints(weighted)
    p1 = sequence(
        tell(c4),
        tell(sp2),
        ask(sp1, interval(weighted, lower=10, upper=2)),
        retract(c1, interval(weighted, lower=10, upper=2)),
        SUCCESS,
    )
    p2 = sequence(
        tell(c3), tell(sp1), ask(sp2, interval(weighted, lower=4, upper=1)), SUCCESS
    )
    result = run(parallel(p1, p2), semiring=weighted)
    print(f"  status: {result.status.value}, σ⇓∅ = {result.consistency():g}")
    target = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2}, 2)
    )
    final_on_x = result.store.project(["x"])
    print(
        "  final store restricted to x equals 2x+2: "
        f"{constraints_equal(final_on_x, target)}"
    )
    assert result.status is Status.SUCCESS
    assert result.consistency() == 2.0
    print("  ✓ matches the paper: σ = (c4 ⊗ c3) ÷ c1 ≡ 2x+2, both succeed")


def example3(weighted, y, c1, c2):
    print("— Example 3 (update as policy replacement) —")
    agent = sequence(tell(c1), update(["x"], c2), SUCCESS)
    result = run(agent, semiring=weighted)
    target = polynomial_constraint(
        weighted, [y], Polynomial.linear({"y": 1}, 4)
    )
    print(
        f"  status: {result.status.value}, final store equals y+4: "
        f"{constraints_equal(result.store.constraint, target)}"
    )
    assert result.status is Status.SUCCESS
    assert constraints_equal(result.store.constraint, target)
    print("  ✓ matches the paper: store = (c1 ⇓_V∖{x}) ⊗ c2 ≡ y + 4")


def main() -> None:
    weighted = WeightedSemiring()
    x, y, c1, c2, c3, c4 = build_constraints(weighted)
    example1(weighted, c3, c4)
    example2(weighted, x, c1, c3, c4)
    example3(weighted, y, c1, c2)


if __name__ == "__main__":
    main()
