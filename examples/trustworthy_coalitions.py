#!/usr/bin/env python3
"""Trustworthy coalitions of service components (paper Sec. 6, Figs. 9–10).

Seven service components judge each other (directed trust network, Fig. 9).
The orchestrator must partition them into coalitions that (i) satisfy the
blocking-coalition stability condition of Def. 4 and (ii) maximize the
minimum coalition trustworthiness (the fuzzy max-min criterion of
Sec. 6.1).

The script reproduces the Fig. 10 situation — ``{C1, C2}`` with
``C1 = {x1,x2,x3}``, ``C2 = {x4,…,x7}`` is blocked because x4 prefers C1
and raises T(C1) — then finds the optimal stable partition exactly,
compares the greedy baselines, and solves a small instance through the
paper's own SCSP encoding.

Run:  python examples/trustworthy_coalitions.py
"""

from repro.coalitions import (
    TrustNetwork,
    blocking_pairs,
    build_coalition_scsp,
    coalition,
    coalition_trust,
    decode,
    figure9_network,
    individually_oriented,
    is_stable,
    socially_oriented,
    solve_exact,
    solve_local_search,
    stabilize,
)
from repro.solver import solve


def figure10_scenario(network) -> None:
    print("— Fig. 10: blocking coalitions —")
    c1 = coalition("x1", "x2", "x3")
    c2 = coalition("x4", "x5", "x6", "x7")
    t_c1 = coalition_trust(c1, network, "avg")
    t_c1_with_x4 = coalition_trust(c1 | {"x4"}, network, "avg")
    print(f"  T(C1) = {t_c1:.4f},  T(C1 ∪ {{x4}}) = {t_c1_with_x4:.4f}")
    witnesses = blocking_pairs([c1, c2], network, "avg")
    print(f"  {{C1, C2}} stable: {is_stable([c1, c2], network, 'avg')}")
    for witness in witnesses[:1]:
        print(f"  blocking witness: {witness}")
    assert witnesses, "the Fig. 10 partition must be blocked"

    final, history, converged = stabilize([c1, c2], network, "avg")
    print(
        f"  better-response dynamics: {len(history)} defection(s), "
        f"converged={converged}, result: "
        f"{[sorted(group) for group in final]}"
    )


def optimal_structures(network) -> None:
    print("— Optimal stable partition (exact) vs baselines —")
    exact = solve_exact(network, op="avg", aggregate="min")
    print(
        f"  exact: trust={exact.trust:.4f} stable={exact.stable} "
        f"partition={[sorted(g) for g in exact.partition]}"
    )
    print(
        f"         ({exact.stable_partitions} stable of "
        f"{exact.partitions_examined} partitions — stability prunes "
        f"{100 * (1 - exact.stable_partitions / exact.partitions_examined):.1f}%)"
    )

    individual = individually_oriented(network, "avg")
    social = socially_oriented(network, "avg")
    local = solve_local_search(network, op="avg", seed=42)
    for solution in (individual, social, local):
        print(
            f"  {solution.method:<22} trust={solution.trust:.4f} "
            f"stable={solution.stable} "
            f"partition={[sorted(g) for g in solution.partition]}"
        )
    assert exact.stable
    assert exact.trust >= individual.trust
    assert exact.trust >= social.trust
    print("  ✓ the exact stable optimum dominates both greedy baselines")


def scsp_encoding_demo() -> None:
    print("— Sec. 6.1 SCSP encoding (3 components, fuzzy max-min) —")
    network = TrustNetwork(
        ["a", "b", "c"],
        {
            ("a", "a"): 0.6, ("b", "b"): 0.6, ("c", "c"): 0.6,
            ("a", "b"): 0.9, ("b", "a"): 0.8,
            ("a", "c"): 0.2, ("c", "a"): 0.3,
            ("b", "c"): 0.4, ("c", "b"): 0.5,
        },
    )
    problem, variables = build_coalition_scsp(network, op="avg")
    print(
        f"  SCSP: {len(problem.constraints)} constraints over "
        f"{len(problem.variables)} powerset variables"
    )
    result = solve(problem, "branch-bound")
    partition = decode(result.best_assignment, variables)
    print(
        f"  blevel = {result.blevel:.4f}, decoded partition: "
        f"{[sorted(g) for g in partition]}"
    )
    # Cross-check against direct enumeration.
    direct = solve_exact(network, op="avg", aggregate="min")
    assert abs(direct.trust - result.blevel) < 1e-9
    print("  ✓ encoding agrees with direct partition enumeration")


def main() -> None:
    network = figure9_network()
    figure10_scenario(network)
    optimal_structures(network)
    scsp_encoding_demo()


if __name__ == "__main__":
    main()
