#!/usr/bin/env python3
"""Self-healing SOA: negotiate → execute → monitor → renegotiate.

The paper's pieces assembled into the loop it implies: a
DependabilityManager binds the best provider via the broker, watches the
SLA at runtime, and when a provider suffers an outage it blacklists the
offender, renegotiates among the remaining candidates and rebinds — all
automatically, with an auditable event log.

Run:  python examples/self_healing.py
"""

from repro.soa import (
    Broker,
    BurstOutage,
    DependabilityManager,
    ExecutionEngine,
    FaultInjector,
    QoSDocument,
    QoSPolicy,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
)


def build_market():
    registry = ServiceRegistry()
    pool = ServicePool()
    offers = [
        ("transcode", "Primary", 0.999),
        ("transcode", "Fallback", 0.99),
        ("transcode", "LastResort", 0.95),
    ]
    for operation, provider, advertised in offers:
        service_id = f"{operation}-{provider}"
        description = ServiceDescription(
            service_id=service_id,
            name=operation,
            provider=provider,
            interface=ServiceInterface(operation=operation),
            qos=QoSDocument(
                service_name=operation,
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=advertised)
                ],
            ),
        )
        registry.publish(description)
        # live behaviour: perfectly reliable unless a fault is injected,
        # so the healing story below is fully deterministic
        pool.add(Service(description, reliability=1.0, seed=1))
    return registry, pool


def main() -> None:
    registry, pool = build_market()

    injector = FaultInjector(seed=4)
    # the initially-best provider has an incident at tick 10…
    injector.attach("transcode-Primary", BurstOutage(start=10, length=80))
    # …and the first fallback fails later, forcing a second rebinding
    injector.attach("transcode-Fallback", BurstOutage(start=40, length=80))

    engine = ExecutionEngine(pool, injector=injector, seed=4)
    manager = DependabilityManager(
        Broker(registry), engine, client="studio", window=8, min_samples=4
    )

    outcome = manager.manage(
        ["transcode"], "reliability", runs=70, minimum_level=0.9
    )

    print("event log:")
    for event in outcome.events:
        print(f"  {event}")
    print(
        f"\n{outcome.runs} runs, availability {outcome.availability:.2f}, "
        f"{outcome.rebindings} rebinding(s), gave_up={outcome.gave_up}"
    )
    print(f"final plan: {outcome.final_plan.describe()}")
    print(f"blacklist: {sorted(manager.blacklist)}")

    assert outcome.rebindings == 2
    assert outcome.final_plan.services() == ["transcode-LastResort"]
    assert not outcome.gave_up
    assert {"Primary", "Fallback"} <= manager.blacklist
    print("✓ two incidents, two automatic rebindings, service preserved")


if __name__ == "__main__":
    main()
