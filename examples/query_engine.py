#!/usr/bin/env python3
"""The SOA query engine and the framework extensions, together.

The paper's stated future work (Sec. 8) is "a SOA query engine that will
use the constraint satisfaction solver to select which available service
will satisfy a given query [and] look for complex services by composing
together simpler service interfaces."  This script runs that engine on a
typed service marketplace, then shows the companion extensions:

* MUST/MAY capability policies over the Set-based semiring (the paper's
  "you MUST use HTTP Authentication and MAY use GZIP compression");
* timed nmsccp — a provider whose blocked negotiation times out and
  relaxes its policy with a retract;
* semiring trust propagation completing a sparse trust network before
  coalition formation.

Run:  python examples/query_engine.py
"""

from repro.coalitions import (
    TrustNetwork,
    coverage,
    propagate_trust,
    solve_exact,
)
from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import (
    SUCCESS,
    Status,
    ask,
    interval,
    parallel,
    retract,
    sequence,
    tell,
)
from repro.sccp.timed import timed_run, timeout
from repro.semirings import WeightedSemiring
from repro.soa import (
    QoSDocument,
    QoSPolicy,
    QueryEngine,
    ServiceDescription,
    ServiceInterface,
    ServiceQuery,
    ServiceRegistry,
    compose_policies,
    policy,
)


def publish_typed_market() -> ServiceRegistry:
    registry = ServiceRegistry()
    services = [
        # id, operation, inputs, outputs, reliability
        ("ocr-fast", "ocr", ("scan",), ("text",), 0.93),
        ("ocr-exact", "ocr", ("scan",), ("text",), 0.99),
        ("translate", "translate", ("text",), ("text-en",), 0.97),
        ("summarize", "summarize", ("text-en",), ("summary",), 0.98),
        ("alldoc", "pipeline", ("scan",), ("summary",), 0.80),
    ]
    for service_id, operation, inputs, outputs, reliability in services:
        registry.publish(
            ServiceDescription(
                service_id=service_id,
                name=operation,
                provider=f"prov-{service_id}",
                interface=ServiceInterface(
                    operation=operation, inputs=inputs, outputs=outputs
                ),
                qos=QoSDocument(
                    service_name=operation,
                    provider=f"prov-{service_id}",
                    policies=[
                        QoSPolicy(attribute="reliability", constant=reliability)
                    ],
                ),
            )
        )
    return registry


def run_queries(registry: ServiceRegistry) -> None:
    print("— SOA query engine (paper Sec. 8 future work) —")
    engine = QueryEngine(registry)

    answer = engine.query(
        ServiceQuery(attribute="reliability", operation="ocr")
    )
    print(f"  query by operation 'ocr': {len(answer.matches)} matches")
    for match in answer.matches:
        print(f"    {match.describe()}")
    assert answer.best.plan.services() == ["ocr-exact"]

    composed = engine.query(
        ServiceQuery(
            attribute="reliability",
            produces=("summary",),
            consumes=("scan",),
            max_chain=3,
            minimum_level=0.85,
        )
    )
    print(
        "  type-directed query scan→summary "
        f"({composed.candidates_considered} candidates considered):"
    )
    for match in composed.matches:
        print(f"    {match.describe()}")
    best = composed.best
    assert best.stages == 3, "the composed chain must beat the monolith"
    print(
        f"  ✓ the engine composed {best.plan.describe()} "
        f"(reliability {best.level:.4f}) and the 0.80 monolith was cut "
        "by the 0.85 minimum"
    )


def capability_check() -> None:
    print("— MUST/MAY capability policies (Set-based semiring) —")
    service_spec = policy("ws-spec", must={"http-auth"}, may={"gzip"})
    client_a = policy("client-a", must={"gzip"}, may={"http-auth"})
    client_b = policy("client-b", must={"plain-http"})
    print(f"  {service_spec}")
    good = compose_policies([service_spec, client_a])
    bad = compose_policies([service_spec, client_b])
    print(f"  with client-a: compatible={good.compatible} → {good.combined}")
    print(
        f"  with client-b: compatible={bad.compatible} "
        f"(conflicts: {bad.conflicts})"
    )
    assert good.compatible and not bad.compatible
    print("  ✓ policy composition is capability-set intersection")


def timed_negotiation() -> None:
    print("— timed nmsccp: relax a stalled negotiation by timeout —")
    weighted = WeightedSemiring()
    x = integer_variable("x", 20)
    c1 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 3))
    c3 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2}))
    c4 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 5))

    provider = sequence(tell(c4), tell(c3), SUCCESS)
    # the client's ask needs consistency in [1, 4] hours — blocked at 5 —
    # so after 2 ticks the provider-side fallback retracts c1
    relaxer = timeout(
        ask(c1, interval(weighted, lower=4.0, upper=1.0)),
        2,
        retract(c1, interval(weighted, lower=10.0, upper=2.0)),
    )
    result = timed_run(parallel(provider, relaxer), semiring=weighted)
    print(
        f"  status={result.status.value}, ticks={result.ticks}, "
        f"σ⇓∅={result.consistency():g} (5 hours before, 2 after the "
        "timed retract)"
    )
    assert result.status is Status.SUCCESS
    assert result.consistency() == 2.0
    print("  ✓ the timeout triggered the paper's Example-2 relaxation")


def propagation_then_coalitions() -> None:
    print("— trust propagation completing a sparse network —")
    sparse = TrustNetwork(
        ["a", "b", "c", "d"],
        {
            ("a", "a"): 0.6, ("b", "b"): 0.6,
            ("c", "c"): 0.6, ("d", "d"): 0.6,
            ("a", "b"): 0.9, ("b", "a"): 0.9,
            ("b", "c"): 0.9, ("c", "b"): 0.9,
            ("a", "d"): 0.1, ("d", "a"): 0.1,
        },
    )
    before = coverage(sparse)
    completed = propagate_trust(sparse)
    after = coverage(completed)
    print(
        f"  explicit coverage: {before:.2f} → {after:.2f} "
        f"(a→c derived as {completed.trust('a', 'c')})"
    )
    solution = solve_exact(completed, op="avg", aggregate="min")
    print(
        f"  coalitions on the completed network: "
        f"{[sorted(g) for g in solution.partition]} "
        f"(trust {solution.trust:.3f}, stable={solution.stable})"
    )
    assert completed.trust("a", "c") == 0.9
    print("  ✓ hearsay trust (max-min paths) enables coalition formation")


def main() -> None:
    registry = publish_typed_market()
    run_queries(registry)
    capability_check()
    timed_negotiation()
    propagation_then_coalitions()


if __name__ == "__main__":
    main()
