"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or worked example,
DESIGN.md E1–E8) or one of our scalability/ablation studies (E9–E12).
``report`` prints the same rows/series the paper reports so a run of
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
log recorded in EXPERIMENTS.md.

Telemetry: set ``REPRO_TELEMETRY=1`` to give every benchmark its own
:mod:`repro.telemetry` session and dump the per-test metrics snapshot as
``TELEMETRY_<test>.json`` next to the ``BENCH_*.json`` artifacts
(``REPRO_TELEMETRY_DIR``, default ``benchmarks/telemetry``).  Left
unset, benchmarks run against the null registry — the configuration the
solver-scaling regression gate measures.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Iterable, Sequence

import pytest


def report(title: str, rows: Iterable[Sequence], headers: Sequence[str]):
    """Print a small fixed-width table under a title."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture(autouse=True)
def _telemetry_dump(request):
    """Per-benchmark telemetry session, gated on ``REPRO_TELEMETRY``."""
    if not os.environ.get("REPRO_TELEMETRY"):
        yield
        return
    from repro.telemetry import telemetry_session, write_snapshot

    out_dir = Path(
        os.environ.get("REPRO_TELEMETRY_DIR", "benchmarks/telemetry")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    with telemetry_session() as session:
        yield
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
        write_snapshot(
            out_dir / f"TELEMETRY_{safe}.json",
            session.registry,
            session.tracer,
            session.events,
        )


def load_telemetry_snapshot(path):
    """Read back one ``TELEMETRY_*.json`` dump (bench post-processing)."""
    return json.loads(Path(path).read_text())


def record_bench_artifact(
    section: str, payload: dict, path: "str | Path | None" = None
) -> Path:
    """Merge ``payload`` under ``section`` in the bench JSON artifact.

    The default artifact (``REPRO_BENCH_JSON``, falling back to
    ``benchmarks/BENCH_PR3.json``) accumulates one section per
    benchmark — the CI bench job uploads the merged file, so the
    dict-vs-dense and cold-vs-warm medians travel with every PR run.
    Benchmarks introduced by later PRs pass an explicit ``path`` (e.g.
    ``benchmarks/BENCH_PR4.json``) so each PR's artifact stays separate.
    """
    if path is None:
        path = os.environ.get("REPRO_BENCH_JSON", "benchmarks/BENCH_PR3.json")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def weighted():
    from repro.semirings import WeightedSemiring

    return WeightedSemiring()


@pytest.fixture
def fuzzy():
    from repro.semirings import FuzzySemiring

    return FuzzySemiring()
