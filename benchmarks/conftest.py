"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or worked example,
DESIGN.md E1–E8) or one of our scalability/ablation studies (E9–E12).
``report`` prints the same rows/series the paper reports so a run of
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def report(title: str, rows: Iterable[Sequence], headers: Sequence[str]):
    """Print a small fixed-width table under a title."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture
def weighted():
    from repro.semirings import WeightedSemiring

    return WeightedSemiring()


@pytest.fixture
def fuzzy():
    from repro.semirings import FuzzySemiring

    return FuzzySemiring()
