"""E3 — Example 1: tell + negotiation that must fail.

Paper: σ = c4 ⊗ c3 ≡ 3x+5, σ⇓∅ = 5; P2's interval [1, 4] excludes 5, so
P2 cannot succeed and no SLA is signed — under *any* interleaving.
"""

from conftest import report

from repro.constraints import (
    Polynomial,
    TableConstraint,
    constraints_equal,
    integer_variable,
    polynomial_constraint,
    variable,
)
from repro.sccp import (
    SUCCESS,
    Status,
    ask,
    explore,
    interval,
    parallel,
    run,
    sequence,
    tell,
)
from repro.semirings import WeightedSemiring

MAX_FAILURES = 20


def build_agents():
    weighted = WeightedSemiring()
    x = integer_variable("x", MAX_FAILURES)
    c3 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2}))
    c4 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 5))
    inf = weighted.zero
    sp1 = TableConstraint(
        weighted, [variable("sp1", [0, 1])], {(1,): 0.0, (0,): inf}
    )
    sp2 = TableConstraint(
        weighted, [variable("sp2", [0, 1])], {(1,): 0.0, (0,): inf}
    )
    p1 = sequence(
        tell(c4),
        tell(sp2),
        ask(sp1, interval(weighted, lower=10.0, upper=2.0)),
        SUCCESS,
    )
    p2 = sequence(
        tell(c3),
        tell(sp1),
        ask(sp2, interval(weighted, lower=4.0, upper=1.0)),
        SUCCESS,
    )
    return weighted, x, parallel(p1, p2)


def test_example1_reproduction(benchmark):
    weighted, x, agents = build_agents()
    result = benchmark(lambda: run(agents, semiring=weighted))

    report(
        "Example 1 — negotiation outcome",
        [
            ("final status", result.status.value),
            ("σ ⇓∅ (hours)", f"{result.consistency():g}"),
            ("P2's interval", "[1, 4]"),
            ("agreement", "NO (paper: no shared agreement)"),
        ],
        ["quantity", "value"],
    )

    assert result.status is Status.DEADLOCK
    assert result.consistency() == 5.0
    target = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 3}, 5)
    )
    assert constraints_equal(result.store.project(["x"]), target)


def test_example1_scheduler_independence(benchmark):
    weighted, _, agents = build_agents()
    exploration = benchmark(lambda: explore(agents, semiring=weighted))
    print(
        f"\nexplored {exploration.configurations_visited} configurations: "
        f"{len(exploration.successes)} successes, "
        f"{len(exploration.deadlocks)} deadlocks"
    )
    assert exploration.never_succeeds
