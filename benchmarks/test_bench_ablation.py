"""E12 — solver ablations for the design choices called out in DESIGN.md.

(a) branch & bound pruning and the one-step lookahead bound;
(b) bucket-elimination variable orderings (given vs min-degree);
(c) soft arc consistency as a preprocessing step.
"""

import itertools
import random

import pytest
from conftest import report

from repro.constraints import TableConstraint, variable
from repro.semirings import FuzzySemiring, WeightedSemiring
from repro.solver import (
    SCSP,
    enforce_arc_consistency,
    prune_domains,
    solve_branch_bound,
    solve_elimination,
    solve_exhaustive,
)


#: Fuzzy levels drawn for random problems; the explicit 0.0 mass is what
#: gives arc consistency genuine values to prune.
_FUZZY_LEVELS = (0.0, 0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def random_problem(n_vars, domain, density, seed, semiring=None, con=None):
    rng = random.Random(seed)
    semiring = semiring or WeightedSemiring()
    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]

    def level():
        if isinstance(semiring, WeightedSemiring):
            return float(rng.randint(0, 9))
        return rng.choice(_FUZZY_LEVELS)

    constraints = []
    for var in variables:
        constraints.append(
            TableConstraint(
                semiring, [var], {(d,): level() for d in var.domain}
            )
        )
    for left, right in itertools.combinations(variables, 2):
        if rng.random() < density:
            constraints.append(
                TableConstraint(
                    semiring,
                    [left, right],
                    {
                        key: level()
                        for key in itertools.product(
                            left.domain, right.domain
                        )
                    },
                )
            )
    return SCSP(constraints, con=con)


class TestBranchBoundAblation:
    def test_pruning_vs_exhaustive(self, benchmark):
        def sweep():
            rows = []
            for n_vars in (5, 7, 9):
                problem = random_problem(n_vars, 3, 0.4, seed=n_vars)
                full = solve_exhaustive(problem)
                pruned = solve_branch_bound(problem)
                assert full.blevel == pruned.blevel
                rows.append(
                    (
                        n_vars,
                        full.stats.leaves_evaluated,
                        pruned.stats.leaves_evaluated,
                        f"{full.stats.leaves_evaluated / max(1, pruned.stats.leaves_evaluated):.1f}×",
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        report(
            "E12a — B&B pruning vs exhaustive enumeration",
            rows,
            ["n", "exhaustive leaves", "B&B leaves", "speedup"],
        )
        for _, full, pruned, _ in rows:
            assert pruned < full

    def test_lookahead_ablation(self, benchmark):
        def sweep():
            rows = []
            for seed in (1, 2, 3):
                problem = random_problem(8, 3, 0.35, seed=seed)
                with_la = solve_branch_bound(problem, lookahead=True)
                without_la = solve_branch_bound(problem, lookahead=False)
                assert with_la.blevel == without_la.blevel
                rows.append(
                    (
                        seed,
                        without_la.stats.nodes_expanded,
                        with_la.stats.nodes_expanded,
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        report(
            "E12a — one-step lookahead bound",
            rows,
            ["seed", "nodes (no lookahead)", "nodes (lookahead)"],
        )
        total_without = sum(row[1] for row in rows)
        total_with = sum(row[2] for row in rows)
        assert total_with <= total_without

    @pytest.mark.parametrize("ordering", ("given", "max-degree", "min-domain"))
    def test_branching_order_timing(self, benchmark, ordering):
        problem = random_problem(8, 3, 0.35, seed=11)
        result = benchmark(
            lambda: solve_branch_bound(problem, ordering=ordering)
        )
        assert result.is_consistent


class TestEliminationAblation:
    def test_ordering_changes_intermediate_width(self, benchmark):
        def sweep():
            rows = []
            for seed in (4, 5, 6):
                # con = one variable, so the other eight get eliminated —
                # that is where the ordering matters.
                problem = random_problem(9, 3, 0.3, seed=seed, con=["v0"])
                given = solve_elimination(problem, ordering="given")
                smart = solve_elimination(problem, ordering="min-degree")
                assert given.blevel == smart.blevel
                rows.append(
                    (
                        seed,
                        given.stats.largest_intermediate,
                        smart.stats.largest_intermediate,
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        report(
            "E12b — elimination ordering vs largest intermediate table",
            rows,
            ["seed", "given order", "min-degree"],
        )
        assert sum(r[2] for r in rows) <= sum(r[1] for r in rows)

    @pytest.mark.parametrize("ordering", ("given", "min-degree"))
    def test_elimination_timing(self, benchmark, ordering):
        problem = random_problem(9, 3, 0.3, seed=4, con=["v0"])
        result = benchmark(
            lambda: solve_elimination(problem, ordering=ordering)
        )
        assert result.blevel is not None


class TestMiniBucketAblation:
    def test_bound_tightness_vs_i_bound(self, benchmark):
        """Mini-bucket bounds tighten monotonically with the i-bound and
        reach the exact blevel once the cap covers the widest bucket."""
        from repro.solver import minibucket_bound

        def sweep():
            rows = []
            for seed in (21, 22, 23):
                problem = random_problem(8, 3, 0.45, seed=seed)
                exact = solve_exhaustive(problem).blevel
                bounds = [
                    minibucket_bound(problem, i)[0] for i in (1, 2, 3, 8)
                ]
                rows.append(
                    (seed, *(f"{b:g}" for b in bounds), f"{exact:g}")
                )
                semiring = problem.semiring
                for looser, tighter in zip(bounds, bounds[1:]):
                    assert semiring.geq(looser, tighter)
                assert semiring.geq(bounds[0], exact)
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        report(
            "E12d — mini-bucket bound vs i-bound (weighted: optimistic cost lower-bounds rising to the exact cost)",
            rows,
            ["seed", "i=1", "i=2", "i=3", "i=8", "exact"],
        )

    def test_minibucket_cost_vs_exact(self, benchmark):
        from repro.solver import minibucket_bound

        problem = random_problem(9, 3, 0.4, seed=31)
        bound, stats = benchmark(lambda: minibucket_bound(problem, 2))
        assert stats.largest_intermediate <= 3**2


class TestArcConsistencyAblation:
    def test_preprocessing_prunes_domains(self, benchmark):
        def sweep():
            fuzzy = FuzzySemiring()
            rows = []
            for seed in (7, 8, 9):
                problem = random_problem(
                    6, 4, 0.5, seed=seed, semiring=fuzzy
                )
                tightened, stats = enforce_arc_consistency(problem)
                pruned, removed = prune_domains(tightened)
                before = solve_exhaustive(problem)
                after = solve_exhaustive(pruned)
                assert fuzzy.equiv(before.blevel, after.blevel)
                rows.append(
                    (
                        seed,
                        stats.revisions,
                        stats.changes,
                        removed,
                        before.stats.leaves_evaluated,
                        after.stats.leaves_evaluated,
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        report(
            "E12c — soft arc consistency as preprocessing (fuzzy)",
            rows,
            ["seed", "revisions", "changes", "values pruned", "leaves before", "leaves after"],
        )
        assert all(row[5] <= row[4] for row in rows)
