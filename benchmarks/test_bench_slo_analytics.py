"""E19 — SLO analytics: detector exactness and analytics throughput.

The acceptance run of the SLO tentpole (ISSUE 10).  Two measurements:

* **Exactness** — the unachievable-SLO detector
  (:func:`repro.slo.check_slo`, fed each service's best level) against
  exhaustive enumeration of every per-service level assignment, over a
  seeded population of random plan trees with ≤ 6 services, both choose
  modes, and targets straddling each plan's reachable optimum.  Because
  every aggregation operator is monotone per argument, the detector is
  provably exact — the gate holds it to **precision = recall = 1.0**
  (no false rejections, no false approvals), in quick mode too: the
  property is scale-invariant, only the sample count grows with
  ``REPRO_BENCH_FULL=1``.

* **Throughput** — full :func:`repro.slo.analyze` reports (bounds +
  detector + budget + buffers) per second on wide pipeline plans, the
  serving-path cost of the broker precheck.  Full mode gates ≥ 200
  reports/s; quick mode records the number without gating a timing.

Results land in ``benchmarks/BENCH_PR10.json`` (uploaded by the CI
bench job).
"""

import itertools
import os
import random
import time

from conftest import record_bench_artifact, report

from repro.dependability.metrics import ObservationWindow
from repro.semirings import ProbabilisticSemiring
from repro.slo import analyze, check_slo, composite_bound
from repro.soa import Choose, Invoke, Pipeline, Split

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

SCALE = {
    "quick": {"cases": 150, "targets": 3, "width": 60, "reports": 40},
    "full": {"cases": 1500, "targets": 5, "width": 200, "reports": 300},
}[("full" if FULL else "quick")]

THROUGHPUT_GATE_RPS = 200.0

ARTIFACT = "benchmarks/BENCH_PR10.json"

PROB = ProbabilisticSemiring()


def random_plan(rng, max_services=6):
    """A random plan tree over at most ``max_services`` fresh leaves."""
    budget = rng.randint(1, max_services)
    counter = itertools.count()

    def build(depth, slots):
        if slots == 1 or depth >= 3 or rng.random() < 0.3:
            return Invoke(f"s{next(counter)}"), 1
        node_type = rng.choice((Pipeline, Split, Choose))
        children, used = [], 0
        width = rng.randint(2, min(3, slots))
        for i in range(width):
            child, spent = build(
                depth + 1, max(1, (slots - used) // (width - i))
            )
            children.append(child)
            used += spent
        return node_type(children), used

    plan, _ = build(0, budget)
    return plan


def exhaustive_achievable(plan, level_sets, target, choose):
    names = sorted(level_sets)
    for combo in itertools.product(*(level_sets[n] for n in names)):
        bound = composite_bound(
            plan, dict(zip(names, combo)), "availability", choose=choose
        )
        if PROB.geq(bound, target):
            return True
    return False


def detector_cases(rng):
    """Seeded (plan, level_sets, targets, choose) exactness probes."""
    for _ in range(SCALE["cases"]):
        plan = random_plan(rng)
        level_sets = {
            name: sorted(
                round(rng.uniform(0.6, 0.999), 4)
                for _ in range(rng.randint(1, 3))
            )
            for name in plan.services()
        }
        choose = rng.choice(("worst-case", "redundant"))
        best = {n: max(vs) for n, vs in level_sets.items()}
        optimum = composite_bound(
            plan, best, "availability", choose=choose
        )
        # Targets straddling the reachable optimum, where a detector
        # with any slack would misclassify.
        targets = [
            min(1.0, optimum * factor)
            for factor in (0.98, 1.0, 1.0001, 1.02)[: SCALE["targets"]]
        ] + [round(rng.uniform(0.5, 1.0), 4)]
        yield plan, level_sets, targets, choose, best


def test_detector_exactness(benchmark):
    rng = random.Random(19)
    tallies = {"tp": 0, "tn": 0, "fp": 0, "fn": 0}
    remediated = checked = 0

    def run_all():
        for plan, sets, targets, choose, best in detector_cases(rng):
            for target in targets:
                nonlocal checked, remediated
                checked += 1
                verdict = check_slo(
                    plan, best, target, choose=choose
                )
                truth = exhaustive_achievable(
                    plan, sets, target, choose
                )
                if verdict.achievable and truth:
                    tallies["tp"] += 1
                elif not verdict.achievable and not truth:
                    tallies["tn"] += 1
                    assert verdict.remediations, (
                        f"unactionable rejection: {plan.describe()} "
                        f"target {target}"
                    )
                    remediated += 1
                elif verdict.achievable:
                    tallies["fp"] += 1
                else:
                    tallies["fn"] += 1

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # "achievable" as the positive class: precision guards against
    # approving doomed compositions, recall against rejecting viable
    # ones.
    precision = tallies["tp"] / max(1, tallies["tp"] + tallies["fp"])
    recall = tallies["tp"] / max(1, tallies["tp"] + tallies["fn"])
    report(
        f"E19 detector exactness — {'full' if FULL else 'quick'} "
        f"({SCALE['cases']} plans, {checked} verdicts)",
        [
            ("achievable (TP)", tallies["tp"]),
            ("unachievable (TN)", tallies["tn"]),
            ("false approvals (FP)", tallies["fp"]),
            ("false rejections (FN)", tallies["fn"]),
            ("precision", f"{precision:.4f}"),
            ("recall", f"{recall:.4f}"),
            ("rejections with remediation", f"{remediated}/{tallies['tn']}"),
        ],
        ["outcome", "count"],
    )
    record_bench_artifact(
        "slo_detector_exactness",
        {
            "mode": "full" if FULL else "quick",
            "plans": SCALE["cases"],
            "verdicts": checked,
            "tallies": tallies,
            "precision": precision,
            "recall": recall,
            "gates": {"precision": 1.0, "recall": 1.0},
        },
        path=ARTIFACT,
    )
    # Exactness is a correctness property, not a timing: gate it in
    # quick mode too.
    assert tallies["fp"] == 0, "detector approved an unachievable SLO"
    assert tallies["fn"] == 0, "detector rejected an achievable SLO"
    assert remediated == tallies["tn"]


def test_analytics_throughput(benchmark):
    rng = random.Random(23)
    width = SCALE["width"]
    plan = Pipeline(
        [
            Invoke(f"s{i}")
            if i % 3
            else Choose([Invoke(f"s{i}"), Invoke(f"s{i}r")])
            for i in range(width)
        ]
    )
    published = {
        name: round(rng.uniform(0.95, 0.9999), 6)
        for name in plan.services()
    }
    observations = {
        name: ObservationWindow(
            attempts=rng.randint(50, 500), failures=rng.randint(0, 5)
        )
        for name in list(published)[:: 2]
    }

    elapsed = {}

    def run_reports():
        start = time.perf_counter()
        for _ in range(SCALE["reports"]):
            analyze(
                plan,
                published,
                0.95,
                observations=observations,
                choose="redundant",
            )
        elapsed["s"] = time.perf_counter() - start

    benchmark.pedantic(run_reports, rounds=1, iterations=1)

    rps = SCALE["reports"] / elapsed["s"]
    per_report_ms = 1000.0 * elapsed["s"] / SCALE["reports"]
    report(
        f"E19 analytics throughput — {'full' if FULL else 'quick'} "
        f"({len(published)} services per plan)",
        [
            ("reports", SCALE["reports"]),
            ("services/plan", len(published)),
            ("reports/s", f"{rps:.1f}"),
            ("ms/report", f"{per_report_ms:.2f}"),
        ],
        ["metric", "value"],
    )
    record_bench_artifact(
        "slo_analytics_throughput",
        {
            "mode": "full" if FULL else "quick",
            "plan_width": width,
            "services": len(published),
            "reports": SCALE["reports"],
            "reports_per_s": rps,
            "ms_per_report": per_report_ms,
            "gates": {
                "reports_per_s": THROUGHPUT_GATE_RPS if FULL else None
            },
        },
        path=ARTIFACT,
    )
    if FULL:
        assert rps >= THROUGHPUT_GATE_RPS, (
            f"analytics throughput regressed: {rps:.1f} reports/s"
        )
