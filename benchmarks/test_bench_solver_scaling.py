"""E9 — solver scalability (ours; the paper reports no measurements).

Series: solve time and search effort vs number of variables, for the
three backends on random weighted chain problems.  Shape expectation:
branch & bound evaluates far fewer leaves than exhaustive enumeration,
and bucket elimination's intermediate tables stay polynomial on chains.
"""

import itertools
import random
import statistics
import time

import pytest
from conftest import record_bench_artifact, report

from repro.constraints import TableConstraint, variable
from repro.semirings import FuzzySemiring, WeightedSemiring
from repro.solver import (
    SCSP,
    solve_branch_bound,
    solve_elimination,
    solve_exhaustive,
)


def chain_problem(n_vars: int, domain: int = 3, seed: int = 0) -> SCSP:
    """A random weighted chain: unary on each var, binary between
    neighbours — the canonical low-treewidth workload."""
    rng = random.Random(seed)
    weighted = WeightedSemiring()
    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]
    constraints = []
    for var in variables:
        constraints.append(
            TableConstraint(
                weighted,
                [var],
                {(d,): float(rng.randint(0, 9)) for d in var.domain},
            )
        )
    for left, right in zip(variables, variables[1:]):
        constraints.append(
            TableConstraint(
                weighted,
                [left, right],
                {
                    key: float(rng.randint(0, 9))
                    for key in itertools.product(left.domain, right.domain)
                },
            )
        )
    return SCSP(constraints, con=[variables[0].name])


SIZES = (4, 6, 8)


@pytest.mark.parametrize("n_vars", SIZES)
def test_branch_bound_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_branch_bound(problem))
    assert result.is_consistent


@pytest.mark.parametrize("n_vars", SIZES)
def test_elimination_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_elimination(problem))
    assert result.is_consistent


@pytest.mark.parametrize("n_vars", (4, 6))
def test_exhaustive_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_exhaustive(problem))
    assert result.is_consistent


def test_search_effort_series(benchmark):
    """The series the scaling figure plots: leaves/intermediates vs n."""

    def collect():
        rows = []
        for n_vars in SIZES:
            problem = chain_problem(n_vars)
            exhaustive = solve_exhaustive(problem)
            bnb = solve_branch_bound(problem)
            elim = solve_elimination(problem)
            assert exhaustive.blevel == bnb.blevel == elim.blevel
            rows.append(
                (
                    n_vars,
                    exhaustive.stats.leaves_evaluated,
                    bnb.stats.leaves_evaluated,
                    elim.stats.largest_intermediate,
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "E9 — search effort vs #variables (chain, |D|=3)",
        rows,
        ["n", "exhaustive leaves", "B&B leaves", "elim max table"],
    )
    # Shape: B&B prunes, elimination stays flat per bucket.
    for n_vars, full, pruned, table in rows:
        assert pruned <= full
        assert table <= 3**2 * 3  # never materializes more than a bucket
    # pruning advantage grows with n
    assert rows[-1][1] / rows[-1][2] > rows[0][1] / rows[0][2]


def dense_chain_problem(semiring, n_vars=14, domain=12, seed=0) -> SCSP:
    """The largest quick-mode instance: a wide-domain weighted/fuzzy
    chain whose per-bucket tables are big enough for vectorization to
    dominate interpreter overhead."""
    rng = random.Random(seed)
    is_fuzzy = isinstance(semiring, FuzzySemiring)

    def draw():
        return round(rng.random(), 6) if is_fuzzy else float(
            rng.randint(0, 99)
        )

    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]
    constraints = []
    for var in variables:
        constraints.append(
            TableConstraint(
                semiring, [var], {(d,): draw() for d in var.domain}
            )
        )
    for left, right in zip(variables, variables[1:]):
        constraints.append(
            TableConstraint(
                semiring,
                [left, right],
                {
                    key: draw()
                    for key in itertools.product(
                        left.domain, right.domain
                    )
                },
            )
        )
    return SCSP(constraints, con=[variables[0].name])


def _median_seconds(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


@pytest.mark.parametrize(
    "semiring",
    (WeightedSemiring(), FuzzySemiring()),
    ids=lambda s: s.name,
)
def test_dense_vs_dict_elimination(benchmark, semiring):
    """Acceptance gate: dense kernels ≥5× faster than the dict path on
    the largest quick-mode instance, with bit-identical results."""
    problem = dense_chain_problem(semiring)

    def compare():
        # One untimed solve per backend warms the to_table/DenseFactor
        # memos — the steady state the broker hot path runs in.
        dict_result = solve_elimination(problem, backend="dict")
        dense_result = solve_elimination(problem, backend="dense")
        dict_s = _median_seconds(
            lambda: solve_elimination(problem, backend="dict")
        )
        dense_s = _median_seconds(
            lambda: solve_elimination(problem, backend="dense")
        )
        return dict_result, dense_result, dict_s, dense_s

    dict_result, dense_result, dict_s, dense_s = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert dense_result.blevel == dict_result.blevel
    assert dense_result.frontier == dict_result.frontier
    assert dense_result.optima == dict_result.optima
    speedup = dict_s / dense_s
    report(
        f"PR3 — dict vs dense bucket elimination ({semiring.name}, "
        "chain n=14 |D|=12, median of 5)",
        [
            (
                f"{dict_s * 1000:.2f}",
                f"{dense_s * 1000:.2f}",
                f"{speedup:.1f}x",
            )
        ],
        headers=("dict (ms)", "dense (ms)", "speedup"),
    )
    record_bench_artifact(
        f"solver_scaling_dense_vs_dict_{semiring.name.lower()}",
        {
            "instance": {"n_vars": 14, "domain": 12, "kind": "chain"},
            "median_dict_s": dict_s,
            "median_dense_s": dense_s,
            "speedup": speedup,
            "blevel_identical": dense_result.blevel == dict_result.blevel,
        },
    )
    assert speedup >= 5.0, (
        f"dense gave only {speedup:.1f}x over dict on {semiring.name}"
    )


def test_semiring_operation_microbench(benchmark):
    """Throughput of the hot semiring ops (combine fold)."""
    weighted = WeightedSemiring()
    values = [float(v % 17) for v in range(1000)]

    def fold():
        total = weighted.one
        for value in values:
            total = weighted.times(total, value)
        return total

    result = benchmark(fold)
    assert result == sum(values)
