"""E9 — solver scalability (ours; the paper reports no measurements).

Series: solve time and search effort vs number of variables, for the
three backends on random weighted chain problems.  Shape expectation:
branch & bound evaluates far fewer leaves than exhaustive enumeration,
and bucket elimination's intermediate tables stay polynomial on chains.
"""

import itertools
import random

import pytest
from conftest import report

from repro.constraints import TableConstraint, variable
from repro.semirings import WeightedSemiring
from repro.solver import (
    SCSP,
    solve_branch_bound,
    solve_elimination,
    solve_exhaustive,
)


def chain_problem(n_vars: int, domain: int = 3, seed: int = 0) -> SCSP:
    """A random weighted chain: unary on each var, binary between
    neighbours — the canonical low-treewidth workload."""
    rng = random.Random(seed)
    weighted = WeightedSemiring()
    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]
    constraints = []
    for var in variables:
        constraints.append(
            TableConstraint(
                weighted,
                [var],
                {(d,): float(rng.randint(0, 9)) for d in var.domain},
            )
        )
    for left, right in zip(variables, variables[1:]):
        constraints.append(
            TableConstraint(
                weighted,
                [left, right],
                {
                    key: float(rng.randint(0, 9))
                    for key in itertools.product(left.domain, right.domain)
                },
            )
        )
    return SCSP(constraints, con=[variables[0].name])


SIZES = (4, 6, 8)


@pytest.mark.parametrize("n_vars", SIZES)
def test_branch_bound_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_branch_bound(problem))
    assert result.is_consistent


@pytest.mark.parametrize("n_vars", SIZES)
def test_elimination_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_elimination(problem))
    assert result.is_consistent


@pytest.mark.parametrize("n_vars", (4, 6))
def test_exhaustive_scaling(benchmark, n_vars):
    problem = chain_problem(n_vars)
    result = benchmark(lambda: solve_exhaustive(problem))
    assert result.is_consistent


def test_search_effort_series(benchmark):
    """The series the scaling figure plots: leaves/intermediates vs n."""

    def collect():
        rows = []
        for n_vars in SIZES:
            problem = chain_problem(n_vars)
            exhaustive = solve_exhaustive(problem)
            bnb = solve_branch_bound(problem)
            elim = solve_elimination(problem)
            assert exhaustive.blevel == bnb.blevel == elim.blevel
            rows.append(
                (
                    n_vars,
                    exhaustive.stats.leaves_evaluated,
                    bnb.stats.leaves_evaluated,
                    elim.stats.largest_intermediate,
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "E9 — search effort vs #variables (chain, |D|=3)",
        rows,
        ["n", "exhaustive leaves", "B&B leaves", "elim max table"],
    )
    # Shape: B&B prunes, elimination stays flat per bucket.
    for n_vars, full, pruned, table in rows:
        assert pruned <= full
        assert table <= 3**2 * 3  # never materializes more than a bucket
    # pruning advantage grows with n
    assert rows[-1][1] / rows[-1][2] > rows[0][1] / rows[0][2]


def test_semiring_operation_microbench(benchmark):
    """Throughput of the hot semiring ops (combine fold)."""
    weighted = WeightedSemiring()
    values = [float(v % 17) for v in range(1000)]

    def fold():
        total = weighted.one
        for value in values:
            total = weighted.times(total, value)
        return total

    result = benchmark(fold)
    assert result == sum(values)
