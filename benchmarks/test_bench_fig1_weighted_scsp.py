"""E1 — Fig. 1: the weighted SCSP of Sec. 2.

Paper values: combined tuples ⟨a,a⟩→11, ⟨a,b⟩→7, ⟨b,a⟩→16, ⟨b,b⟩→16;
projection onto X: ⟨a⟩→7, ⟨b⟩→16; blevel = 7 at (X=a, Y=b).
"""

from conftest import report

from repro.constraints import TableConstraint, variable
from repro.semirings import WeightedSemiring
from repro.solver import SCSP, solve


def build_problem():
    weighted = WeightedSemiring()
    x = variable("X", ["a", "b"])
    y = variable("Y", ["a", "b"])
    c1 = TableConstraint(weighted, [x], {("a",): 1, ("b",): 9})
    c2 = TableConstraint(
        weighted,
        [x, y],
        {("a", "a"): 5, ("a", "b"): 1, ("b", "a"): 2, ("b", "b"): 2},
    )
    c3 = TableConstraint(weighted, [y], {("a",): 5, ("b",): 5})
    return SCSP([c1, c2, c3], con=["X"], name="fig1")


def test_fig1_reproduction(benchmark):
    problem = build_problem()
    result = benchmark(lambda: solve(problem))

    combined = problem.combined().materialize()
    report(
        "Fig. 1 — combined tuples (paper: 11, 7, 16, 16)",
        [(f"⟨{k[0]},{k[1]}⟩", f"{v:g}") for k, v in combined.items()],
        ["tuple", "cost"],
    )
    projected = problem.solution().materialize()
    report(
        "Fig. 1 — projection onto X (paper: a→7, b→16)",
        [(f"⟨{k[0]}⟩", f"{v:g}") for k, v in projected.items()],
        ["tuple", "cost"],
    )
    print(f"blevel = {result.blevel:g} (paper: 7)")

    assert dict(combined.items()) == {
        ("a", "a"): 11.0,
        ("a", "b"): 7.0,
        ("b", "a"): 16.0,
        ("b", "b"): 16.0,
    }
    assert dict(projected.items()) == {("a",): 7.0, ("b",): 16.0}
    assert result.blevel == 7.0
    assert result.best_assignment == {"X": "a"}
