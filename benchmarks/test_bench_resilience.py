"""E15 — chaos gate: availability under a provider outage (ours).

The acceptance run of the resilience layer (ISSUE 7): a sharded fleet
serves a keyed session trace while a ``BurstOutage`` takes the cheapest
provider down for a window of the global admission sequence — the same
incident shape as the E14 fleet trace.  Two configurations run on the
same market, the same faults, the same seed:

* **enabled** — circuit breakers + health-checked matchmaking + DLQ.
  The first failures trip the cheapest provider's breaker (and the
  probe loop quarantines it), matchmaking routes around the outage, and
  availability — *fresh* agreements, ``completed / offered`` — must
  stay ≥ 0.99 with zero manual rebinding.
* **disabled** — the pre-resilience serving path.  Every session that
  lands in the window burns its retries against the dead provider and
  degrades to a stale SLA, so availability measurably drops.

Quick mode (default, CI-sized) serves 48 sessions over 2 shards; set
``REPRO_BENCH_FULL=1`` for the E14-sized trace (640 sessions, 4
shards).  Results land in ``benchmarks/BENCH_PR7.json``.
"""

import os

from conftest import record_bench_artifact, report

from repro.constraints import (
    Polynomial,
    integer_variable,
    polynomial_constraint,
)
from repro.fleet import FleetConfig, FleetFrontend
from repro.resilience import (
    BreakerConfig,
    DLQConfig,
    HealthConfig,
    ResilienceConfig,
)
from repro.runtime import RetryPolicy
from repro.semirings import WeightedSemiring
from repro.soa import (
    BurstOutage,
    ClientRequest,
    FaultInjector,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

SCALE = {
    "quick": {"sessions": 48, "shards": 2, "outage": (8, 16)},
    "full": {"sessions": 640, "shards": 4, "outage": (64, 256)},
}[("full" if FULL else "quick")]

#: Cheapest first: every healthy negotiation binds provider P0, so the
#: outage window hits the hot path, not a spare.
PROVIDERS = {"P0": 2.0, "P1": 4.0, "P2": 6.0, "P3": 9.0}

AVAILABILITY_GATE = 0.99

ARTIFACT = "benchmarks/BENCH_PR7.json"

RESILIENCE = ResilienceConfig(
    # Trip on the first failure and stay open for the whole bench: a
    # concurrent success on the dead provider (a pre-outage session
    # finishing late) can reset a failure *streak* but cannot close an
    # open breaker, so the availability gate does not depend on worker
    # interleaving.  Health probes quarantine/reinstate in parallel.
    breaker=BreakerConfig(failure_threshold=1, recovery_s=60.0),
    health=HealthConfig(interval_s=0.01, unhealthy_after=2),
    dlq=DLQConfig(),
)


def build_market():
    registry = ServiceRegistry()
    for provider, base in PROVIDERS.items():
        registry.publish(
            ServiceDescription(
                service_id=f"filter-{provider}",
                name="filter",
                provider=provider,
                interface=ServiceInterface(operation="filter"),
                qos=QoSDocument(
                    service_name="filter",
                    provider=provider,
                    policies=[
                        QoSPolicy(
                            attribute="cost",
                            variables={"x": range(0, 11)},
                            polynomial=Polynomial.linear({"x": 1.0}, base),
                        )
                    ],
                ),
            )
        )
    return registry


def make_requests(count):
    weighted = WeightedSemiring()
    x = integer_variable("x", 10)
    requirement = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2})
    )
    return [
        ClientRequest(
            client=f"client-{i}",
            operation="filter",
            attribute="cost",
            requirements=[requirement],
        )
        for i in range(count)
    ]


def run_trace(resilience):
    """One full trace; returns (results, frontend)."""
    start, length = SCALE["outage"]

    def injector_factory(shard_id):
        injector = FaultInjector(seed=3)
        injector.attach(
            "filter-P0", BurstOutage(start=start, length=length)
        )
        return injector

    frontend = FleetFrontend(
        build_market(),
        FleetConfig(
            shards=SCALE["shards"],
            workers_per_shard=2,
            seed=17,
            deadline_s=None,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
            resilience=resilience,
        ),
        injector_factory=injector_factory,
    )
    results = frontend.run(make_requests(SCALE["sessions"]))
    return results, frontend


def availability(results):
    """Fresh agreements per offered session — a degraded session keeps
    the client alive on a stale SLA, which is not availability."""
    completed = sum(
        1 for result in results if result.status.value == "completed"
    )
    return completed / len(results)


def test_chaos_outage_availability(benchmark):
    traces = {}

    def both_traces():
        traces["enabled"] = run_trace(RESILIENCE)
        traces["disabled"] = run_trace(None)
        return traces

    benchmark.pedantic(both_traces, rounds=1, iterations=1)

    enabled_results, enabled_fleet = traces["enabled"]
    disabled_results, _ = traces["disabled"]
    on = availability(enabled_results)
    off = availability(disabled_results)

    # No session may be dropped outright in either configuration.
    for results in (enabled_results, disabled_results):
        assert len(results) == SCALE["sessions"]
        assert all(result.ok for result in results)

    # The chaos gate: breakers + health + DLQ keep fresh-agreement
    # availability at ≥ 0.99 through the outage, no operator involved.
    assert on >= AVAILABILITY_GATE, (
        f"availability {on:.4f} under outage below the "
        f"{AVAILABILITY_GATE} gate"
    )
    # The breaker actually tripped on the dead provider (the wins above
    # are rerouting, not luck)...
    p0_transitions = enabled_fleet.breakers.breaker("P0").transitions
    assert any(to == "open" for _, _, to in p0_transitions)
    # ...and turning the layer off measurably degrades the same trace.
    assert off <= on - 0.05, (
        f"disabling resilience should cost ≥5% availability "
        f"(enabled {on:.4f}, disabled {off:.4f})"
    )

    snapshot = enabled_fleet.resilience_snapshot()
    report(
        f"E15 chaos gate — {'full' if FULL else 'quick'} "
        f"({SCALE['sessions']} sessions, {SCALE['shards']} shards, "
        f"outage ticks {SCALE['outage'][0]}–"
        f"{SCALE['outage'][0] + SCALE['outage'][1]})",
        [
            ("enabled", f"{on:.4f}", snapshot["breakers"].get("P0", "-"),
             snapshot["dlq"]["depth"]),
            ("disabled", f"{off:.4f}", "-", "-"),
        ],
        headers=("resilience", "availability", "P0 breaker", "dlq depth"),
    )
    record_bench_artifact(
        "resilience_chaos",
        {
            "mode": "full" if FULL else "quick",
            "sessions": SCALE["sessions"],
            "shards": SCALE["shards"],
            "outage_ticks": list(SCALE["outage"]),
            "availability_enabled": round(on, 4),
            "availability_disabled": round(off, 4),
            "availability_gate": AVAILABILITY_GATE,
            "gate_passed": on >= AVAILABILITY_GATE,
            "manual_rebinds": 0,
            "breaker_states": snapshot["breakers"],
            "breaker_p0_tripped": True,
            "health_transitions": snapshot.get("health_transitions", []),
            "quarantined_at_end": snapshot.get("quarantined", []),
            "dlq": snapshot["dlq"],
        },
        path=ARTIFACT,
    )
