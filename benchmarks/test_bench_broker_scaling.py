"""E10 — broker scalability (ours).

Series: negotiation latency vs number of competing providers, and
composite QoS vs pipeline length.  Shape expectations: per-candidate
solving is linear in the provider count; composite reliability decays
geometrically with chain length (the Probabilistic ⊗), which is exactly
why the paper wants the broker to optimize the composition.
"""

import pytest
from conftest import report

from repro.constraints import Polynomial, integer_variable, polynomial_constraint
from repro.sccp import interval
from repro.semirings import WeightedSemiring
from repro.soa import (
    Broker,
    ClientRequest,
    QoSDocument,
    QoSPolicy,
    ServiceDescription,
    ServiceInterface,
    ServiceRegistry,
)


def market(n_providers: int, operation: str = "filter") -> ServiceRegistry:
    """``n`` providers with base costs decreasing in the provider index,
    so a deeper market genuinely contains better offers."""
    registry = ServiceRegistry()
    for index in range(n_providers):
        base_cost = max(2.0, 18.0 - index)
        document = QoSDocument(
            service_name=operation,
            provider=f"P{index}",
            policies=[
                QoSPolicy(
                    attribute="cost",
                    variables={"x": range(0, 11)},
                    polynomial=Polynomial.linear(
                        {"x": 1.0 + (index % 3)}, base_cost
                    ),
                ),
                QoSPolicy(
                    attribute="reliability",
                    constant=0.90 + 0.09 * ((index * 7) % 10) / 10,
                ),
            ],
        )
        registry.publish(
            ServiceDescription(
                service_id=f"{operation}-P{index}",
                name=operation,
                provider=f"P{index}",
                interface=ServiceInterface(operation=operation),
                qos=document,
            )
        )
    return registry


def client_request(weighted) -> ClientRequest:
    x = integer_variable("x", 10)
    return ClientRequest(
        client="C",
        operation="filter",
        attribute="cost",
        requirements=[
            polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1.0}))
        ],
        acceptance=interval(weighted, lower=50.0, upper=0.0),
    )


@pytest.mark.parametrize("n_providers", (2, 8, 32))
def test_negotiation_vs_provider_count(benchmark, n_providers, weighted):
    broker = Broker(market(n_providers))
    request = client_request(weighted)
    result = benchmark(lambda: broker.negotiate(request))
    assert result.success
    assert len(result.evaluations) == n_providers
    # the semiring-best candidate always wins: the highest index has the
    # lowest base cost (down to the 2.0 floor)
    best = min(e.blevel for e in result.evaluations)
    assert result.sla.agreed_level == best


def test_best_offer_always_selected(benchmark, weighted):
    """Who-wins shape: more candidates never worsen the agreed level."""

    def sweep():
        levels = []
        for n_providers in (1, 4, 16):
            broker = Broker(market(n_providers))
            outcome = broker.negotiate(client_request(weighted))
            levels.append((n_providers, outcome.sla.agreed_level))
        return levels

    levels = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E10 — agreed cost level vs market size",
        [(n, f"{level:g}") for n, level in levels],
        ["#providers", "agreed cost"],
    )
    costs = [level for _, level in levels]
    # deeper markets can only improve (numerically lower) the agreed cost
    assert costs == sorted(costs, reverse=True)
    assert costs[-1] < costs[0]


@pytest.mark.parametrize("chain_length", (2, 4, 8))
def test_composition_vs_chain_length(benchmark, chain_length):
    registry = ServiceRegistry()
    operations = [f"stage{i}" for i in range(chain_length)]
    for operation in operations:
        for provider, level in (("good", 0.99), ("cheap", 0.93)):
            document = QoSDocument(
                service_name=operation,
                provider=f"{provider}-{operation}",
                policies=[QoSPolicy(attribute="reliability", constant=level)],
            )
            registry.publish(
                ServiceDescription(
                    service_id=f"{operation}-{provider}",
                    name=operation,
                    provider=f"{provider}-{operation}",
                    interface=ServiceInterface(operation=operation),
                    qos=document,
                )
            )
    broker = Broker(registry)
    sla, plan, _ = benchmark(
        lambda: broker.negotiate_composition(
            "client", operations, "reliability"
        )
    )
    assert sla is not None
    # the optimum picks the good provider at every slot
    assert sla.agreed_level == pytest.approx(0.99**chain_length)


def test_reliability_decay_series(benchmark):
    """The figure's series: composite reliability vs pipeline length."""

    def sweep():
        rows = []
        for chain_length in (1, 2, 4, 8):
            registry = ServiceRegistry()
            operations = [f"s{i}" for i in range(chain_length)]
            for operation in operations:
                registry.publish(
                    ServiceDescription(
                        service_id=f"{operation}-only",
                        name=operation,
                        provider=f"prov-{operation}",
                        interface=ServiceInterface(operation=operation),
                        qos=QoSDocument(
                            service_name=operation,
                            provider=f"prov-{operation}",
                            policies=[
                                QoSPolicy(
                                    attribute="reliability", constant=0.97
                                )
                            ],
                        ),
                    )
                )
            sla, _, _ = Broker(registry).negotiate_composition(
                "client", operations, "reliability"
            )
            rows.append((chain_length, sla.agreed_level))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E10 — composite reliability vs pipeline length (r=0.97/stage)",
        [(n, f"{level:.4f}") for n, level in rows],
        ["stages", "reliability"],
    )
    levels = [level for _, level in rows]
    assert levels == sorted(levels, reverse=True)  # geometric decay
    assert levels[-1] == pytest.approx(0.97**8)
