"""E16/E17 — batched serving throughput and incremental re-solve (ours).

The acceptance runs of the batching tentpole (ISSUE 8), both on the
serving hot path's homogeneous-market shape: one composite service whose
offers form a chain of pairwise QoS constraints over shared resource
variables, and one *unique* requirement table per session (so the solve
cache never answers and every session really solves).

* **E16 — batched throughput.**  A worker pool serves B sessions twice:
  through the plain per-session solver, and through a
  :class:`~repro.runtime.batching.BatchScheduler` that coalesces
  same-topology sessions into stacked sweeps.  Both runs must produce
  bit-identical results; full mode gates the batched configuration at
  **≥ 5×** the unbatched throughput.

* **E17 — incremental re-solve.**  A store-sized chain problem is
  re-solved after single-factor deltas, cold (empty
  :class:`~repro.solver.elimination.BucketCache`) vs warm (the memo
  holds the previous version's buckets, so only buckets downstream of
  the changed factor recompute).  Full mode gates warm re-solve at
  **≥ 3×** cold; both must match a from-scratch elimination bitwise.

Quick mode (default, CI-sized) shrinks the market and skips the gates;
set ``REPRO_BENCH_FULL=1`` for the gated sizes.  Results land in
``benchmarks/BENCH_PR8.json``.
"""

import os
import random
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import record_bench_artifact, report

from repro.constraints import TableConstraint, variable
from repro.runtime import BatchConfig, BatchScheduler
from repro.semirings import WeightedSemiring
from repro.solver import (
    SCSP,
    BucketCache,
    solve,
    solve_elimination,
)

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

SCALE = {
    "quick": {
        "sessions": 32,
        "resources": 6,
        "domain": 6,
        "workers": 16,
        "max_batch": 16,
        "rounds": 1,
        "deltas": 3,
    },
    "full": {
        "sessions": 256,
        "resources": 12,
        "domain": 10,
        "workers": 64,
        "max_batch": 64,
        "rounds": 5,
        "deltas": 5,
    },
}[("full" if FULL else "quick")]

THROUGHPUT_GATE = 5.0
RESOLVE_GATE = 3.0

ARTIFACT = "benchmarks/BENCH_PR8.json"

WEIGHTED = WeightedSemiring()


def build_market_problems(sessions, resources, domain):
    """B same-topology sessions over one homogeneous composite market.

    The offer chain is shared (pooled constraint objects, as the
    broker's registry pools QoS documents); each session contributes its
    own requirement table, so fingerprint-level caching cannot answer
    and every session costs a real solve.
    """
    resource_vars = [
        variable(f"r{i}", range(domain)) for i in range(resources)
    ]
    offers = [
        TableConstraint(
            WEIGHTED,
            [resource_vars[i], resource_vars[i + 1]],
            {
                (a, b): float((a * 3 + b + i) % 9)
                for a in range(domain)
                for b in range(domain)
            },
        )
        for i in range(resources - 1)
    ]
    problems = []
    for session in range(sessions):
        rng = random.Random(session)
        requirement = TableConstraint(
            WEIGHTED,
            [resource_vars[0]],
            {(a,): float(rng.randint(0, 9)) for a in range(domain)},
        )
        problems.append(SCSP(offers + [requirement], con=["r0"]))
    return problems


def _assert_identical(left, right):
    assert left.blevel == right.blevel
    assert left.frontier == right.frontier
    assert left.optima == right.optima


def test_batched_throughput(benchmark):
    problems = build_market_problems(
        SCALE["sessions"], SCALE["resources"], SCALE["domain"]
    )
    pool = ThreadPoolExecutor(max_workers=SCALE["workers"])
    scheduler = BatchScheduler(
        BatchConfig(window_ms=50.0, max_batch=SCALE["max_batch"])
    )

    def unbatched(problem):
        return solve(problem, method="elimination", backend="auto")

    # Warm the conversion/digest memos both paths share, outside the
    # timed region (the serving steady state).
    list(pool.map(scheduler.solve, problems))
    list(pool.map(unbatched, problems))

    timings = {"unbatched": [], "batched": []}
    checks = {}

    def one_round():
        started = time.perf_counter()
        checks["unbatched"] = list(pool.map(unbatched, problems))
        mid = time.perf_counter()
        checks["batched"] = list(pool.map(scheduler.solve, problems))
        timings["unbatched"].append(mid - started)
        timings["batched"].append(time.perf_counter() - mid)

    def all_rounds():
        for _ in range(SCALE["rounds"]):
            one_round()

    benchmark.pedantic(all_rounds, rounds=1, iterations=1)
    pool.shutdown()

    # Bit-identity first: the speedup must not cost a single bit.
    for single, batched in zip(checks["unbatched"], checks["batched"]):
        _assert_identical(single, batched)
    assert scheduler.sessions_batched > 0
    assert scheduler.largest_batch > 1

    unbatched_s = statistics.median(timings["unbatched"])
    batched_s = statistics.median(timings["batched"])
    speedup = unbatched_s / batched_s
    sessions = SCALE["sessions"]
    rows = [
        (
            label,
            f"{seconds * 1e3:.1f}",
            f"{sessions / seconds:.0f}",
        )
        for label, seconds in (
            ("unbatched", unbatched_s),
            ("batched", batched_s),
        )
    ]
    report(
        f"E16 batched serving throughput — "
        f"{'full' if FULL else 'quick'} ({sessions} sessions, "
        f"{SCALE['resources']} resources, batch≤{SCALE['max_batch']})",
        rows + [("speedup", f"{speedup:.2f}x", "-")],
        ["config", "median ms", "sessions/s"],
    )
    record_bench_artifact(
        "batched_throughput",
        {
            "mode": "full" if FULL else "quick",
            "sessions": sessions,
            "resources": SCALE["resources"],
            "domain": SCALE["domain"],
            "max_batch": SCALE["max_batch"],
            "unbatched_s": unbatched_s,
            "batched_s": batched_s,
            "speedup": speedup,
            "batches_dispatched": scheduler.batches_dispatched,
            "largest_batch": scheduler.largest_batch,
            "gate": THROUGHPUT_GATE if FULL else None,
        },
        path=ARTIFACT,
    )
    if FULL:
        assert speedup >= THROUGHPUT_GATE, (
            f"batched serving speedup {speedup:.2f}x below the "
            f"{THROUGHPUT_GATE}x gate"
        )


def build_chain(resources, domain, tweak):
    """One store version: a factor chain whose tail carries the delta."""
    resource_vars = [
        variable(f"v{i}", range(domain)) for i in range(resources)
    ]
    constraints = []
    for i in range(resources - 1):
        if i == resources - 2:
            table = {
                (a, b): float((a + b + tweak) % 11)
                for a in range(domain)
                for b in range(domain)
            }
        else:
            table = {
                (a, b): float((a * 2 + b + i) % 11)
                for a in range(domain)
                for b in range(domain)
            }
        constraints.append(
            TableConstraint(
                WEIGHTED, [resource_vars[i], resource_vars[i + 1]], table
            )
        )
    return SCSP(constraints, con=[resource_vars[-1].name])


def test_incremental_resolve(benchmark):
    resources, domain = SCALE["resources"], SCALE["domain"]
    base = build_chain(resources, domain, 0)
    deltas = [
        build_chain(resources, domain, tweak)
        for tweak in range(1, SCALE["deltas"] + 1)
    ]
    # Warm the table/digest memos shared by both configurations.
    for problem in deltas + [base]:
        solve_elimination(problem)

    timings = {"cold": [], "warm": []}
    reuse = {}

    def both_configs():
        for problem in deltas:
            warm_cache = BucketCache()
            # The store's previous version materialized these buckets.
            solve_elimination(base, bucket_cache=warm_cache)
            started = time.perf_counter()
            cold = solve_elimination(
                problem, bucket_cache=BucketCache()
            )
            mid = time.perf_counter()
            warm = solve_elimination(problem, bucket_cache=warm_cache)
            timings["cold"].append(mid - started)
            timings["warm"].append(time.perf_counter() - mid)
            _assert_identical(cold, warm)
            _assert_identical(solve_elimination(problem), warm)
            reuse["reused"] = warm.stats.buckets_reused
            reuse["processed"] = warm.stats.buckets_processed

    benchmark.pedantic(both_configs, rounds=1, iterations=1)

    # The delta must actually have reused most buckets, but not all of
    # them (the changed factor's bucket recomputes).
    assert 0 < reuse["reused"] < reuse["processed"]

    cold_s = statistics.median(timings["cold"])
    warm_s = statistics.median(timings["warm"])
    speedup = cold_s / warm_s
    report(
        f"E17 incremental re-solve — {'full' if FULL else 'quick'} "
        f"({resources}-var chain, domain {domain}, single-factor delta)",
        [
            ("cold", f"{cold_s * 1e3:.2f}", "-"),
            ("warm", f"{warm_s * 1e3:.2f}",
             f"{reuse['reused']}/{reuse['processed']}"),
            ("speedup", f"{speedup:.2f}x", "-"),
        ],
        ["config", "median ms", "buckets reused"],
    )
    record_bench_artifact(
        "incremental_resolve",
        {
            "mode": "full" if FULL else "quick",
            "resources": resources,
            "domain": domain,
            "deltas": SCALE["deltas"],
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "buckets_reused": reuse["reused"],
            "buckets_processed": reuse["processed"],
            "gate": RESOLVE_GATE if FULL else None,
        },
        path=ARTIFACT,
    )
    if FULL:
        assert speedup >= RESOLVE_GATE, (
            f"warm re-solve speedup {speedup:.2f}x below the "
            f"{RESOLVE_GATE}x gate"
        )
