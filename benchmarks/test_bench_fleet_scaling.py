"""E14 — fleet scaling: aggregate throughput vs shard count (ours).

Series: delivered requests/second of the sharded fleet at 1/2/4/8 broker
shards under a latency-dominated synthetic load (every provider carries
a deterministic ``RandomDelay``, so a session spends its life awaiting
I/O-shaped sleeps, the regime where horizontal sharding pays — the
per-shard worker pools sleep concurrently on one event loop).  Shape
expectation: aggregate throughput grows monotonically with shards and
approaches concurrency/delay; the full run gates ≥3× at 8 shards vs 1.

Also recorded: the two-tier cache's hit split — every shard serves the
same operation, so the first solve warms the fleet-wide L2 and every
other shard promotes instead of re-solving.

Quick mode (the default, CI-sized) serves ~48 sessions per point with a
short delay; set ``REPRO_BENCH_FULL=1`` for the paper-sized trace (640
sessions per point, 25 ms service delay) — the acceptance run of the
fleet subsystem.

Determinism note: throughput varies run to run (wall-clock), but the
per-session *outcomes* at every shard count are identical by the keyed
RNG construction — asserted here on every point.
"""

import os

import pytest
from conftest import record_bench_artifact, report

from repro.fleet import FleetConfig, FleetFrontend, FleetLoadGenerator
from repro.runtime import (
    LoadProfile,
    RetryPolicy,
    synthesize_market,
    synthetic_request_factory,
)
from repro.soa import FaultInjector, RandomDelay

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

SHARD_COUNTS = (1, 2, 4, 8)

SCALE = {
    "quick": {"clients": 32, "requests": 48, "delay_ms": 8.0},
    "full": {"clients": 64, "requests": 640, "delay_ms": 25.0},
}[("full" if FULL else "quick")]

#: Open-loop arrival rate: fast enough that the fleet, not the arrival
#: process, is the bottleneck at every shard count.  The open loop also
#: keeps the submission order (and so the fleet's session keys) a pure
#: function of the request index — the closed loop's order depends on
#: completion timing, which would break the outcome comparison below.
RATE_RPS = 2000.0

ARTIFACT = "benchmarks/BENCH_PR6.json"


def build_fleet(shards, registry_seed=11):
    registry = synthesize_market(seed=registry_seed)
    service_ids = [d.service_id for d in registry.find()]

    def injector_factory(shard_id):
        injector = FaultInjector(seed=5)
        for service_id in service_ids:
            # probability 1.0: every attempt sleeps, making sessions
            # latency-dominated and the workload shard-scalable
            injector.attach(
                service_id, RandomDelay(1.0, SCALE["delay_ms"])
            )
        return injector

    config = FleetConfig(
        shards=shards,
        workers_per_shard=4,
        seed=11,
        deadline_s=None,
        retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0),
    )
    return FleetFrontend(
        registry, config, injector_factory=injector_factory
    )


def run_point(shards):
    frontend = build_fleet(shards)
    generator = FleetLoadGenerator(
        frontend,
        LoadProfile(
            clients=SCALE["clients"],
            requests=SCALE["requests"],
            mode="open",
            rate=RATE_RPS,
            seed=7,
        ),
        synthetic_request_factory(),
    )
    fleet_report = generator.run_sync()
    outcomes = {
        key: (result.status.value, result.attempts)
        for key, result in frontend.results_by_key().items()
    }
    return fleet_report, outcomes


def test_fleet_scaling(benchmark):
    points = {}
    outcomes_by_shards = {}

    def sweep():
        for shards in SHARD_COUNTS:
            fleet_report, outcomes = run_point(shards)
            points[shards] = fleet_report
            outcomes_by_shards[shards] = outcomes
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for shards, fleet_report in points.items():
        assert fleet_report.fleet.offered == SCALE["requests"]
        assert (
            fleet_report.fleet.completed + fleet_report.fleet.degraded
            == SCALE["requests"]
        ), f"{shards} shard(s) dropped sessions"

    # keyed determinism: identical per-session outcomes at every scale
    reference = outcomes_by_shards[SHARD_COUNTS[0]]
    for shards in SHARD_COUNTS[1:]:
        assert outcomes_by_shards[shards] == reference, (
            f"outcomes at {shards} shard(s) diverged from 1 shard"
        )

    throughput = {
        shards: points[shards].fleet.throughput_rps
        for shards in SHARD_COUNTS
    }
    speedup = {
        shards: throughput[shards] / throughput[1]
        for shards in SHARD_COUNTS
    }

    # quick mode smoke-checks the shape; the full trace gates the claim
    assert throughput[max(SHARD_COUNTS)] > throughput[1], (
        "sharding did not increase aggregate throughput"
    )
    if FULL:
        assert speedup[8] >= 3.0, (
            f"8-shard speedup {speedup[8]:.2f}× below the 3× gate"
        )

    report(
        f"E14 fleet scaling — {'full' if FULL else 'quick'} "
        f"({SCALE['requests']} sessions, "
        f"{SCALE['delay_ms']:.0f} ms service delay)",
        [
            (
                shards,
                f"{throughput[shards]:.1f}",
                f"{speedup[shards]:.2f}x",
                f"{points[shards].fleet.latency_s['p95'] * 1000:.1f}",
                points[shards].redirects,
            )
            for shards in SHARD_COUNTS
        ],
        headers=(
            "shards",
            "rps",
            "speedup",
            "p95 ms",
            "redirects",
        ),
    )
    record_bench_artifact(
        "fleet_scaling",
        {
            "mode": "full" if FULL else "quick",
            "scale": SCALE,
            "shard_counts": list(SHARD_COUNTS),
            "throughput_rps": {
                str(shards): throughput[shards]
                for shards in SHARD_COUNTS
            },
            "speedup_vs_1_shard": {
                str(shards): round(speedup[shards], 3)
                for shards in SHARD_COUNTS
            },
            "latency_p95_s": {
                str(shards): points[shards].fleet.latency_s["p95"]
                for shards in SHARD_COUNTS
            },
            "outcomes_shard_count_independent": True,
        },
        path=ARTIFACT,
    )


def test_fleet_cache_tiering(benchmark):
    """The L2 warms sibling shards: one miss, promotions everywhere."""
    shards = 4

    def one_run():
        frontend = build_fleet(shards)
        generator = FleetLoadGenerator(
            frontend,
            LoadProfile(
                clients=SCALE["clients"],
                requests=SCALE["requests"],
                mode="open",
                rate=RATE_RPS,
                seed=7,
            ),
            synthetic_request_factory(),
        )
        return generator.run_sync()

    fleet_report = benchmark.pedantic(one_run, rounds=1, iterations=1)
    cache = fleet_report.cache
    assert cache["l2"] is not None
    promotions = sum(
        row["promotions"] for row in cache["per_shard"].values()
    )
    l1_hits = sum(
        row["l1"]["hits"] for row in cache["per_shard"].values()
    )
    # the fingerprint was solved once fleet-wide; every other shard
    # promoted it out of the L2 instead of re-solving
    assert cache["l2"]["misses"] >= 1
    assert promotions >= 1
    report(
        "E14 fleet cache tiering (4 shards, one operation)",
        [
            (
                "l2",
                cache["l2"]["hits"],
                cache["l2"]["misses"],
                promotions,
            ),
            ("l1 (sum)", l1_hits, "-", "-"),
        ],
        headers=("tier", "hits", "misses", "promotions"),
    )
    record_bench_artifact(
        "fleet_cache_tiering",
        {
            "shards": shards,
            "l2_hits": cache["l2"]["hits"],
            "l2_misses": cache["l2"]["misses"],
            "promotions": promotions,
            "l1_hits_sum": l1_hits,
        },
        path=ARTIFACT,
    )
