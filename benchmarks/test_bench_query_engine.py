"""E13 — SOA query engine (paper Sec. 8 future work; ours to measure).

Series: query latency vs registry size and vs composition depth.  Shape
expectations: operation-directed queries are index lookups (flat in
registry size up to the per-candidate solve); type-directed search grows
with the chain budget; composed pipelines of reliable parts beat a flaky
monolith — the motivation the paper gives for looking for complex
services at all.
"""

import pytest
from conftest import report

from repro.soa import (
    QoSDocument,
    QoSPolicy,
    QueryEngine,
    ServiceDescription,
    ServiceInterface,
    ServiceQuery,
    ServiceRegistry,
)


def typed_market(n_chains: int, chain_length: int = 3) -> ServiceRegistry:
    """``n_chains`` parallel typed pipelines of ``chain_length`` stages
    plus one flaky monolith per chain."""
    registry = ServiceRegistry()
    for chain in range(n_chains):
        for stage in range(chain_length):
            reliability = 0.99 - 0.01 * (chain % 3)
            registry.publish(
                ServiceDescription(
                    service_id=f"c{chain}s{stage}",
                    name=f"op{stage}",
                    provider=f"prov{chain}",
                    interface=ServiceInterface(
                        operation=f"op{stage}",
                        inputs=(f"t{chain}-{stage}",),
                        outputs=(f"t{chain}-{stage + 1}",),
                    ),
                    qos=QoSDocument(
                        service_name=f"op{stage}",
                        provider=f"prov{chain}",
                        policies=[
                            QoSPolicy(
                                attribute="reliability",
                                constant=reliability,
                            )
                        ],
                    ),
                )
            )
        registry.publish(
            ServiceDescription(
                service_id=f"mono{chain}",
                name="monolith",
                provider=f"monoprov{chain}",
                interface=ServiceInterface(
                    operation="monolith",
                    inputs=(f"t{chain}-0",),
                    outputs=(f"t{chain}-{chain_length}",),
                ),
                qos=QoSDocument(
                    service_name="monolith",
                    provider=f"monoprov{chain}",
                    policies=[
                        QoSPolicy(attribute="reliability", constant=0.80)
                    ],
                ),
            )
        )
    return registry


@pytest.mark.parametrize("n_chains", (2, 8, 32))
def test_operation_query_vs_registry_size(benchmark, n_chains):
    registry = typed_market(n_chains)
    engine = QueryEngine(registry)
    query = ServiceQuery(attribute="reliability", operation="op0")
    answer = benchmark(lambda: engine.query(query))
    assert len(answer.matches) == n_chains


@pytest.mark.parametrize("chain_length", (2, 3, 4))
def test_type_directed_query_vs_depth(benchmark, chain_length):
    registry = typed_market(4, chain_length=chain_length)
    engine = QueryEngine(registry)
    query = ServiceQuery(
        attribute="reliability",
        produces=(f"t0-{chain_length}",),
        consumes=("t0-0",),
        max_chain=chain_length,
    )
    answer = benchmark(lambda: engine.query(query))
    assert answer.satisfiable
    assert answer.best.stages == chain_length


def test_composition_beats_monolith_series(benchmark):
    """The who-wins series: chained reliable parts vs the monolith."""

    def sweep():
        rows = []
        for chain_length in (2, 3, 4):
            registry = typed_market(1, chain_length=chain_length)
            engine = QueryEngine(registry)
            answer = engine.query(
                ServiceQuery(
                    attribute="reliability",
                    produces=(f"t0-{chain_length}",),
                    consumes=("t0-0",),
                    max_chain=chain_length,
                )
            )
            chained = next(
                m for m in answer.matches if m.stages == chain_length
            )
            monolith = next(m for m in answer.matches if m.stages == 1)
            rows.append(
                (
                    chain_length,
                    f"{chained.level:.4f}",
                    f"{monolith.level:.4f}",
                    "chain" if answer.best is chained else "monolith",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E13 — composed pipeline vs monolith (0.99/stage vs 0.80)",
        rows,
        ["stages", "chain reliability", "monolith", "winner"],
    )
    # 0.99^4 ≈ 0.961 still beats 0.80: the chain wins at every depth
    assert all(row[3] == "chain" for row in rows)
