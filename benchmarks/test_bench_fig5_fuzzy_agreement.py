"""E2 — Fig. 5: the graphical fuzzy SLA agreement.

Paper: provider and client tell their fuzzy preference curves; the store
consistency after composition is the min line and the blevel is its max —
0.5 where the curves intersect.
"""

from conftest import report

from repro.constraints import FunctionConstraint, integer_variable
from repro.sccp import SUCCESS, Status, parallel, run, sequence, tell
from repro.semirings import FuzzySemiring
from repro.soa import fuzzy_agreement


def build_curves():
    fuzzy = FuzzySemiring()
    resource = integer_variable("r", 9, lower=1)
    provider = FunctionConstraint(
        fuzzy, (resource,), lambda r: (r - 1) / 8.0, name="Cp"
    )
    client = FunctionConstraint(
        fuzzy, (resource,), lambda r: (9 - r) / 8.0, name="Cc"
    )
    return fuzzy, provider, client


def test_fig5_reproduction(benchmark):
    fuzzy, provider, client = build_curves()
    combined, blevel = benchmark(lambda: fuzzy_agreement(provider, client))

    rows = []
    for assignment, level in combined.enumerate_values():
        r = assignment["r"]
        rows.append(
            (
                r,
                f"{provider({'r': r}):.3f}",
                f"{client({'r': r}):.3f}",
                f"{level:.3f}",
            )
        )
    report(
        "Fig. 5 — preference curves and their min (thick line)",
        rows,
        ["resource", "Cp", "Cc", "min(Cp,Cc)"],
    )
    print(f"blevel (max of min line) = {blevel} (paper: 0.5)")
    assert blevel == 0.5

    # The same agreement emerges from an actual nmsccp run of both tells.
    agents = parallel(
        sequence(tell(provider), SUCCESS), sequence(tell(client), SUCCESS)
    )
    result = run(agents, semiring=fuzzy)
    assert result.status is Status.SUCCESS
    assert result.consistency() == 0.5
