"""E4 — Example 2: retract as policy relaxation.

Paper: after P1 retracts c1 (≡ x+3), the store becomes (c4 ⊗ c3) ÷ c1 ≡
2x+2 with σ⇓∅ = 2 ∈ [1,4] ∩ [2,10] — both agents succeed.
"""

from conftest import report

from repro.constraints import (
    Polynomial,
    TableConstraint,
    constraints_equal,
    integer_variable,
    polynomial_constraint,
    variable,
)
from repro.sccp import (
    SUCCESS,
    Status,
    ask,
    explore,
    interval,
    parallel,
    retract,
    run,
    sequence,
    tell,
)
from repro.semirings import WeightedSemiring

MAX_FAILURES = 20


def build_agents():
    weighted = WeightedSemiring()
    x = integer_variable("x", MAX_FAILURES)
    c1 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 3))
    c3 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 2}))
    c4 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 5))
    inf = weighted.zero
    sp1 = TableConstraint(
        weighted, [variable("sp1", [0, 1])], {(1,): 0.0, (0,): inf}
    )
    sp2 = TableConstraint(
        weighted, [variable("sp2", [0, 1])], {(1,): 0.0, (0,): inf}
    )
    p1 = sequence(
        tell(c4),
        tell(sp2),
        ask(sp1, interval(weighted, lower=10.0, upper=2.0)),
        retract(c1, interval(weighted, lower=10.0, upper=2.0)),
        SUCCESS,
    )
    p2 = sequence(
        tell(c3),
        tell(sp1),
        ask(sp2, interval(weighted, lower=4.0, upper=1.0)),
        SUCCESS,
    )
    return weighted, x, parallel(p1, p2)


def test_example2_reproduction(benchmark):
    weighted, x, agents = build_agents()
    result = benchmark(lambda: run(agents, semiring=weighted))

    store_on_x = result.store.project(["x"]).materialize()
    samples = [(v, f"{store_on_x.value({'x': v}):g}") for v in range(5)]
    report(
        "Example 2 — final store σ = (c4 ⊗ c3) ÷ c1 (paper: 2x+2)",
        samples,
        ["x", "σ(x)"],
    )
    print(f"σ ⇓∅ = {result.consistency():g} (paper: 2) — both succeed")

    assert result.status is Status.SUCCESS
    assert result.consistency() == 2.0
    target = polynomial_constraint(
        weighted, [x], Polynomial.linear({"x": 2}, 2)
    )
    assert constraints_equal(result.store.project(["x"]), target)


def test_example2_scheduler_independence(benchmark):
    weighted, _, agents = build_agents()
    exploration = benchmark(lambda: explore(agents, semiring=weighted))
    assert exploration.always_succeeds
    assert set(exploration.success_consistencies()) == {2.0}
