"""E13 — runtime serving throughput (ours).

Series: delivered requests/second and end-to-end latency percentiles of
the concurrent runtime under open-loop (Poisson) and closed-loop load,
plus the overload regime where admission control sheds excess arrivals.
Shape expectations: completed+degraded throughput tracks the offered
rate until the worker pool saturates; beyond the queue bound the
overload counter grows instead of the latency tail (bounded admission
trades waiting for typed rejection).

Quick mode (the default, CI-sized) serves ~40 sessions per case; set
``REPRO_BENCH_FULL=1`` for the paper-sized run — 500 clients at 200
req/s, the acceptance load of the runtime subsystem.
"""

import os

import pytest
from conftest import report

from repro.runtime import (
    LoadGenerator,
    LoadProfile,
    RuntimeConfig,
    RuntimeServer,
    synthesize_market,
    synthetic_request_factory,
)
from repro.soa import Broker

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

#: (clients, requests, open-loop rate) per mode.
SCALE = {
    "quick": {"clients": 20, "requests": 40, "rate": 400.0},
    "full": {"clients": 500, "requests": 500, "rate": 200.0},
}[("full" if FULL else "quick")]


def make_server(workers=4, max_queue_depth=256, seed=11):
    registry = synthesize_market(seed=seed)
    return RuntimeServer(
        Broker(registry),
        RuntimeConfig(
            workers=workers, max_queue_depth=max_queue_depth, seed=seed
        ),
    )


def run_load(mode, rate=None, **overrides):
    profile = LoadProfile(
        clients=SCALE["clients"],
        requests=SCALE["requests"],
        mode=mode,
        rate=rate if rate is not None else SCALE["rate"],
        seed=7,
    )
    server = overrides.pop("server", None) or make_server(**overrides)
    generator = LoadGenerator(
        server, profile, synthetic_request_factory()
    )
    return generator.run_sync()


def latency_row(label, summary):
    return (
        label,
        f"{summary['p50'] * 1000:.2f}",
        f"{summary['p95'] * 1000:.2f}",
        f"{summary['p99'] * 1000:.2f}",
        f"{summary['max'] * 1000:.2f}",
    )


@pytest.mark.parametrize("mode", ("open", "closed"))
def test_throughput_by_mode(benchmark, mode):
    reports = []

    def one_run():
        load = run_load(mode)
        reports.append(load)
        return load

    load = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert load.offered == SCALE["requests"]
    assert load.completed + load.degraded == load.offered
    assert load.throughput_rps > 0
    report(
        f"E13 runtime throughput — {mode} loop "
        f"({'full' if FULL else 'quick'} mode)",
        [
            (
                load.offered,
                f"{load.duration_s:.3f}",
                f"{load.throughput_rps:.1f}",
                load.retries_total,
                dict(load.outcomes),
            )
        ],
        headers=("offered", "duration_s", "req/s", "retries", "outcomes"),
    )
    report(
        f"E13 latency percentiles (ms) — {mode} loop",
        [
            latency_row("end-to-end", load.latency_s),
            latency_row("queue wait", load.queue_wait_s),
        ],
        headers=("series", "p50", "p95", "p99", "max"),
    )


def test_overload_sheds_load_instead_of_queueing(benchmark):
    """A deliberately starved server (1 worker, shallow queue) under a
    hot open loop: admission control bounces the excess instead of
    letting the queue wait tail grow without bound."""

    def one_run():
        # Arrivals far above what one worker can absorb (~1 ms/solve).
        return run_load(
            "open",
            rate=20_000.0,
            server=make_server(workers=1, max_queue_depth=4),
        )

    load = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert load.offered == SCALE["requests"]
    assert load.overloaded > 0
    assert load.completed > 0
    # nothing silently lost: every offered session got a typed outcome
    assert sum(load.outcomes.values()) == load.offered
    report(
        "E13 overload regime (1 worker, queue=4)",
        [
            (
                load.offered,
                load.completed,
                load.overloaded,
                f"{load.queue_wait_s['p99'] * 1000:.2f}",
            )
        ],
        headers=("offered", "completed", "overloaded", "queue p99 (ms)"),
    )
