"""E13 — runtime serving throughput (ours).

Series: delivered requests/second and end-to-end latency percentiles of
the concurrent runtime under open-loop (Poisson) and closed-loop load,
plus the overload regime where admission control sheds excess arrivals.
Shape expectations: completed+degraded throughput tracks the offered
rate until the worker pool saturates; beyond the queue bound the
overload counter grows instead of the latency tail (bounded admission
trades waiting for typed rejection).

Quick mode (the default, CI-sized) serves ~40 sessions per case; set
``REPRO_BENCH_FULL=1`` for the paper-sized run — 500 clients at 200
req/s, the acceptance load of the runtime subsystem.
"""

import os
import statistics

import pytest
from conftest import record_bench_artifact, report

from repro.runtime import (
    LoadGenerator,
    LoadProfile,
    RuntimeConfig,
    RuntimeServer,
    synthesize_market,
    synthetic_request_factory,
)
from repro.soa import Broker

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

#: (clients, requests, open-loop rate) per mode.
SCALE = {
    "quick": {"clients": 20, "requests": 40, "rate": 400.0},
    "full": {"clients": 500, "requests": 500, "rate": 200.0},
}[("full" if FULL else "quick")]


def make_server(workers=4, max_queue_depth=256, seed=11, **broker_kwargs):
    registry = synthesize_market(seed=seed)
    return RuntimeServer(
        Broker(registry, **broker_kwargs),
        RuntimeConfig(
            workers=workers, max_queue_depth=max_queue_depth, seed=seed
        ),
    )


def run_load(mode, rate=None, **overrides):
    profile = LoadProfile(
        clients=SCALE["clients"],
        requests=SCALE["requests"],
        mode=mode,
        rate=rate if rate is not None else SCALE["rate"],
        seed=7,
    )
    server = overrides.pop("server", None) or make_server(**overrides)
    generator = LoadGenerator(
        server, profile, synthetic_request_factory()
    )
    return generator.run_sync()


def latency_row(label, summary):
    return (
        label,
        f"{summary['p50'] * 1000:.2f}",
        f"{summary['p95'] * 1000:.2f}",
        f"{summary['p99'] * 1000:.2f}",
        f"{summary['max'] * 1000:.2f}",
    )


@pytest.mark.parametrize("mode", ("open", "closed"))
def test_throughput_by_mode(benchmark, mode):
    reports = []

    def one_run():
        load = run_load(mode)
        reports.append(load)
        return load

    load = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert load.offered == SCALE["requests"]
    assert load.completed + load.degraded == load.offered
    assert load.throughput_rps > 0
    report(
        f"E13 runtime throughput — {mode} loop "
        f"({'full' if FULL else 'quick'} mode)",
        [
            (
                load.offered,
                f"{load.duration_s:.3f}",
                f"{load.throughput_rps:.1f}",
                load.retries_total,
                dict(load.outcomes),
            )
        ],
        headers=("offered", "duration_s", "req/s", "retries", "outcomes"),
    )
    report(
        f"E13 latency percentiles (ms) — {mode} loop",
        [
            latency_row("end-to-end", load.latency_s),
            latency_row("queue wait", load.queue_wait_s),
        ],
        headers=("series", "p50", "p95", "p99", "max"),
    )


def test_solve_cache_warm_vs_cold_throughput(benchmark):
    """PR3 acceptance: warm solve-cache throughput beats cold.

    Closed-loop load (the solve-bound regime — no arrival-rate ceiling):
    *cold* serves with the broker cache disabled, so every session pays
    a full SCSP solve; *warm* keeps the default cache, primed by one
    untimed run, so sessions hit fingerprint-identical entries.  Medians
    of 3 runs each land in ``BENCH_PR3.json``.
    """

    def compare():
        cold_server = make_server(solve_cache=False)
        warm_server = make_server()
        run_load("closed", server=warm_server)  # prime the cache
        cold_rps, warm_rps = [], []
        for _ in range(3):
            cold_rps.append(
                run_load("closed", server=cold_server).throughput_rps
            )
            warm_rps.append(
                run_load("closed", server=warm_server).throughput_rps
            )
        return (
            statistics.median(cold_rps),
            statistics.median(warm_rps),
            warm_server,
        )

    cold, warm, warm_server = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    cache_stats = warm_server.broker.solve_cache.stats()
    report(
        f"PR3 — solve cache cold vs warm (closed loop, "
        f"{'full' if FULL else 'quick'} mode, median of 3)",
        [
            (
                f"{cold:.1f}",
                f"{warm:.1f}",
                f"{warm / cold:.2f}x",
                cache_stats["hits"],
                cache_stats["misses"],
            )
        ],
        headers=(
            "cold req/s",
            "warm req/s",
            "ratio",
            "cache hits",
            "cache misses",
        ),
    )
    record_bench_artifact(
        "runtime_throughput_cold_vs_warm",
        {
            "mode": "closed",
            "scale": SCALE,
            "median_cold_rps": cold,
            "median_warm_rps": warm,
            "ratio": warm / cold,
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
        },
    )
    assert cache_stats["hits"] > 0
    assert warm > cold, (
        f"warm cache ({warm:.1f} req/s) not faster than cold "
        f"({cold:.1f} req/s)"
    )


def test_overload_sheds_load_instead_of_queueing(benchmark):
    """A deliberately starved server (1 worker, shallow queue) under a
    hot open loop: admission control bounces the excess instead of
    letting the queue wait tail grow without bound."""

    def one_run():
        # Arrivals far above what one worker can absorb (~1 ms/solve).
        return run_load(
            "open",
            rate=20_000.0,
            server=make_server(workers=1, max_queue_depth=4),
        )

    load = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert load.offered == SCALE["requests"]
    assert load.overloaded > 0
    assert load.completed > 0
    # nothing silently lost: every offered session got a typed outcome
    assert sum(load.outcomes.values()) == load.offered
    report(
        "E13 overload regime (1 worker, queue=4)",
        [
            (
                load.offered,
                load.completed,
                load.overloaded,
                f"{load.queue_wait_s['p99'] * 1000:.2f}",
            )
        ],
        headers=("offered", "completed", "overloaded", "queue p99 (ms)"),
    )
