"""PR5 — incremental coalition engine vs the naive local search.

The workload is Sec. 6 coalition formation past exact-enumeration range:
seeded ``random_trust_network`` instances climbed with identical
trajectories (same restart seeds, same neighbourhood, same acceptance
order), once with the naive full-rescore scorer and once with the
engine's memoized delta scorer.  Because only the scorer differs, the
two must return the *same* partition and score on every instance — the
speedup is pure scoring efficiency, not a different search.

Quick mode runs in CI; the acceptance gate requires the engine to be
≥5× faster than ``solve_local_search`` at the largest quick instance.
``REPRO_BENCH_FULL=1`` adds the large instances and a portfolio-worker
sweep.  Results land in ``BENCH_PR5.json`` (uploaded by the CI bench
job).
"""

import os
import statistics
import time

import pytest
from conftest import record_bench_artifact, report

from repro.coalitions import (
    random_trust_network,
    solve_engine,
    solve_local_search,
)

BENCH_PATH = os.environ.get(
    "REPRO_BENCH_PR5_JSON", "benchmarks/BENCH_PR5.json"
)

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

#: (agents, max_iterations, neighbour_sample); the last quick entry is
#: the acceptance-gate instance.
QUICK_SIZES = ((16, 25, 32), (20, 30, 48), (24, 40, 64))
FULL_SIZES = ((32, 40, 64), (40, 40, 80))
SIZES = QUICK_SIZES + (FULL_SIZES if FULL else ())

SEARCH_KW = dict(op="avg", aggregate="avg", seed=11, restarts=3)


def _instance(n):
    return random_trust_network(n, seed=7, density=0.6)


def _kw(iterations, sample):
    return dict(
        SEARCH_KW, max_iterations=iterations, neighbour_sample=sample
    )


def _median_seconds(fn, rounds=3):
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


@pytest.mark.parametrize("n,iterations,sample", SIZES)
def test_engine_matches_naive_trajectory(benchmark, n, iterations, sample):
    network = _instance(n)
    kw = _kw(iterations, sample)

    def compare():
        naive = solve_local_search(network, **kw)
        engine = solve_engine(network, workers=1, **kw)
        return naive, engine

    naive, engine = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert engine.partition == naive.partition
    assert engine.trust == naive.trust
    assert engine.partitions_examined == naive.partitions_examined


def test_engine_vs_naive_gate(benchmark):
    """Acceptance gate: ≥5× at the largest quick instance, identical
    results (the engine is the same search, scored incrementally)."""
    n, iterations, sample = QUICK_SIZES[-1]
    network = _instance(n)
    kw = _kw(iterations, sample)

    def compare():
        naive = solve_local_search(network, **kw)
        engine = solve_engine(network, workers=1, **kw)
        naive_s = _median_seconds(
            lambda: solve_local_search(network, **kw)
        )
        engine_s = _median_seconds(
            lambda: solve_engine(network, workers=1, **kw)
        )
        return naive, engine, naive_s, engine_s

    naive, engine, naive_s, engine_s = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert engine.partition == naive.partition
    assert engine.trust == naive.trust
    speedup = naive_s / engine_s
    report(
        f"PR5 — coalition engine vs naive local search (n={n}, "
        f"{iterations} iterations, sample {sample}, median of 3)",
        [
            (
                f"{naive_s * 1000:.1f}",
                f"{engine_s * 1000:.1f}",
                f"{speedup:.1f}x",
            )
        ],
        headers=("naive (ms)", "engine (ms)", "speedup"),
    )
    record_bench_artifact(
        "coalition_engine_vs_naive",
        {
            "instance": {
                "agents": n,
                "max_iterations": iterations,
                "neighbour_sample": sample,
                "restarts": SEARCH_KW["restarts"],
                "kind": "seeded random_trust_network, density 0.6",
            },
            "median_naive_s": naive_s,
            "median_engine_s": engine_s,
            "speedup": speedup,
            "results_identical": engine.partition == naive.partition,
        },
        path=BENCH_PATH,
    )
    assert speedup >= 5.0, (
        f"engine gave only {speedup:.1f}x over the naive local search"
    )


def test_portfolio_workers(benchmark):
    """Worker sweep: wall-clock per worker count, plus the invariant
    that the portfolio returns the sequential result bit for bit."""
    n, iterations, sample = SIZES[-1] if FULL else QUICK_SIZES[-1]
    network = _instance(n)
    kw = _kw(iterations, sample)
    workers = (1, 2, 4) if not FULL else (1, 2, 4, 8)

    def sweep():
        timings = {}
        baseline = None
        for count in workers:
            timings[count] = _median_seconds(
                lambda: solve_engine(network, workers=count, **kw),
                rounds=2,
            )
            solution = solve_engine(network, workers=count, **kw)
            if baseline is None:
                baseline = solution
            assert solution.partition == baseline.partition
            assert solution.trust == baseline.trust
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"PR5 — portfolio workers (n={n}, {iterations} iterations)",
        [
            (count, f"{seconds * 1000:.1f}")
            for count, seconds in sorted(timings.items())
        ],
        headers=("workers", "median (ms)"),
    )
    record_bench_artifact(
        "coalition_engine_portfolio_workers",
        {
            "instance": {
                "agents": n,
                "max_iterations": iterations,
                "neighbour_sample": sample,
            },
            "median_seconds_by_workers": {
                str(count): seconds
                for count, seconds in sorted(timings.items())
            },
        },
        path=BENCH_PATH,
    )
