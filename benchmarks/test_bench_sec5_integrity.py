"""E6 — Sec. 5: crisp integrity of the federated photo-editing system.

Paper: Imp1 = RedFilter ⊗ BWFilter ⊗ Compression refines Memory at
{incomp, outcomp} (integrity holds); assuming REDF unreliable, Imp2 does
not (the design is not robust to that internal failure).
"""

from conftest import report

from repro.constraints import FunctionConstraint, variable
from repro.dependability import assume_unreliable, integrate, locally_refines
from repro.semirings import BooleanSemiring

SIZES = (256, 512, 666, 1024, 2048, 4096, 8192)


def build_policies():
    boolean = BooleanSemiring()
    outcomp = variable("outcomp", SIZES)
    incomp = variable("incomp", SIZES)
    redbyte = variable("redbyte", SIZES)
    bwbyte = variable("bwbyte", SIZES)
    memory = FunctionConstraint(
        boolean, (incomp, outcomp), lambda i, o: i <= o, name="Memory"
    )
    red = FunctionConstraint(
        boolean, (redbyte, bwbyte), lambda r, b: r <= b, name="RedFilter"
    )
    bw = FunctionConstraint(
        boolean, (bwbyte, outcomp), lambda b, o: b <= o, name="BWFilter"
    )
    comp = FunctionConstraint(
        boolean, (incomp, redbyte), lambda i, r: i <= r, name="Compression"
    )
    return boolean, memory, red, bw, comp


def test_imp1_upholds_memory(benchmark):
    boolean, memory, red, bw, comp = build_policies()
    imp1 = integrate([red, bw, comp])
    result = benchmark(
        lambda: locally_refines(imp1, memory, ["incomp", "outcomp"])
    )
    report(
        "Sec. 5 — crisp integrity",
        [
            ("Imp1 ⇓ ⊑ Memory", result.holds, "paper: holds"),
            ("assignments checked", result.checked_assignments, ""),
        ],
        ["check", "value", "expectation"],
    )
    assert result.holds


def test_imp2_fails_memory(benchmark):
    boolean, memory, red, bw, comp = build_policies()
    imp2 = integrate([assume_unreliable(red), bw, comp], semiring=boolean)
    result = benchmark(
        lambda: locally_refines(imp2, memory, ["incomp", "outcomp"])
    )
    rows = [
        ("Imp2 ⇓ ⊑ Memory", result.holds, "paper: fails"),
    ]
    for witness in result.witnesses[:3]:
        rows.append(
            (
                "counterexample",
                f"incomp={witness['incomp']}Kb > outcomp={witness['outcomp']}Kb",
                "",
            )
        )
    report("Sec. 5 — unreliable REDF breaks integrity", rows, ["check", "value", "expectation"])
    assert not result.holds
    assert result.witnesses
