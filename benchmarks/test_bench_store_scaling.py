"""PR4 — factored vs monolith constraint store on growing-scope traces.

The workload is the nmsccp shape that motivated the refactor: a
negotiation keeps telling policies that widen the store's scope (each
step couples one fresh variable to the chain) and asks ``σ ⇓∅`` after
every tell.  The monolith re-combines and re-tabulates the joint table
on each tell — Θ(|D|^n) per step — while the factored store appends a
factor in O(1) and routes the consistency query through bucket
elimination, polynomial on chains.

Quick mode runs in CI; the acceptance gate requires the factored store
to be ≥5× faster than the monolith at the largest quick instance, with
bit-identical consistency trails (integer costs keep ⊗ exact).  Results
land in ``BENCH_PR4.json`` (uploaded by the CI bench job).
"""

import itertools
import os
import random
import statistics
import time

import pytest
from conftest import record_bench_artifact, report

from repro.constraints import (
    TableConstraint,
    clear_store_caches,
    empty_store,
    variable,
)
from repro.semirings import WeightedSemiring

BENCH_PATH = os.environ.get(
    "REPRO_BENCH_PR4_JSON", "benchmarks/BENCH_PR4.json"
)

#: Quick-mode sizes; 3¹⁰ = 59 049 keeps the monolith's largest table
#: under the store's materialization cap, so it pays full tabulation.
SIZES = (5, 8, 10)
DOMAIN = 3


def growing_scope_trace(n_vars: int, domain: int = DOMAIN, seed: int = 0):
    """The told constraints, in order: unary on v0, then for each fresh
    variable a coupling binary plus its unary policy."""
    rng = random.Random(seed)
    weighted = WeightedSemiring()
    variables = [variable(f"v{i}", range(domain)) for i in range(n_vars)]

    def unary(var):
        return TableConstraint(
            weighted, [var], {(d,): float(rng.randint(0, 9)) for d in var.domain}
        )

    def binary(left, right):
        return TableConstraint(
            weighted,
            [left, right],
            {
                key: float(rng.randint(0, 9))
                for key in itertools.product(left.domain, right.domain)
            },
        )

    constraints = [unary(variables[0])]
    for left, right in zip(variables, variables[1:]):
        constraints.append(binary(left, right))
        constraints.append(unary(right))
    return weighted, constraints


def run_trace(semiring, constraints, backend):
    """tell each constraint, querying ``σ ⇓∅`` after every step."""
    store = empty_store(semiring, backend=backend)
    levels = []
    for constraint in constraints:
        store = store.tell(constraint)
        levels.append(store.consistency())
    return levels


def _median_seconds(fn, rounds=3):
    samples = []
    for _ in range(rounds):
        clear_store_caches()  # honest cold-store timing each round
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


@pytest.mark.parametrize("n_vars", SIZES)
@pytest.mark.parametrize("backend", ("monolith", "factored"))
def test_store_trace_scaling(benchmark, backend, n_vars):
    semiring, constraints = growing_scope_trace(n_vars)

    def once():
        clear_store_caches()
        return run_trace(semiring, constraints, backend)

    levels = benchmark.pedantic(once, rounds=1, iterations=1)
    assert len(levels) == len(constraints)


def test_factored_vs_monolith_gate(benchmark):
    """Acceptance gate: ≥5× at the largest quick instance, identical
    consistency trails along the whole trace."""
    n_vars = SIZES[-1]
    semiring, constraints = growing_scope_trace(n_vars)

    def compare():
        mono_levels = run_trace(semiring, constraints, "monolith")
        fact_levels = run_trace(semiring, constraints, "factored")
        mono_s = _median_seconds(
            lambda: run_trace(semiring, constraints, "monolith")
        )
        fact_s = _median_seconds(
            lambda: run_trace(semiring, constraints, "factored")
        )
        return mono_levels, fact_levels, mono_s, fact_s

    mono_levels, fact_levels, mono_s, fact_s = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert fact_levels == mono_levels  # bitwise: integer-cost arithmetic
    speedup = mono_s / fact_s
    report(
        f"PR4 — store backends on a growing-scope trace (chain n={n_vars}, "
        f"|D|={DOMAIN}, {len(constraints)} tells, median of 3)",
        [
            (
                f"{mono_s * 1000:.2f}",
                f"{fact_s * 1000:.2f}",
                f"{speedup:.1f}x",
            )
        ],
        headers=("monolith (ms)", "factored (ms)", "speedup"),
    )
    record_bench_artifact(
        "store_scaling_factored_vs_monolith",
        {
            "instance": {
                "n_vars": n_vars,
                "domain": DOMAIN,
                "tells": len(constraints),
                "kind": "growing-scope chain trace",
            },
            "median_monolith_s": mono_s,
            "median_factored_s": fact_s,
            "speedup": speedup,
            "trails_identical": fact_levels == mono_levels,
        },
        path=BENCH_PATH,
    )
    assert speedup >= 5.0, (
        f"factored store gave only {speedup:.1f}x over the monolith"
    )
