"""E14 — self-healing ablation: managed vs unmanaged availability (ours).

The dependability manager (extension X5) closes the paper's implied
negotiate→monitor loop.  Who-wins shape: under provider outages, the
managed system rebinds and recovers most of the lost availability, while
the unmanaged binding stays down for the whole outage window.
"""

import pytest
from conftest import report

from repro.soa import (
    Broker,
    BurstOutage,
    DependabilityManager,
    ExecutionEngine,
    FaultInjector,
    QoSDocument,
    QoSPolicy,
    Service,
    ServiceDescription,
    ServiceInterface,
    ServicePool,
    ServiceRegistry,
    pipeline,
)

RUNS = 80
OUTAGE = BurstOutage(start=10, length=50)


def build_world():
    registry = ServiceRegistry()
    pool = ServicePool()
    for provider, advertised in (("Primary", 0.999), ("Backup", 0.99)):
        service_id = f"job-{provider}"
        description = ServiceDescription(
            service_id=service_id,
            name="job",
            provider=provider,
            interface=ServiceInterface(operation="job"),
            qos=QoSDocument(
                service_name="job",
                provider=provider,
                policies=[
                    QoSPolicy(attribute="reliability", constant=advertised)
                ],
            ),
        )
        registry.publish(description)
        pool.add(Service(description, reliability=1.0, seed=1))
    return registry, pool


def unmanaged_availability() -> float:
    registry, pool = build_world()
    injector = FaultInjector(seed=2)
    injector.attach("job-Primary", OUTAGE)
    engine = ExecutionEngine(pool, injector=injector, seed=2)
    # bind once to the best provider, never rebind
    broker = Broker(registry)
    sla, plan, _ = broker.negotiate_composition(
        "client", ["job"], "reliability"
    )
    reports = engine.execute_many(plan, runs=RUNS)
    return sum(r.success for r in reports) / RUNS


def managed_availability() -> float:
    registry, pool = build_world()
    injector = FaultInjector(seed=2)
    injector.attach("job-Primary", OUTAGE)
    engine = ExecutionEngine(pool, injector=injector, seed=2)
    manager = DependabilityManager(
        Broker(registry), engine, window=8, min_samples=4
    )
    outcome = manager.manage(
        ["job"], "reliability", runs=RUNS, minimum_level=0.9
    )
    return outcome.availability


def test_managed_beats_unmanaged(benchmark):
    def sweep():
        return unmanaged_availability(), managed_availability()

    unmanaged, managed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E14 — availability under a 50-run outage of the bound provider",
        [
            ("unmanaged (single binding)", f"{unmanaged:.3f}"),
            ("managed (auto-rebinding)", f"{managed:.3f}"),
        ],
        ["strategy", "availability"],
    )
    # the outage covers 50/80 runs: unmanaged availability collapses
    assert unmanaged < 0.5
    # the manager detects and rebinds within its monitoring window
    assert managed > 0.85
    assert managed > unmanaged + 0.3


@pytest.mark.parametrize("window", (4, 8, 16))
def test_detection_latency_vs_window(benchmark, window):
    """Smaller windows detect the outage sooner (latency ≈ min_samples of
    failures), trading off false-positive risk."""
    registry, pool = build_world()
    injector = FaultInjector(seed=2)
    injector.attach("job-Primary", OUTAGE)
    engine = ExecutionEngine(pool, injector=injector, seed=2)
    manager = DependabilityManager(
        Broker(registry),
        engine,
        window=window,
        min_samples=max(2, window // 2),
    )
    outcome = benchmark.pedantic(
        lambda: manager.manage(
            ["job"], "reliability", runs=RUNS, minimum_level=0.9
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.rebindings >= 1
    first_violation = next(
        e.tick for e in outcome.events if e.kind == "violation"
    )
    # detection happens inside the outage, not after it
    assert 10 <= first_violation < 60
