"""E8 — Figs. 9–10: trustworthy coalitions of seven service components.

Paper: the partition {C1={x1,x2,x3}, C2={x4,…,x7}} is *blocked* — x4
prefers C1 (r1 > r2) and T(C1 ∪ x4) > T(C1) — hence not a feasible
solution; the framework must deliver a stable partition maximizing the
minimum coalition trustworthiness.
"""

from conftest import report

from repro.coalitions import (
    blocking_pairs,
    coalition,
    coalition_trust,
    figure9_network,
    is_stable,
    solve_exact,
    stabilize,
)


def test_fig10_blocking_detection(benchmark):
    network = figure9_network()
    partition = [
        coalition("x1", "x2", "x3"),
        coalition("x4", "x5", "x6", "x7"),
    ]
    witnesses = benchmark(lambda: blocking_pairs(partition, network, "avg"))

    c1 = coalition("x1", "x2", "x3")
    rows = [
        ("T(C1)", f"{coalition_trust(c1, network, 'avg'):.4f}"),
        ("T(C1 ∪ x4)", f"{coalition_trust(c1 | {'x4'}, network, 'avg'):.4f}"),
        ("{C1, C2} stable", is_stable(partition, network, "avg")),
        ("blocking witness", str(witnesses[0]) if witnesses else "—"),
    ]
    report("Fig. 10 — blocking coalitions (paper: {C1,C2} is blocked)", rows, ["quantity", "value"])

    assert witnesses
    assert witnesses[0].defector == "x4"
    assert not is_stable(partition, network, "avg")


def test_optimal_stable_partition(benchmark):
    network = figure9_network()
    solution = benchmark(
        lambda: solve_exact(network, op="avg", aggregate="min")
    )
    report(
        "Fig. 9 — exact coalition-structure search (fuzzy max-min)",
        [
            ("optimal partition", [sorted(g) for g in solution.partition]),
            ("partition trust", f"{solution.trust:.4f}"),
            ("stable", solution.stable),
            ("partitions examined", solution.partitions_examined),
            ("stable partitions", solution.stable_partitions),
        ],
        ["quantity", "value"],
    )
    assert solution.found and solution.stable
    # stability is a severe feasibility filter (paper's Def. 4)
    assert solution.stable_partitions < solution.partitions_examined / 10
    # x4 lands with the coalition it prefers
    x4_group = next(g for g in solution.partition if "x4" in g)
    assert {"x1", "x2", "x3"} <= set(x4_group)


def test_better_response_dynamics(benchmark):
    network = figure9_network()
    start = [
        coalition("x1", "x2", "x3"),
        coalition("x4", "x5", "x6", "x7"),
    ]
    final, history, converged = benchmark(
        lambda: stabilize(start, network, "avg")
    )
    report(
        "Fig. 10 — repairing the blocked partition by defections",
        [
            ("defections", len(history)),
            ("converged", converged),
            ("final partition", [sorted(g) for g in final]),
        ],
        ["quantity", "value"],
    )
    assert converged
    assert is_stable(final, network, "avg")
