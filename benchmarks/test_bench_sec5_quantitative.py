"""E7 — Sec. 5: quantitative reliability over the Probabilistic semiring.

Paper: c1(outcomp=4096Kb, bwbyte=1024Kb) = 0.96; Imp3 = c1 ⊗ c2 ⊗ c3 is
the system reliability; MemoryProb ⊑ Imp3 certifies the requirement; the
blevel finds the most reliable implementation among candidates.
"""

from conftest import report

from repro.constraints import FunctionConstraint, variable
from repro.dependability import (
    best_implementation,
    compression_reliability,
    meets_requirement,
    system_reliability,
)
from repro.semirings import ProbabilisticSemiring

SIZES = (512, 1024, 2048, 4096, 8192)


def build_modules():
    probabilistic = ProbabilisticSemiring()
    outcomp = variable("outcomp", SIZES)
    bwbyte = variable("bwbyte", SIZES)
    redbyte = variable("redbyte", SIZES)
    c1 = compression_reliability(outcomp, bwbyte)
    c2 = FunctionConstraint(
        probabilistic,
        (redbyte, bwbyte),
        lambda r, b: 0.99 if r <= b else 0.90,
        name="red-filter",
    )
    c3 = FunctionConstraint(
        probabilistic,
        (outcomp,),
        lambda o: 1.0 if o <= 2048 else 0.95,
        name="compf",
    )
    return probabilistic, outcomp, bwbyte, redbyte, c1, c2, c3


def test_c1_spot_values(benchmark):
    _, outcomp, bwbyte, _, c1, _, _ = build_modules()
    value = benchmark(
        lambda: c1({"outcomp": 4096, "bwbyte": 1024})
    )
    rows = [
        ("c1(4096, 1024)", f"{value:.4f}", "paper: 0.96"),
        ("c1(512, 512)", f"{c1({'outcomp': 512, 'bwbyte': 512}):.4f}", "≤1Mb → 1.0"),
        ("c1(8192, 1024)", f"{c1({'outcomp': 8192, 'bwbyte': 1024}):.4f}", ">4Mb → 0.0"),
    ]
    report("Sec. 5 — compression reliability c1", rows, ["point", "value", "expectation"])
    assert abs(value - 0.96) < 1e-12


def test_imp3_requirement_and_ranking(benchmark):
    (
        probabilistic,
        outcomp,
        bwbyte,
        redbyte,
        c1,
        c2,
        c3,
    ) = build_modules()
    imp3 = system_reliability([c1, c2, c3])
    # The client demands 10% minimum reliability for images the system
    # claims to handle (≤ 4Mb inputs are unsupported per c1, so the
    # requirement is vacuous there).
    requirement = FunctionConstraint(
        probabilistic,
        (outcomp,),
        lambda o: 0.10 if o <= 4096 else 0.0,
        name="MemoryProb",
    )
    entailed = benchmark(lambda: meets_requirement(requirement, imp3))
    premium = FunctionConstraint(
        probabilistic, (redbyte, bwbyte), lambda r, b: 0.999
    )
    budget = FunctionConstraint(
        probabilistic,
        (redbyte, bwbyte),
        lambda r, b: 0.93 if r <= b else 0.70,
    )
    ranking = best_implementation(
        {
            "premium": system_reliability([c1, premium, c3]),
            "standard": imp3,
            "budget": system_reliability([c1, budget, c3]),
        }
    )
    report(
        "Sec. 5 — implementations ranked by blevel (most reliable first)",
        [(name, f"{level:.4f}") for name, level in ranking.ranked],
        ["implementation", "blevel"],
    )
    print(f"MemoryProb ⊑ Imp3: {entailed}")
    assert entailed
    assert ranking.best[0] == "premium"
    assert [n for n, _ in ranking.ranked] == ["premium", "standard", "budget"]
