"""E5 — Example 3: update as transactional policy replacement.

Paper: ⟨tell(c1) → update_{x}(c2) → success, 0̄⟩ succeeds in the store
(c1 ⇓_{V∖{x}}) ⊗ c2 ≡ y + 4: the old x-based policy is refreshed, its
fixed 3-hour management delay survives, and consistency now depends only
on the number of reboots y.
"""

from conftest import report

from repro.constraints import (
    Polynomial,
    constraints_equal,
    integer_variable,
    polynomial_constraint,
)
from repro.sccp import SUCCESS, Status, run, sequence, tell, update
from repro.semirings import WeightedSemiring

MAX_EVENTS = 20


def build_agent():
    weighted = WeightedSemiring()
    x = integer_variable("x", MAX_EVENTS)
    y = integer_variable("y", MAX_EVENTS)
    c1 = polynomial_constraint(weighted, [x], Polynomial.linear({"x": 1}, 3))
    c2 = polynomial_constraint(weighted, [y], Polynomial.linear({"y": 1}, 1))
    agent = sequence(tell(c1), update(["x"], c2), SUCCESS)
    return weighted, y, agent


def test_example3_reproduction(benchmark):
    weighted, y, agent = build_agent()
    result = benchmark(lambda: run(agent, semiring=weighted))

    samples = [
        (v, f"{result.store.value({'y': v}):g}") for v in range(5)
    ]
    report(
        "Example 3 — final store (c1 ⇓_V∖{x}) ⊗ c2 (paper: y+4)",
        samples,
        ["y", "σ(y)"],
    )
    print(f"support after update: {result.store.support} (paper: only y)")

    assert result.status is Status.SUCCESS
    target = polynomial_constraint(
        weighted, [y], Polynomial.linear({"y": 1}, 4)
    )
    assert constraints_equal(result.store.constraint, target)
    assert result.store.support == ("y",)
    # the constant 3 of the replaced policy survives: σ(y=0) = 4 = 3 + 1
    assert result.store.value({"y": 0}) == 4.0
