"""E11 — coalition-structure generation: exact vs greedy vs local search.

Series: solution quality and work vs number of agents, plus the ◦-operator
ablation.  Shape expectations: exact explores Bell(n) partitions and wins
on quality; greedy is constant-round but can be unstable or suboptimal;
seeded local search tracks the exact optimum at a fraction of the work.
"""

import pytest
from conftest import report

from repro.coalitions import (
    bell_number,
    figure9_network,
    individually_oriented,
    is_stable,
    partition_trust,
    random_trust_network,
    socially_oriented,
    solve_exact,
    solve_local_search,
)


@pytest.mark.parametrize("n_agents", (5, 7, 9))
def test_exact_scaling(benchmark, n_agents):
    network = random_trust_network(n_agents, seed=n_agents)
    solution = benchmark(
        lambda: solve_exact(network, op="avg", aggregate="min")
    )
    assert solution.partitions_examined == bell_number(n_agents)


@pytest.mark.parametrize("n_agents", (7, 12, 16))
def test_local_search_scaling(benchmark, n_agents):
    network = random_trust_network(n_agents, seed=n_agents)
    solution = benchmark(
        lambda: solve_local_search(
            network, op="avg", seed=1, restarts=2, max_iterations=25
        )
    )
    assert solution.found


@pytest.mark.parametrize("n_agents", (7, 12, 16))
def test_greedy_scaling(benchmark, n_agents):
    network = random_trust_network(n_agents, seed=n_agents)
    solution = benchmark(lambda: socially_oriented(network, "avg"))
    assert solution.found


def test_quality_comparison_series(benchmark):
    """The quality table: trust achieved by each solver on Fig. 9 plus
    random instances; exact must dominate everything stable."""

    def sweep():
        rows = []
        networks = [("fig9", figure9_network())] + [
            (f"rand{n}", random_trust_network(n, seed=n)) for n in (5, 7)
        ]
        for name, network in networks:
            exact = solve_exact(network, op="avg", aggregate="min")
            individual = individually_oriented(network, "avg")
            social = socially_oriented(network, "avg")
            local = solve_local_search(
                network, op="avg", seed=3, restarts=3, max_iterations=50
            )
            rows.append(
                (
                    name,
                    f"{exact.trust:.4f}",
                    f"{individual.trust:.4f}{'' if individual.stable else '*'}",
                    f"{social.trust:.4f}{'' if social.stable else '*'}",
                    f"{local.trust:.4f}{'' if local.stable else '*'}",
                )
            )
            for solution in (individual, social, local):
                if solution.stable:
                    assert exact.trust >= solution.trust - 1e-12
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E11 — partition trust by solver (* = unstable result)",
        rows,
        ["instance", "exact", "indiv", "social", "local"],
    )


def test_composition_operator_ablation(benchmark):
    """◦ ∈ {min, avg, max} changes both the optimum and which partitions
    are stable (DESIGN.md ablation)."""

    def sweep():
        network = figure9_network()
        rows = []
        for op in ("min", "avg", "max"):
            solution = solve_exact(network, op=op, aggregate="min")
            rows.append(
                (
                    op,
                    f"{solution.trust:.4f}",
                    solution.stable_partitions,
                    len(solution.partition or ()),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E11 — ◦-operator ablation on Fig. 9 (877 partitions)",
        rows,
        ["◦", "best trust", "stable partitions", "#coalitions"],
    )
    by_op = {row[0]: row for row in rows}
    # under min every partition is trivially stable (documented degeneracy)
    assert by_op["min"][2] == bell_number(7)
    # avg/max genuinely prune
    assert by_op["avg"][2] < bell_number(7)


def test_stability_pruning_series(benchmark):
    """Share of stable partitions shrinks as n grows (avg composition)."""

    def sweep():
        rows = []
        for n_agents in (4, 5, 6, 7):
            network = random_trust_network(n_agents, seed=17 + n_agents)
            solution = solve_exact(network, op="avg", aggregate="min")
            total = solution.partitions_examined
            rows.append(
                (
                    n_agents,
                    total,
                    solution.stable_partitions,
                    f"{solution.stable_partitions / total:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E11 — stability pruning vs #agents",
        rows,
        ["n", "partitions", "stable", "stable share"],
    )
    shares = [float(row[3]) for row in rows]
    assert shares[-1] < shares[0]  # the filter bites harder as n grows
