"""E18 — fairness under contention: greedy vs fair allocation (ours).

The acceptance run of the fairness tentpole (ISSUE 9).  One runtime
server over the contention market (three providers at strictly
decreasing constant quality, so every client's individually-best choice
is the same provider), serving a closed-loop population twice: once
through the ``greedy`` allocation policy (the legacy per-session path
behind the policy seam) and once through ``fair`` (one joint
``Lex[Fuzzy, Probabilistic]`` SCSP per allocation round — ⟨min realized
satisfaction, total welfare⟩ with the ``γ^rank`` queue discount).

Reported per policy: Jain's fairness index and the worst-off client's
realized satisfaction (both over ``γ``-discounted agreed levels), plus
closed-loop throughput.  Full mode (``REPRO_BENCH_FULL=1``) gates:

* fair Jain **≥ 0.9** on the contention market;
* greedy Jain **≤ fair − 0.05** (the contention scenario actually
  discriminates);
* fair min-satisfaction strictly above greedy's;
* fair throughput **≥ 70%** of greedy's (the joint solve may cost at
  most 30%).

Quick mode (default, CI-sized) keeps the fairness-improvement checks —
they are load-shape invariants, not timings — and skips only the
throughput gate.  Results land in ``benchmarks/BENCH_PR9.json``.
"""

import os
import statistics

from conftest import record_bench_artifact, report

from repro.runtime import (
    BatchConfig,
    LoadGenerator,
    LoadProfile,
    RuntimeConfig,
    RuntimeServer,
    contention_request_factory,
    synthesize_contention_market,
)
from repro.soa import Broker

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

SCALE = {
    "quick": {"clients": 12, "providers": 3, "workers": 16, "repeats": 2},
    "full": {"clients": 24, "providers": 4, "workers": 32, "repeats": 5},
}[("full" if FULL else "quick")]

FAIR_JAIN_GATE = 0.9
JAIN_MARGIN_GATE = 0.05
THROUGHPUT_RATIO_GATE = 0.7

ARTIFACT = "benchmarks/BENCH_PR9.json"


def run_policy(policy, seed=9):
    market = synthesize_contention_market(providers=SCALE["providers"])
    broker = Broker(
        market,
        allocation_policy=policy,
        rounds=BatchConfig(window_ms=60.0, max_batch=16),
    )
    server = RuntimeServer(
        broker,
        RuntimeConfig(
            workers=SCALE["workers"], seed=seed, deadline_s=None
        ),
    )
    generator = LoadGenerator(
        server,
        LoadProfile(clients=SCALE["clients"], mode="closed", seed=seed),
        contention_request_factory(),
    )
    return generator.run_sync()


def test_fairness_under_contention(benchmark):
    runs = {"greedy": [], "fair": []}

    def all_repeats():
        for repeat in range(SCALE["repeats"]):
            for policy in ("greedy", "fair"):
                runs[policy].append(run_policy(policy, seed=9 + repeat))

    benchmark.pedantic(all_repeats, rounds=1, iterations=1)

    digests = {}
    for policy, reports in runs.items():
        for single in reports:
            assert single.completed == SCALE["clients"], (
                f"{policy}: {single.outcomes}"
            )
            assert single.fairness is not None
        digests[policy] = {
            "jain_index": statistics.median(
                r.fairness["jain_index"] for r in reports
            ),
            "min_satisfaction": statistics.median(
                r.fairness["min_satisfaction"] for r in reports
            ),
            "mean_satisfaction": statistics.median(
                r.fairness["mean_satisfaction"] for r in reports
            ),
            "throughput_rps": statistics.median(
                r.throughput_rps for r in reports
            ),
        }

    greedy, fair = digests["greedy"], digests["fair"]
    ratio = fair["throughput_rps"] / greedy["throughput_rps"]
    report(
        f"E18 fairness under contention — "
        f"{'full' if FULL else 'quick'} ({SCALE['clients']} clients, "
        f"{SCALE['providers']} providers, round window 60ms)",
        [
            (
                policy,
                f"{digest['jain_index']:.4f}",
                f"{digest['min_satisfaction']:.3f}",
                f"{digest['mean_satisfaction']:.3f}",
                f"{digest['throughput_rps']:.1f}",
            )
            for policy, digest in digests.items()
        ]
        + [("fair/greedy throughput", f"{ratio:.2f}x", "-", "-", "-")],
        ["policy", "jain", "min sat", "mean sat", "sessions/s"],
    )
    record_bench_artifact(
        "fairness_contention",
        {
            "mode": "full" if FULL else "quick",
            "clients": SCALE["clients"],
            "providers": SCALE["providers"],
            "repeats": SCALE["repeats"],
            "greedy": greedy,
            "fair": fair,
            "throughput_ratio": ratio,
            "gates": {
                "fair_jain": FAIR_JAIN_GATE,
                "jain_margin": JAIN_MARGIN_GATE,
                "throughput_ratio": (
                    THROUGHPUT_RATIO_GATE if FULL else None
                ),
            },
        },
        path=ARTIFACT,
    )

    # Load-shape invariants (checked in both modes): fairness must be
    # bought, and bought from greedy.
    assert fair["jain_index"] >= FAIR_JAIN_GATE, (
        f"fair Jain {fair['jain_index']:.4f} below the "
        f"{FAIR_JAIN_GATE} gate"
    )
    assert (
        greedy["jain_index"] <= fair["jain_index"] - JAIN_MARGIN_GATE
    ), (
        f"greedy Jain {greedy['jain_index']:.4f} within "
        f"{JAIN_MARGIN_GATE} of fair {fair['jain_index']:.4f} — the "
        "contention scenario no longer discriminates"
    )
    assert fair["min_satisfaction"] > greedy["min_satisfaction"], (
        "fair did not lift the worst-off client: "
        f"{fair['min_satisfaction']:.3f} vs "
        f"{greedy['min_satisfaction']:.3f}"
    )
    if FULL:
        assert ratio >= THROUGHPUT_RATIO_GATE, (
            f"fair throughput {ratio:.2f}x of greedy, below the "
            f"{THROUGHPUT_RATIO_GATE}x gate"
        )
