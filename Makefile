# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-report examples all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Prints the paper-vs-measured tables (the EXPERIMENTS.md source data).
bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

all: install test bench examples

clean:
	rm -rf .pytest_cache .hypothesis build dist src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
